//! The block-device abstraction: checksummed, fallible block I/O.
//!
//! The paper prototyped against Teradata BLOBs and planned raw-disk blocks
//! (§4). For the reproduction what matters is the *accounting* — how many
//! block reads and writes each query costs under each allocation strategy
//! — and, since this PR, the *failure model*: real sensor-data stores run
//! on flaky media, so every read is integrity-checked against a per-block
//! FNV-1a checksum over the f64 bit patterns and may fail with a
//! [`ReadError`] instead of silently returning garbage.
//!
//! Two layers live here:
//!
//! - the [`BlockDevice`] trait: fixed-size blocks of `f64` items with raw
//!   (unchecked) reads, checksum-verified reads, and I/O counters;
//! - [`MemDevice`]: the in-memory reference implementation, infallible on
//!   its own but exposing raw-patch hooks so the fault-injection wrapper
//!   ([`crate::faults::FaultyDevice`]) can simulate corrupt media.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use aims_telemetry::{global, Counter};

/// Cached handles to the global `storage.device.{reads,writes}` counters,
/// so the per-access cost is one atomic add rather than a registry probe.
pub(crate) fn io_counters() -> &'static (Arc<Counter>, Arc<Counter>) {
    static C: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    C.get_or_init(|| {
        (global().counter("storage.device.reads"), global().counter("storage.device.writes"))
    })
}

/// FNV-1a over the little-endian bit patterns of the items. Bit-exact:
/// `0.0` and `-0.0` hash differently, NaN payloads are significant, and a
/// single flipped bit always changes the digest (every FNV step is an
/// injective map of the running state).
pub fn fnv1a_f64(data: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a over raw bytes — same constants as [`fnv1a_f64`], used for the
/// WAL record and file-header checksums where the payload is already a
/// byte stream.
pub fn fnv1a_bytes(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a block read failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadErrorKind {
    /// Transient I/O error — a retry may succeed.
    Io,
    /// Checksum mismatch: the payload does not match the checksum recorded
    /// at write time (bit rot, torn write, in-flight flip).
    Corrupt,
    /// The block is permanently unavailable (dead media region).
    Dead,
}

/// A failed block read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadError {
    /// Block that failed.
    pub block: usize,
    /// Failure class.
    pub kind: ReadErrorKind,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ReadErrorKind::Io => write!(f, "transient I/O error reading block {}", self.block),
            ReadErrorKind::Corrupt => write!(f, "checksum mismatch on block {}", self.block),
            ReadErrorKind::Dead => write!(f, "block {} is permanently unavailable", self.block),
        }
    }
}

impl std::error::Error for ReadError {}

/// Bounded retry-with-backoff policy for the read path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failed read (0 = fail fast).
    pub retries: usize,
    /// Base backoff slept after the first failure; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl RetryPolicy {
    /// No retries, no backoff — the pre-fault-tolerance behavior.
    pub fn none() -> Self {
        RetryPolicy { retries: 0, backoff: Duration::ZERO, backoff_cap: Duration::ZERO }
    }

    /// `retries` attempts with a 10 µs exponential backoff capped at 1 ms.
    pub fn with_retries(retries: usize) -> Self {
        RetryPolicy {
            retries,
            backoff: Duration::from_micros(10),
            backoff_cap: Duration::from_millis(1),
        }
    }

    /// Backoff to sleep after failed attempt number `attempt` (0-based).
    pub fn backoff_for(&self, attempt: usize) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.min(16) as u32;
        self.backoff.saturating_mul(factor).min(self.backoff_cap)
    }
}

impl Default for RetryPolicy {
    /// Three retries with exponential backoff.
    fn default() -> Self {
        RetryPolicy::with_retries(3)
    }
}

/// Running I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Block reads served (including reads that later failed verification).
    pub reads: u64,
    /// Block writes performed.
    pub writes: u64,
}

/// Fixed-block-size storage of `f64` items with per-block checksums.
///
/// `read_into` / `read_block` are the *verified* read path: the payload is
/// copied out and its FNV-1a digest compared against the checksum recorded
/// by the last `write_block`. `read_raw_into` skips verification — it is
/// the substrate fault wrappers and recovery tools build on.
pub trait BlockDevice {
    /// Items per block.
    fn block_size(&self) -> usize;

    /// Number of blocks.
    fn num_blocks(&self) -> usize;

    /// Copies the stored payload of `id` into `buf` without verifying it.
    ///
    /// # Panics
    /// If the id is out of range or `buf` is not `block_size` long.
    fn read_raw_into(&self, id: usize, buf: &mut [f64]) -> Result<(), ReadError>;

    /// Checksum recorded when block `id` was last written.
    fn stored_checksum(&self, id: usize) -> u64;

    /// Overwrites a whole block and records its checksum.
    ///
    /// # Panics
    /// If the id is out of range or the data length differs from the block
    /// size.
    fn write_block(&mut self, id: usize, data: &[f64]);

    /// Snapshot of the I/O counters.
    fn stats(&self) -> DeviceStats;

    /// Resets the I/O counters (e.g. after the load phase, before
    /// measuring a query workload).
    fn reset_stats(&self);

    /// Verified read: raw read plus checksum check. Corruption is always
    /// surfaced as [`ReadErrorKind::Corrupt`], never silently returned.
    fn read_into(&self, id: usize, buf: &mut [f64]) -> Result<(), ReadError> {
        self.read_raw_into(id, buf)?;
        if fnv1a_f64(buf) != self.stored_checksum(id) {
            return Err(ReadError { block: id, kind: ReadErrorKind::Corrupt });
        }
        Ok(())
    }

    /// Verified read into a fresh buffer.
    fn read_block(&self, id: usize) -> Result<Vec<f64>, ReadError> {
        let mut buf = vec![0.0; self.block_size()];
        self.read_into(id, &mut buf)?;
        Ok(buf)
    }

    /// Total capacity in items.
    fn capacity_items(&self) -> usize {
        self.block_size() * self.num_blocks()
    }
}

/// Raw-media access below the checksum layer: the hooks fault injection
/// needs to simulate corrupt hardware on any backing device.
///
/// [`MemDevice`] and the file-backed `FileDevice` both implement this, so
/// [`crate::faults::FaultyDevice`] can layer deterministic faults over
/// volatile and durable media alike.
pub trait RawMedia: BlockDevice {
    /// Overwrites the stored payload WITHOUT updating the checksum or the
    /// write counter — the media-corruption hook used by fault injection
    /// and the checksum tests.
    fn patch_raw(&mut self, id: usize, data: &[f64]);

    /// Uncounted copy of the currently stored payload (introspection and
    /// torn-write simulation; ignores checksums).
    fn raw_payload(&self, id: usize) -> Vec<f64>;
}

/// The instrumented in-memory device: infallible media, checksummed reads.
#[derive(Debug)]
pub struct MemDevice {
    block_size: usize,
    blocks: Vec<Vec<f64>>,
    checksums: Vec<u64>,
    stats: Mutex<DeviceStats>,
}

impl MemDevice {
    /// Creates a device with `num_blocks` zeroed blocks of `block_size`
    /// items each.
    ///
    /// # Panics
    /// If `block_size == 0`.
    pub fn new(block_size: usize, num_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let zero_sum = fnv1a_f64(&vec![0.0; block_size]);
        MemDevice {
            block_size,
            blocks: vec![vec![0.0; block_size]; num_blocks],
            checksums: vec![zero_sum; num_blocks],
            stats: Mutex::new(DeviceStats::default()),
        }
    }

    /// Appends a new zeroed block, returning its id.
    pub fn grow(&mut self) -> usize {
        self.blocks.push(vec![0.0; self.block_size]);
        self.checksums.push(fnv1a_f64(&vec![0.0; self.block_size]));
        self.blocks.len() - 1
    }

    /// Uncounted view of the stored payload (introspection / fault hooks).
    pub fn raw_block(&self, id: usize) -> &[f64] {
        assert!(id < self.blocks.len(), "block {id} out of range");
        &self.blocks[id]
    }

    /// Overwrites the stored payload WITHOUT updating the checksum or the
    /// write counter — the media-corruption hook used by
    /// [`crate::faults::FaultyDevice`] and the checksum tests.
    pub fn patch_raw(&mut self, id: usize, data: &[f64]) {
        assert!(id < self.blocks.len(), "block {id} out of range");
        assert_eq!(data.len(), self.block_size, "block data size mismatch");
        self.blocks[id].copy_from_slice(data);
    }

    /// Flips one bit of one stored item without updating the checksum.
    ///
    /// # Panics
    /// If the block or item is out of range or `bit >= 64`.
    pub fn flip_bit(&mut self, id: usize, item: usize, bit: u32) {
        assert!(id < self.blocks.len(), "block {id} out of range");
        assert!(item < self.block_size, "item {item} out of range");
        assert!(bit < 64, "bit {bit} out of range");
        let v = &mut self.blocks[id][item];
        *v = f64::from_bits(v.to_bits() ^ (1u64 << bit));
    }
}

impl RawMedia for MemDevice {
    fn patch_raw(&mut self, id: usize, data: &[f64]) {
        MemDevice::patch_raw(self, id, data);
    }

    fn raw_payload(&self, id: usize) -> Vec<f64> {
        self.raw_block(id).to_vec()
    }
}

impl BlockDevice for MemDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn read_raw_into(&self, id: usize, buf: &mut [f64]) -> Result<(), ReadError> {
        assert!(id < self.blocks.len(), "block {id} out of range");
        assert_eq!(buf.len(), self.block_size, "read buffer size mismatch");
        self.stats.lock().unwrap().reads += 1;
        io_counters().0.inc();
        buf.copy_from_slice(&self.blocks[id]);
        Ok(())
    }

    fn stored_checksum(&self, id: usize) -> u64 {
        assert!(id < self.checksums.len(), "block {id} out of range");
        self.checksums[id]
    }

    fn write_block(&mut self, id: usize, data: &[f64]) {
        assert!(id < self.blocks.len(), "block {id} out of range");
        assert_eq!(data.len(), self.block_size, "block data size mismatch");
        self.stats.lock().unwrap().writes += 1;
        io_counters().1.inc();
        self.blocks[id].copy_from_slice(data);
        self.checksums[id] = fnv1a_f64(data);
    }

    fn stats(&self) -> DeviceStats {
        *self.stats.lock().unwrap()
    }

    fn reset_stats(&self) {
        *self.stats.lock().unwrap() = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_and_counting() {
        let mut d = MemDevice::new(4, 3);
        assert_eq!(d.block_size(), 4);
        assert_eq!(d.num_blocks(), 3);
        assert_eq!(d.capacity_items(), 12);

        d.write_block(1, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.read_block(1).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.read_block(0).unwrap(), vec![0.0; 4]);
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
    }

    #[test]
    fn reset_and_grow() {
        let mut d = MemDevice::new(2, 1);
        d.write_block(0, &[1.0, 2.0]);
        d.reset_stats();
        assert_eq!(d.stats(), DeviceStats::default());
        let id = d.grow();
        assert_eq!(id, 1);
        assert_eq!(d.num_blocks(), 2);
        assert_eq!(d.read_block(1).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn corruption_is_detected_not_returned() {
        let mut d = MemDevice::new(4, 2);
        d.write_block(0, &[1.0, -2.0, 3.5, 0.25]);
        d.flip_bit(0, 2, 51);
        let err = d.read_block(0).unwrap_err();
        assert_eq!(err, ReadError { block: 0, kind: ReadErrorKind::Corrupt });
        // Raw reads still serve the (corrupt) payload for forensics.
        let mut buf = [0.0; 4];
        d.read_raw_into(0, &mut buf).unwrap();
        assert_ne!(buf[2].to_bits(), 3.5f64.to_bits());
    }

    #[test]
    fn patch_raw_breaks_checksum_until_rewrite() {
        let mut d = MemDevice::new(2, 1);
        d.write_block(0, &[1.0, 2.0]);
        d.patch_raw(0, &[1.0, 2.5]);
        assert_eq!(d.read_block(0).unwrap_err().kind, ReadErrorKind::Corrupt);
        d.write_block(0, &[1.0, 2.5]);
        assert_eq!(d.read_block(0).unwrap(), vec![1.0, 2.5]);
    }

    #[test]
    fn checksum_is_bit_exact() {
        // -0.0 vs 0.0 and NaN payload bits are all significant.
        assert_ne!(fnv1a_f64(&[0.0]), fnv1a_f64(&[-0.0]));
        let nan_a = f64::from_bits(0x7ff8_0000_0000_0001);
        let nan_b = f64::from_bits(0x7ff8_0000_0000_0002);
        assert_ne!(fnv1a_f64(&[nan_a]), fnv1a_f64(&[nan_b]));
        assert_eq!(fnv1a_f64(&[nan_a]), fnv1a_f64(&[nan_a]));
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy::with_retries(8);
        assert_eq!(p.backoff_for(0), Duration::from_micros(10));
        assert_eq!(p.backoff_for(1), Duration::from_micros(20));
        assert!(p.backoff_for(12) <= Duration::from_millis(1));
        assert_eq!(RetryPolicy::none().backoff_for(5), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_block_read_panics() {
        let _ = MemDevice::new(4, 2).read_block(2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_write_size_panics() {
        MemDevice::new(4, 2).write_block(0, &[1.0]);
    }
}
