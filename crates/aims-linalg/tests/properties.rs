//! Property-based tests of the linear-algebra kernel.

use proptest::prelude::*;

use aims_linalg::{symmetric_eigen, IncrementalSvd, Matrix, QrDecomposition, Svd, Vector};

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-50.0_f64..50.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A = UΣVᵀ with orthonormal U/V and sorted σ, for arbitrary shapes.
    #[test]
    fn svd_reconstructs(a in matrix_strategy(8)) {
        let svd = Svd::compute(&a);
        prop_assert!(svd.u.has_orthonormal_columns(1e-7));
        prop_assert!(svd.v.has_orthonormal_columns(1e-7));
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        for &s in &svd.singular_values {
            prop_assert!(s >= 0.0);
        }
        let scale = a.max_abs().max(1.0);
        prop_assert!(svd.reconstruct().approx_eq(&a, 1e-6 * scale));
    }

    /// Parseval for the SVD: Σσ² equals the squared Frobenius norm.
    #[test]
    fn svd_energy(a in matrix_strategy(7)) {
        let svd = Svd::compute(&a);
        let sv_energy: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        prop_assert!((sv_energy - a.energy()).abs() < 1e-6 * a.energy().max(1.0));
    }

    /// Eckart–Young: the rank-k truncation error is the discarded σ².
    #[test]
    fn svd_truncation_error(a in matrix_strategy(6), k in 0usize..6) {
        let svd = Svd::compute(&a);
        let k = k.min(svd.len());
        let err = (&a - &svd.reconstruct_rank(k)).energy();
        let expect: f64 = svd.singular_values.iter().skip(k).map(|s| s * s).sum();
        prop_assert!((err - expect).abs() < 1e-5 * a.energy().max(1.0));
    }

    /// QR: Q orthonormal, R upper-triangular, QR = A (tall shapes).
    #[test]
    fn qr_reconstructs(
        (rows, cols) in (1usize..=8).prop_flat_map(|c| ((c..=8), Just(c))),
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(6364136223846793005).max(1);
        let a = Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 50.0 - 10.0
        });
        let qr = QrDecomposition::new(&a);
        prop_assert!(qr.q.has_orthonormal_columns(1e-8));
        for i in 0..cols {
            for j in 0..i {
                prop_assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
        prop_assert!(qr.reconstruct().approx_eq(&a, 1e-7 * a.max_abs().max(1.0)));
    }

    /// Symmetric eigen: QΛQᵀ = A, Q orthonormal, trace preserved.
    #[test]
    fn eigen_reconstructs(n in 1usize..=7, seed in 0u64..1000) {
        let mut state = seed.wrapping_mul(2862933555777941757).max(1);
        let half = Matrix::from_fn(n, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64 / 10.0 - 5.0
        });
        // Symmetrize.
        let a = Matrix::from_fn(n, n, |i, j| (half[(i, j)] + half[(j, i)]) / 2.0);
        let e = symmetric_eigen(&a);
        prop_assert!(e.eigenvectors.has_orthonormal_columns(1e-8));
        prop_assert!(e.reconstruct().approx_eq(&a, 1e-7 * a.max_abs().max(1.0)));
        let tr: f64 = e.eigenvalues.iter().sum();
        prop_assert!((tr - a.trace()).abs() < 1e-8 * a.trace().abs().max(1.0));
    }

    /// Incremental SVD singular values match the batch values when no
    /// truncation occurs.
    #[test]
    fn incremental_matches_batch(a in matrix_strategy(6)) {
        let mut inc = IncrementalSvd::new(a.rows(), a.rows());
        inc.append_matrix(&a);
        let batch = Svd::compute(&a);
        let scale = batch.singular_values.first().copied().unwrap_or(1.0).max(1e-9);
        // Compare the significant singular values.
        for (i, sb) in batch.singular_values.iter().enumerate() {
            if *sb < 1e-9 * scale {
                break;
            }
            prop_assert!(i < inc.singular_values().len(), "missing σ{}", i);
            let si = inc.singular_values()[i];
            prop_assert!(
                (si - sb).abs() < 1e-6 * scale,
                "σ{}: {} vs {}", i, si, sb
            );
        }
    }

    /// Matrix multiplication is associative and distributes over addition.
    #[test]
    fn matmul_laws(seed in 0u64..500, n in 1usize..=5) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut gen = || {
            Matrix::from_fn(n, n, |_, _| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 19) as f64 - 9.0
            })
        };
        let (a, b, c) = (gen(), gen(), gen());
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-6 * left.max_abs().max(1.0)));
        let dist_l = a.matmul(&(&b + &c));
        let dist_r = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(dist_l.approx_eq(&dist_r, 1e-6 * dist_l.max_abs().max(1.0)));
    }

    /// Cauchy–Schwarz over random vectors.
    #[test]
    fn cauchy_schwarz(
        a in prop::collection::vec(-10.0_f64..10.0, 1..32),
        seed in 0u64..100,
    ) {
        let n = a.len();
        let mut state = seed.max(1);
        let b: Vector = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 21) as f64 - 10.0
            })
            .collect();
        let a = Vector::from(a);
        prop_assert!(a.dot(&b).abs() <= a.norm() * b.norm() + 1e-9);
    }
}
