//! Blocked/parallel linalg kernels must be bit-identical across pool sizes.

use proptest::prelude::*;

use aims_exec::ThreadPool;
use aims_linalg::{Matrix, QrDecomposition, Svd, SvdOptions};

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim)
        .prop_flat_map(|(m, n)| (Just((m, n)), prop::collection::vec(-10.0_f64..10.0, m * n)))
        .prop_map(|((m, n), data)| Matrix::from_fn(m, n, |i, j| data[i * n + j]))
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked parallel matmul equals the serial result bit for bit, for
    /// every compatible shape and pool size.
    #[test]
    fn matmul_bit_identical_across_pools(
        (a, b) in (1usize..=40, 1usize..=40, 1usize..=40).prop_flat_map(|(m, k, n)| {
            (
                prop::collection::vec(-10.0_f64..10.0, m * k)
                    .prop_map(move |d| Matrix::from_fn(m, k, |i, j| d[i * k + j])),
                prop::collection::vec(-10.0_f64..10.0, k * n)
                    .prop_map(move |d| Matrix::from_fn(k, n, |i, j| d[i * n + j])),
            )
        }),
    ) {
        let reference = a.matmul_with(&ThreadPool::new(1), &b);
        for threads in [2, 8] {
            let got = a.matmul_with(&ThreadPool::new(threads), &b);
            prop_assert_eq!(bits(&got), bits(&reference), "threads={}", threads);
        }
    }

    /// One-sided Jacobi SVD is bit-identical across pool sizes: the column
    /// moments use a fixed block decomposition and the rotations are
    /// elementwise.
    #[test]
    fn svd_bit_identical_across_pools(a in matrix_strategy(12)) {
        let opts = SvdOptions::default();
        let reference = Svd::compute_on(&ThreadPool::new(1), &a, opts);
        for threads in [2, 8] {
            let got = Svd::compute_on(&ThreadPool::new(threads), &a, opts);
            let rb: Vec<u64> = reference.singular_values.iter().map(|x| x.to_bits()).collect();
            let gb: Vec<u64> = got.singular_values.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(gb, rb, "singular values, threads={}", threads);
            prop_assert_eq!(bits(&got.u), bits(&reference.u), "U, threads={}", threads);
            prop_assert_eq!(bits(&got.v), bits(&reference.v), "V, threads={}", threads);
        }
    }

    /// Householder QR with the blocked two-pass rank-1 update is
    /// bit-identical across pool sizes.
    #[test]
    fn qr_bit_identical_across_pools(
        a in (1usize..=16, 1usize..=16)
            .prop_map(|(x, y)| (x.max(y), x.min(y)))
            .prop_flat_map(|(m, n)| {
                (Just((m, n)), prop::collection::vec(-10.0_f64..10.0, m * n))
            })
            .prop_map(|((m, n), d)| Matrix::from_fn(m, n, |i, j| d[i * n + j])),
    ) {
        let reference = QrDecomposition::new_with(&ThreadPool::new(1), &a);
        for threads in [2, 8] {
            let got = QrDecomposition::new_with(&ThreadPool::new(threads), &a);
            prop_assert_eq!(bits(&got.q), bits(&reference.q), "Q, threads={}", threads);
            prop_assert_eq!(bits(&got.r), bits(&reference.r), "R, threads={}", threads);
        }
    }
}
