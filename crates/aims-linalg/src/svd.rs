//! One-sided Jacobi singular value decomposition.
//!
//! The weighted-sum SVD similarity measure of the AIMS paper (§3.4) compares
//! the singular structure of two sensor-stream matrices. One-sided Jacobi is
//! the classic choice for small dense matrices: it is simple, numerically
//! robust, and computes small singular values to high relative accuracy.

use crate::matrix::Matrix;

/// Convergence controls for [`Svd::compute_with`].
#[derive(Clone, Copy, Debug)]
pub struct SvdOptions {
    /// Off-diagonal orthogonality tolerance, relative to the column norms.
    pub tolerance: f64,
    /// Maximum number of Jacobi sweeps before giving up.
    pub max_sweeps: usize,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions { tolerance: 1e-12, max_sweeps: 60 }
    }
}

/// A (thin) singular value decomposition `A = U Σ Vᵀ`.
///
/// ```
/// use aims_linalg::{Matrix, Svd};
///
/// let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]);
/// let svd = Svd::compute(&a);
/// assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
/// assert!(svd.reconstruct().approx_eq(&a, 1e-10));
/// ```
///
/// For an `m × n` input with `k = min(m, n)`:
/// `u` is `m × k` with orthonormal columns, `singular_values` holds the `k`
/// singular values in non-increasing order, and `v` is `n × k` with
/// orthonormal columns.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × k`.
    pub u: Matrix,
    /// Singular values, non-increasing, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n × k`.
    pub v: Matrix,
}

impl Svd {
    /// Computes the SVD of `a` with default options.
    pub fn compute(a: &Matrix) -> Self {
        Self::compute_with(a, SvdOptions::default())
    }

    /// Computes the SVD of `a` with explicit convergence options, on the
    /// process-wide [`aims_exec`] pool.
    pub fn compute_with(a: &Matrix, opts: SvdOptions) -> Self {
        Self::compute_on(aims_exec::global_pool(), a, opts)
    }

    /// Computes the SVD of `a` on an explicit thread pool.
    ///
    /// Internally runs one-sided Jacobi on the tall orientation (transposing
    /// a wide input and swapping `U`/`V` back at the end), so the cost is
    /// `O(max(m,n) · min(m,n)² · sweeps)`. The working copy is stored
    /// column-major so each rotation streams two contiguous vectors; the
    /// column inner products use the fixed-block decomposition of
    /// [`aims_exec::ThreadPool::par_map_blocks`] and the rotation itself is
    /// elementwise, so results are bit-identical for every pool size.
    pub fn compute_on(pool: &aims_exec::ThreadPool, a: &Matrix, opts: SvdOptions) -> Self {
        let _span = aims_telemetry::span!("linalg.svd.compute");
        let (m, n) = a.shape();
        if m < n {
            let t = Self::compute_on(pool, &a.transpose(), opts);
            return Svd { u: t.v, singular_values: t.singular_values, v: t.u };
        }
        if n == 0 {
            return Svd { u: Matrix::zeros(m, 0), singular_values: vec![], v: Matrix::zeros(0, 0) };
        }

        // One-sided Jacobi: orthogonalize the columns of a working copy of A
        // by right-multiplying plane rotations; the accumulated rotations
        // form V, the column norms form Σ, and the normalized columns form U.
        // Both working arrays are transposed (row j = column j of the
        // mathematical matrix) so rotations touch contiguous memory.
        let mut wt = vec![0.0; n * m];
        for i in 0..m {
            for (j, &x) in a.row(i).iter().enumerate() {
                wt[j * m + i] = x;
            }
        }
        let mut vt = vec![0.0; n * n];
        for j in 0..n {
            vt[j * n + j] = 1.0;
        }

        for _sweep in 0..opts.max_sweeps {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    let (alpha, beta, gamma) =
                        column_moments(pool, &wt[p * m..(p + 1) * m], &wt[q * m..(q + 1) * m]);
                    if gamma.abs() <= opts.tolerance * (alpha * beta).sqrt() || gamma == 0.0 {
                        continue;
                    }
                    rotated = true;

                    // Jacobi rotation annihilating the (p,q) off-diagonal of
                    // WᵀW (Golub & Van Loan §8.6.3).
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;

                    let (wp, wq) = two_rows_mut(&mut wt, m, p, q);
                    rotate_pair(pool, wp, wq, c, s);
                    let (vp, vq) = two_rows_mut(&mut vt, n, p, q);
                    rotate_pair(pool, vp, vq, c, s);
                }
            }
            if !rotated {
                break;
            }
        }

        // Extract singular values (column norms) and left vectors.
        let mut sigma: Vec<f64> = (0..n)
            .map(|j| wt[j * m..(j + 1) * m].iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();

        // Sort by descending singular value, permuting U's and V's columns.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| sigma[b].partial_cmp(&sigma[a]).unwrap());

        let mut u = Matrix::zeros(m, n);
        let mut v_sorted = Matrix::zeros(n, n);
        let mut sigma_sorted = vec![0.0; n];
        for (dst, &src) in order.iter().enumerate() {
            sigma_sorted[dst] = sigma[src];
            let s = sigma[src];
            for (i, &x) in wt[src * m..(src + 1) * m].iter().enumerate() {
                u[(i, dst)] = if s > crate::EPS { x / s } else { 0.0 };
            }
            for (i, &x) in vt[src * n..(src + 1) * n].iter().enumerate() {
                v_sorted[(i, dst)] = x;
            }
        }
        sigma = sigma_sorted;

        // For zero singular values the corresponding U column is left zero;
        // this keeps A = UΣVᵀ exact, and callers that need a full basis can
        // re-orthonormalize. (Immersidata similarity only uses non-null
        // directions.)
        Svd { u, singular_values: sigma, v: v_sorted }
    }

    /// Number of singular values `k = min(m, n)`.
    pub fn len(&self) -> usize {
        self.singular_values.len()
    }

    /// True when the decomposition carries no singular values.
    pub fn is_empty(&self) -> bool {
        self.singular_values.is_empty()
    }

    /// Numerical rank: the number of singular values above
    /// `tol * max singular value`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        if max <= 0.0 {
            return 0;
        }
        self.singular_values.iter().filter(|&&s| s > tol * max).count()
    }

    /// Reconstructs `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let us = {
            let mut us = self.u.clone();
            for j in 0..self.singular_values.len() {
                for i in 0..us.rows() {
                    us[(i, j)] *= self.singular_values[j];
                }
            }
            us
        };
        us.matmul(&self.v.transpose())
    }

    /// Reconstructs the best rank-`k` approximation `U_k Σ_k V_kᵀ`
    /// (Eckart–Young optimal in Frobenius and spectral norm).
    pub fn reconstruct_rank(&self, k: usize) -> Matrix {
        let k = k.min(self.len());
        let (m, n) = (self.u.rows(), self.v.rows());
        let mut out = Matrix::zeros(m, n);
        for r in 0..k {
            let s = self.singular_values[r];
            for i in 0..m {
                let uis = self.u[(i, r)] * s;
                if uis == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += uis * self.v[(j, r)];
                }
            }
        }
        out
    }

    /// Fraction of the total squared energy captured by the top `k`
    /// singular values.
    pub fn energy_fraction(&self, k: usize) -> f64 {
        let total: f64 = self.singular_values.iter().map(|s| s * s).sum();
        if total <= 0.0 {
            return 1.0;
        }
        let kept: f64 = self.singular_values.iter().take(k).map(|s| s * s).sum();
        kept / total
    }
}

/// Fixed block length for the deterministic parallel column moments: the
/// decomposition depends only on the vector length, never the pool size.
const MOMENT_BLOCK: usize = 4096;

/// Minimum rotation length worth fanning out; below this the spawn overhead
/// dwarfs the arithmetic.
const MIN_PAR_ROTATE: usize = 8192;

/// Returns `(Σ wp², Σ wq², Σ wp·wq)` for two equal-length columns, reduced
/// over fixed `MOMENT_BLOCK`-sized blocks folded in block order so the
/// result is bit-identical for every pool size.
fn column_moments(pool: &aims_exec::ThreadPool, wp: &[f64], wq: &[f64]) -> (f64, f64, f64) {
    debug_assert_eq!(wp.len(), wq.len());
    let partials = pool.par_map_blocks(wp.len(), MOMENT_BLOCK, |r| {
        let mut alpha = 0.0;
        let mut beta = 0.0;
        let mut gamma = 0.0;
        for (&x, &y) in wp[r.clone()].iter().zip(&wq[r]) {
            alpha += x * x;
            beta += y * y;
            gamma += x * y;
        }
        (alpha, beta, gamma)
    });
    partials.into_iter().fold((0.0, 0.0, 0.0), |(a, b, g), (pa, pb, pg)| (a + pa, b + pb, g + pg))
}

/// Disjoint mutable views of rows `p < q` of a row-major `len`-wide array.
fn two_rows_mut(data: &mut [f64], len: usize, p: usize, q: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(p < q);
    let (head, tail) = data.split_at_mut(q * len);
    (&mut head[p * len..(p + 1) * len], &mut tail[..len])
}

/// Applies the plane rotation `[c -s; s c]` to the column pair in place.
/// Purely elementwise, so the parallel split cannot change any result bit.
fn rotate_pair(pool: &aims_exec::ThreadPool, wp: &mut [f64], wq: &mut [f64], c: f64, s: f64) {
    debug_assert_eq!(wp.len(), wq.len());
    let rotate = |cp: &mut [f64], cq: &mut [f64]| {
        // 4-way unrolled over independent elements: the rotation of each
        // (xp, xq) pair touches no other element, so the unroll cannot
        // change a single bit — it only hands the compiler four disjoint
        // multiply-add chains to vectorize.
        let mut ps = cp.chunks_exact_mut(4);
        let mut qs = cq.chunks_exact_mut(4);
        for (p4, q4) in ps.by_ref().zip(qs.by_ref()) {
            for (xp, xq) in p4.iter_mut().zip(q4.iter_mut()) {
                let a = *xp;
                let b = *xq;
                *xp = c * a - s * b;
                *xq = s * a + c * b;
            }
        }
        for (xp, xq) in ps.into_remainder().iter_mut().zip(qs.into_remainder()) {
            let a = *xp;
            let b = *xq;
            *xp = c * a - s * b;
            *xq = s * a + c * b;
        }
    };
    if pool.is_serial() || wp.len() < MIN_PAR_ROTATE {
        rotate(wp, wq);
        return;
    }
    pool.run(|scope| {
        for (cp, cq) in wp.chunks_mut(MOMENT_BLOCK).zip(wq.chunks_mut(MOMENT_BLOCK)) {
            let rotate = &rotate;
            scope.spawn(move || rotate(cp, cq));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        // Tiny xorshift so the tests need no external RNG.
        let mut state = seed.wrapping_mul(2685821657736338717).max(1);
        Matrix::from_fn(m, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn diagonal_matrix_svd_is_its_diagonal() {
        let a = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let svd = Svd::compute(&a);
        assert_eq!(svd.singular_values.len(), 3);
        assert!(crate::approx_eq(svd.singular_values[0], 3.0, 1e-10));
        assert!(crate::approx_eq(svd.singular_values[1], 2.0, 1e-10));
        assert!(crate::approx_eq(svd.singular_values[2], 1.0, 1e-10));
        assert!(svd.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn singular_values_are_sorted_descending() {
        let a = random_matrix(10, 6, 42);
        let svd = Svd::compute(&a);
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn reconstruction_tall_and_wide() {
        for (m, n, seed) in [(8, 5, 1), (5, 8, 2), (6, 6, 3)] {
            let a = random_matrix(m, n, seed);
            let svd = Svd::compute(&a);
            assert!(svd.reconstruct().approx_eq(&a, 1e-9), "reconstruction failed for {m}x{n}");
            assert!(svd.u.has_orthonormal_columns(1e-9));
            assert!(svd.v.has_orthonormal_columns(1e-9));
        }
    }

    #[test]
    fn rank_detection_on_rank_one_matrix() {
        // Outer product => rank 1.
        let a = Matrix::from_fn(6, 4, |i, j| (i as f64 + 1.0) * (j as f64 + 1.0));
        let svd = Svd::compute(&a);
        assert_eq!(svd.rank(1e-9), 1);
        assert!(svd.reconstruct_rank(1).approx_eq(&a, 1e-9));
    }

    #[test]
    fn frobenius_norm_equals_singular_value_energy() {
        let a = random_matrix(7, 7, 9);
        let svd = Svd::compute(&a);
        let sv_energy: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        assert!(crate::approx_eq(sv_energy, a.energy(), 1e-9));
    }

    #[test]
    fn eckart_young_rank_k_error() {
        let a = random_matrix(9, 6, 17);
        let svd = Svd::compute(&a);
        for k in 0..=6 {
            let err = (&a - &svd.reconstruct_rank(k)).energy();
            let expect: f64 = svd.singular_values.iter().skip(k).map(|s| s * s).sum();
            assert!(crate::approx_eq(err, expect, 1e-8), "k={k}: {err} vs {expect}");
        }
    }

    #[test]
    fn energy_fraction_monotone_to_one() {
        let a = random_matrix(8, 4, 5);
        let svd = Svd::compute(&a);
        let mut prev = 0.0;
        for k in 0..=4 {
            let f = svd.energy_fraction(k);
            assert!(f >= prev - 1e-15);
            prev = f;
        }
        assert!(crate::approx_eq(prev, 1.0, 1e-12));
    }

    #[test]
    fn zero_matrix_svd() {
        let a = Matrix::zeros(4, 3);
        let svd = Svd::compute(&a);
        assert!(svd.singular_values.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-12), 0);
        assert!(svd.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn empty_matrix_svd() {
        let a = Matrix::zeros(3, 0);
        let svd = Svd::compute(&a);
        assert!(svd.is_empty());
    }

    #[test]
    fn orthogonal_input_has_unit_singular_values() {
        let r2 = std::f64::consts::FRAC_1_SQRT_2;
        let a = Matrix::from_rows(&[vec![r2, -r2], vec![r2, r2]]);
        let svd = Svd::compute(&a);
        for s in &svd.singular_values {
            assert!(crate::approx_eq(*s, 1.0, 1e-12));
        }
    }
}
