//! Random projections for dimension reduction.
//!
//! §3.3.1 of the AIMS paper lists "dimension reduction techniques such as
//! random projections" among the planned ProPolyne refinements, and the
//! online analysis faces the "dimensionality curse" head-on (§3.4.2). A
//! Johnson–Lindenstrauss projection — a seeded Gaussian matrix scaled by
//! `1/√k` — preserves pairwise distances within `(1 ± ε)` with high
//! probability, turning long feature vectors into short sketches that the
//! similarity machinery can compare cheaply.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// A seeded Gaussian random projection `ℝᵈ → ℝᵏ`.
#[derive(Clone, Debug)]
pub struct RandomProjection {
    /// `k × d` projection matrix (rows already scaled by `1/√k`).
    matrix: Matrix,
}

impl RandomProjection {
    /// Creates a projection from `input_dim` to `output_dim` dimensions,
    /// deterministic in `seed`.
    ///
    /// # Panics
    /// If either dimension is zero.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "dimensions must be positive");
        // Deterministic Gaussian entries via xorshift + Box–Muller.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next_unit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let scale = 1.0 / (output_dim as f64).sqrt();
        let matrix = Matrix::from_fn(output_dim, input_dim, |_, _| {
            let u1 = next_unit().max(f64::MIN_POSITIVE);
            let u2 = next_unit();
            scale * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        });
        RandomProjection { matrix }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Output (sketch) dimensionality.
    pub fn output_dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Projects one vector.
    ///
    /// # Panics
    /// If `v.len() != input_dim()`.
    pub fn project(&self, v: &Vector) -> Vector {
        self.matrix.mul_vec(v)
    }

    /// Projects every *column* of a `d × n` matrix (e.g. a sensor window
    /// whose columns are frames), yielding the `k × n` sketch.
    pub fn project_columns(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.rows(), self.input_dim(), "column dimension mismatch");
        self.matrix.matmul(m)
    }

    /// The suggested sketch dimension for `n` points at distortion `eps`
    /// (the Johnson–Lindenstrauss bound `k ≈ 8·ln n / ε²`).
    pub fn suggested_dim(n_points: usize, eps: f64) -> usize {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        ((8.0 * (n_points.max(2) as f64).ln()) / (eps * eps)).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_vectors(n: usize, d: usize, seed: u64) -> Vec<Vector> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state % 2000) as f64 / 100.0 - 10.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomProjection::new(50, 10, 7);
        let b = RandomProjection::new(50, 10, 7);
        let v = Vector::filled(50, 1.0);
        assert!(a.project(&v).approx_eq(&b.project(&v), 1e-15));
        let c = RandomProjection::new(50, 10, 8);
        assert!(!a.project(&v).approx_eq(&c.project(&v), 1e-6));
    }

    #[test]
    fn projection_is_linear() {
        let p = RandomProjection::new(30, 8, 3);
        let vs = random_vectors(2, 30, 5);
        let combined = {
            let mut x = vs[0].scaled(2.0);
            x.axpy(-1.0, &vs[1]);
            x
        };
        let direct = p.project(&combined);
        let mut via = p.project(&vs[0]).scaled(2.0);
        via.axpy(-1.0, &p.project(&vs[1]));
        assert!(direct.approx_eq(&via, 1e-10));
    }

    #[test]
    fn distances_preserved_within_epsilon() {
        // JL: with k = suggested_dim(n, 0.5) the pairwise distances of n
        // points survive within ±50% (generous, so the test is stable).
        let n = 20;
        let d = 200;
        let k = RandomProjection::suggested_dim(n, 0.5);
        let p = RandomProjection::new(d, k, 11);
        let points = random_vectors(n, d, 21);
        let sketches: Vec<Vector> = points.iter().map(|v| p.project(v)).collect();
        let mut violations = 0;
        let mut pairs = 0;
        for i in 0..n {
            for j in i + 1..n {
                let orig = (&points[i] - &points[j]).norm();
                let proj = (&sketches[i] - &sketches[j]).norm();
                pairs += 1;
                if (proj / orig - 1.0).abs() > 0.5 {
                    violations += 1;
                }
            }
        }
        assert!(violations * 20 <= pairs, "{violations}/{pairs} pairs outside the distortion band");
    }

    #[test]
    fn expected_norm_is_preserved() {
        // E[‖Px‖²] = ‖x‖²: check the average over many projections of one
        // vector.
        let v: Vector = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut ratio_sum = 0.0;
        let trials = 60;
        for seed in 0..trials {
            let p = RandomProjection::new(64, 16, seed);
            ratio_sum += p.project(&v).norm_sq() / v.norm_sq();
        }
        let mean = ratio_sum / trials as f64;
        assert!((mean - 1.0).abs() < 0.15, "mean norm ratio {mean}");
    }

    #[test]
    fn project_columns_matches_per_vector() {
        let p = RandomProjection::new(12, 4, 9);
        let m = Matrix::from_fn(12, 5, |i, j| (i * 5 + j) as f64 * 0.3);
        let sketch = p.project_columns(&m);
        assert_eq!(sketch.shape(), (4, 5));
        for j in 0..5 {
            let direct = p.project(&m.column(j));
            assert!(sketch.column(j).approx_eq(&direct, 1e-12), "column {j}");
        }
    }

    #[test]
    fn suggested_dim_scales() {
        assert!(
            RandomProjection::suggested_dim(100, 0.5) < RandomProjection::suggested_dim(100, 0.1)
        );
        assert!(
            RandomProjection::suggested_dim(10, 0.3) < RandomProjection::suggested_dim(10_000, 0.3)
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        RandomProjection::new(0, 4, 1);
    }
}
