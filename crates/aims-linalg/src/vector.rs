//! Dense vector type used across the AIMS linear-algebra kernel.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense `f64` vector.
///
/// A thin wrapper over `Vec<f64>` providing the dot products, norms and
/// elementwise arithmetic the SVD and similarity code need.
#[derive(Clone, PartialEq, Default)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector(vec![0.0; n])
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector(vec![value; n])
    }

    /// Creates the `i`-th standard basis vector of length `n`.
    ///
    /// # Panics
    /// If `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of bounds for length {n}");
        let mut v = Vector::zeros(n);
        v[i] = 1.0;
        v
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrows the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the backing `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.0
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    /// If lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot product length mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// Maximum absolute entry.
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Scales the vector in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.0 {
            *x *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f64) -> Vector {
        let mut v = self.clone();
        v.scale(s);
        v
    }

    /// Normalizes in place to unit L2 norm, returning the original norm.
    /// A zero (or near-zero) vector is left untouched.
    pub fn normalize(&mut self) -> f64 {
        let n = self.norm();
        if n > crate::EPS {
            self.scale(1.0 / n);
        }
        n
    }

    /// `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    /// If lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += alpha * b;
        }
    }

    /// Arithmetic mean of the entries; `0.0` for an empty vector.
    pub fn mean(&self) -> f64 {
        if self.0.is_empty() {
            0.0
        } else {
            self.0.iter().sum::<f64>() / self.0.len() as f64
        }
    }

    /// Population variance of the entries; `0.0` for an empty vector.
    pub fn variance(&self) -> f64 {
        if self.0.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.0.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.0.len() as f64
    }

    /// `true` when entries agree pairwise to within `tol`.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len() && self.0.iter().zip(&other.0).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector add length mismatch");
        Vector(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector sub length mismatch");
        Vector(self.0.iter().zip(&rhs.0).map(|(a, b)| a - b).collect())
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        self.scaled(s)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector[")?;
        for (i, x) in self.0.iter().take(12).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.0.len() > 12 {
            write!(f, ", … ({} total)", self.0.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], 2.0);
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
        let b = Vector::basis(4, 2);
        assert_eq!(b.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn basis_out_of_bounds_panics() {
        Vector::basis(3, 3);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from(vec![3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm_l1(), 7.0);
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = Vector::from(vec![0.0, 3.0, 4.0]);
        let n = v.normalize();
        assert_eq!(n, 5.0);
        assert!((v.norm() - 1.0).abs() < 1e-15);

        let mut z = Vector::zeros(3);
        assert_eq!(z.normalize(), 0.0);
        assert_eq!(z, Vector::zeros(3));
    }

    #[test]
    fn axpy_and_operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[6.0, 12.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut d = a.clone();
        d += &b;
        d -= &b;
        assert!(d.approx_eq(&a, 1e-15));
    }

    #[test]
    fn mean_and_variance() {
        let v = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.mean(), 2.5);
        assert_eq!(v.variance(), 1.25);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
        assert_eq!(Vector::zeros(0).variance(), 0.0);
    }

    #[test]
    fn from_iterator() {
        let v: Vector = (0..4).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
