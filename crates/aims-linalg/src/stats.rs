//! Second-order statistics over sample matrices.
//!
//! The bridge between the online component (SVD similarity) and ProPolyne:
//! per §3.4.1 and Shao's observation, all second-order statistics (variance,
//! covariance, PCA/SVD inputs) are derivable from SUMs of second-order
//! polynomials. These helpers compute the same quantities directly, so tests
//! and experiments can check that the range-sum route and the direct route
//! agree.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// Column means of a samples-by-variables matrix (`n × d` → length-`d`).
pub fn column_means(samples: &Matrix) -> Vector {
    let (n, d) = samples.shape();
    if n == 0 {
        return Vector::zeros(d);
    }
    let mut means = vec![0.0; d];
    for i in 0..n {
        for (j, m) in means.iter_mut().enumerate() {
            *m += samples[(i, j)];
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    Vector::from(means)
}

/// Population covariance matrix of a samples-by-variables matrix.
///
/// `cov[j][k] = (1/n) Σᵢ (xᵢⱼ − μⱼ)(xᵢₖ − μₖ)` — the population (divide by
/// `n`) convention, matching what a COUNT/SUM/SUM-of-products range-sum query
/// reconstructs without needing `n−1`.
///
/// Returns the `d × d` zero matrix for an empty sample set.
pub fn covariance_matrix(samples: &Matrix) -> Matrix {
    let (n, d) = samples.shape();
    if n == 0 {
        return Matrix::zeros(d, d);
    }
    let mu = column_means(samples);
    let mut cov = Matrix::zeros(d, d);
    for i in 0..n {
        for j in 0..d {
            let xj = samples[(i, j)] - mu[j];
            for k in j..d {
                let xk = samples[(i, k)] - mu[k];
                cov[(j, k)] += xj * xk;
            }
        }
    }
    let inv = 1.0 / n as f64;
    for j in 0..d {
        for k in j..d {
            cov[(j, k)] *= inv;
            cov[(k, j)] = cov[(j, k)];
        }
    }
    cov
}

/// Uncentered second-moment (Gram) matrix `(1/n) XᵀX`.
///
/// This is exactly the matrix assembled from plain `SUM(xⱼ·xₖ)` range sums
/// divided by `COUNT`, i.e. the quantity ProPolyne computes natively; the
/// covariance follows by subtracting the outer product of the means.
pub fn gram_matrix(samples: &Matrix) -> Matrix {
    let (n, d) = samples.shape();
    if n == 0 {
        return Matrix::zeros(d, d);
    }
    let mut g = Matrix::zeros(d, d);
    for i in 0..n {
        for j in 0..d {
            let xj = samples[(i, j)];
            for k in j..d {
                g[(j, k)] += xj * samples[(i, k)];
            }
        }
    }
    let inv = 1.0 / n as f64;
    for j in 0..d {
        for k in j..d {
            g[(j, k)] *= inv;
            g[(k, j)] = g[(j, k)];
        }
    }
    g
}

/// Reconstructs the covariance matrix from the Gram matrix and the mean
/// vector: `cov = gram − μ μᵀ`. This is the Shao reduction used by
/// `aims-propolyne::stats`.
pub fn covariance_from_moments(gram: &Matrix, means: &Vector) -> Matrix {
    let d = means.len();
    assert_eq!(gram.shape(), (d, d), "gram/mean dimension mismatch");
    Matrix::from_fn(d, d, |j, k| gram[(j, k)] - means[j] * means[k])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0], vec![4.0, 8.0]])
    }

    #[test]
    fn means_are_columnwise() {
        let mu = column_means(&samples());
        assert!(mu.approx_eq(&Vector::from(vec![2.5, 5.0]), 1e-12));
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let cov = covariance_matrix(&samples());
        // var(x) = 1.25, var(y) = 5.0, cov = 2.5 (population).
        assert!(crate::approx_eq(cov[(0, 0)], 1.25, 1e-12));
        assert!(crate::approx_eq(cov[(1, 1)], 5.0, 1e-12));
        assert!(crate::approx_eq(cov[(0, 1)], 2.5, 1e-12));
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
        // Perfect correlation: cov² = var·var.
        assert!(crate::approx_eq(cov[(0, 1)] * cov[(0, 1)], cov[(0, 0)] * cov[(1, 1)], 1e-12));
    }

    #[test]
    fn gram_minus_mean_outer_product_is_covariance() {
        let x = samples();
        let cov = covariance_matrix(&x);
        let via_moments = covariance_from_moments(&gram_matrix(&x), &column_means(&x));
        assert!(cov.approx_eq(&via_moments, 1e-12));
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let empty = Matrix::zeros(0, 3);
        assert_eq!(covariance_matrix(&empty), Matrix::zeros(3, 3));
        assert_eq!(gram_matrix(&empty), Matrix::zeros(3, 3));
        assert_eq!(column_means(&empty), Vector::zeros(3));

        let one = Matrix::from_rows(&[vec![7.0, -1.0]]);
        let cov = covariance_matrix(&one);
        assert!(cov.approx_eq(&Matrix::zeros(2, 2), 1e-12));
    }

    #[test]
    fn covariance_is_positive_semidefinite() {
        let x = Matrix::from_rows(&[
            vec![0.3, -1.2, 2.0],
            vec![1.7, 0.4, -0.5],
            vec![-0.8, 2.2, 1.1],
            vec![0.9, -0.6, 0.0],
            vec![2.1, 1.0, -1.4],
        ]);
        let cov = covariance_matrix(&x);
        let eig = crate::eigen::symmetric_eigen(&cov);
        for &l in &eig.eigenvalues {
            assert!(l >= -1e-10, "negative eigenvalue {l}");
        }
    }
}
