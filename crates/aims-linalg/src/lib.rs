//! Dense linear algebra for AIMS.
//!
//! The AIMS paper (CIDR 2003, §3.4) builds its online query-and-analysis
//! component on the singular value decomposition of aggregated sensor
//! streams, and §3.4.1 calls for *incremental* SVD so that sliding-window
//! similarity can reuse work between windows. This crate provides the small,
//! self-contained dense linear-algebra kernel those components need:
//!
//! - [`Matrix`] / [`Vector`]: row-major dense storage with the usual
//!   arithmetic, products and norms.
//! - [`qr`]: Householder QR factorization and least-squares solves.
//! - [`svd`]: one-sided Jacobi SVD (numerically robust, no external deps).
//! - [`eigen`]: symmetric eigendecomposition via cyclic Jacobi rotations.
//! - [`incremental`]: rank-1 incremental SVD updates (Brand-style) for
//!   streaming windows.
//! - [`stats`]: mean centering, covariance and Gram matrices — the bridge to
//!   ProPolyne's second-order polynomial range sums (paper §3.4.1).
//! - [`projection`]: Johnson–Lindenstrauss random projections (the
//!   dimension-reduction refinement of paper §3.3.1).
//!
//! Everything is `f64`; immersidata matrices are small (tens of sensors by
//! hundreds of samples), so clarity and robustness beat blocked performance
//! tricks here.

pub mod eigen;
pub mod incremental;
pub mod matrix;
pub mod projection;
pub mod qr;
pub mod stats;
pub mod svd;
pub mod vector;

pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use incremental::IncrementalSvd;
pub use matrix::Matrix;
pub use projection::RandomProjection;
pub use qr::{least_squares, QrDecomposition};
pub use stats::{column_means, covariance_matrix, gram_matrix};
pub use svd::{Svd, SvdOptions};
pub use vector::Vector;

/// Comparison tolerance used throughout the crate for "effectively zero"
/// decisions (rank determination, convergence checks).
pub const EPS: f64 = 1e-12;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// relatively, whichever is looser. Useful in tests of iterative routines.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-13), 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-12));
        assert!(approx_eq(0.0, 0.0, 1e-12));
    }
}
