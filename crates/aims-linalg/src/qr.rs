//! Householder QR factorization and least-squares solves.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// A QR factorization `A = Q R` with `Q` having orthonormal columns
/// (thin/economy form: `Q` is `m × n`, `R` is `n × n`, for `m ≥ n`).
#[derive(Clone, Debug)]
pub struct QrDecomposition {
    /// Orthonormal factor (`m × n`).
    pub q: Matrix,
    /// Upper-triangular factor (`n × n`).
    pub r: Matrix,
}

impl QrDecomposition {
    /// Computes the thin QR factorization of `a` by Householder reflections,
    /// on the process-wide [`aims_exec`] pool.
    ///
    /// # Panics
    /// If `a.rows() < a.cols()` (wide matrices are not needed in AIMS).
    pub fn new(a: &Matrix) -> Self {
        Self::new_with(aims_exec::global_pool(), a)
    }

    /// Computes the thin QR factorization of `a` on an explicit thread pool.
    ///
    /// The reflector application is restructured as a blocked, row-major
    /// rank-1 update: one pass computes `d = vᵀR` from fixed-size row blocks
    /// (partials folded in block order), one pass applies `R -= (2/vᵀv)·v dᵀ`
    /// row by row. Each output row is owned by exactly one task and the
    /// block decomposition never depends on the pool size, so the factors
    /// are bit-identical for every thread count.
    pub fn new_with(pool: &aims_exec::ThreadPool, a: &Matrix) -> Self {
        let _span = aims_telemetry::span!("linalg.qr.decompose");
        let (m, n) = a.shape();
        assert!(m >= n, "QR requires rows >= cols, got {m}x{n}");
        // Work on a full copy; accumulate reflectors into an m×m identity,
        // then truncate to the thin factors at the end.
        let mut r = a.clone();
        let mut q_full = Matrix::identity(m);

        // Fixed row-block length for the vᵀR pass; a single block (m ≤ 1024)
        // reproduces the classic column-at-a-time accumulation order exactly.
        const ROW_BLOCK: usize = 1024;

        for k in 0..n.min(m.saturating_sub(1)) {
            // Build the Householder vector for column k below the diagonal.
            let mut v = vec![0.0; m - k];
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = r[(k + i, k)];
            }
            let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if alpha.abs() < crate::EPS {
                continue; // column already zero below the diagonal
            }
            v[0] -= alpha;
            let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
            if vnorm_sq < crate::EPS {
                continue;
            }

            // Apply H = I - 2 v vᵀ / (vᵀv) to R as a two-pass rank-1 update.
            // Pass 1: d = vᵀ·R[k.., k..] from fixed row blocks, folded in
            // block order.
            let partials = pool.par_map_blocks(m - k, ROW_BLOCK, |rows| {
                let mut d = vec![0.0; n - k];
                // Two rows per traversal. Each d[j] still receives its
                // contributions in ascending row order as two separate adds,
                // so the fold stays bit-identical to the row-at-a-time loop
                // while halving passes over d.
                let mut i = rows.start;
                while i + 1 < rows.end {
                    let (v0, v1) = (v[i], v[i + 1]);
                    let r0 = &r.row(k + i)[k..];
                    let r1 = &r.row(k + i + 1)[k..];
                    for ((dj, &a), &b) in d.iter_mut().zip(r0).zip(r1) {
                        let t = *dj + v0 * a;
                        *dj = t + v1 * b;
                    }
                    i += 2;
                }
                if i < rows.end {
                    let vi = v[i];
                    for (dj, &rij) in d.iter_mut().zip(&r.row(k + i)[k..]) {
                        *dj += vi * rij;
                    }
                }
                d
            });
            let mut coeff = vec![0.0; n - k];
            for part in partials {
                for (cj, pj) in coeff.iter_mut().zip(part) {
                    *cj += pj;
                }
            }
            for cj in &mut coeff {
                *cj *= 2.0 / vnorm_sq;
            }

            // Pass 2: R[k+i, k+j] -= coeff[j]·v[i], parallel over contiguous
            // row chunks (each row touched by exactly one task).
            {
                let rows_per = row_chunk(pool, m - k, n - k);
                let tail = &mut r.as_mut_slice()[k * n..];
                pool.run(|scope| {
                    for (ci, rows) in tail.chunks_mut(rows_per * n).enumerate() {
                        let v = &v;
                        let coeff = &coeff;
                        scope.spawn(move || {
                            for (ri, row) in rows.chunks_mut(n).enumerate() {
                                let vi = v[ci * rows_per + ri];
                                for (slot, &cj) in row[k..].iter_mut().zip(coeff) {
                                    *slot -= cj * vi;
                                }
                            }
                        });
                    }
                });
            }

            // Accumulate into Q: row j of Q is independent (contiguous dot
            // then contiguous update), so rows parallelize bit-identically.
            {
                let rows_per = row_chunk(pool, m, m - k);
                let qdata = q_full.as_mut_slice();
                pool.run(|scope| {
                    for qrows in qdata.chunks_mut(rows_per * m) {
                        let v = &v;
                        scope.spawn(move || {
                            for qrow in qrows.chunks_mut(m) {
                                let dot: f64 =
                                    v.iter().zip(&qrow[k..]).map(|(&vi, &qv)| vi * qv).sum();
                                let c = 2.0 * dot / vnorm_sq;
                                for (slot, &vi) in qrow[k..].iter_mut().zip(v) {
                                    *slot -= c * vi;
                                }
                            }
                        });
                    }
                });
            }
        }

        // Zero out the strictly-lower triangle explicitly (it holds noise of
        // magnitude ~EPS after the reflections).
        for i in 0..n {
            for j in 0..i {
                r[(i, j)] = 0.0;
            }
        }

        QrDecomposition { q: q_full.submatrix(0, m, 0, n), r: r.submatrix(0, n, 0, n) }
    }

    /// Reconstructs `Q R`.
    pub fn reconstruct(&self) -> Matrix {
        self.q.matmul(&self.r)
    }

    /// Solves `R x = y` by back substitution.
    ///
    /// # Panics
    /// If `R` is (numerically) singular or `y.len() != R.rows()`.
    pub fn solve_upper(&self, y: &Vector) -> Vector {
        let n = self.r.rows();
        assert_eq!(y.len(), n, "rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.r[(i, j)] * xj;
            }
            let d = self.r[(i, i)];
            assert!(d.abs() > crate::EPS, "singular R in back substitution (pivot {i})");
            x[i] = acc / d;
        }
        Vector::from(x)
    }
}

/// Rows per task for the parallel update passes: a few chunks per thread,
/// but at least ~8k touched elements per task so spawn overhead stays
/// negligible on small factorizations.
fn row_chunk(pool: &aims_exec::ThreadPool, nrows: usize, ncols: usize) -> usize {
    let min_rows = (8192 / ncols.max(1)).max(1);
    nrows.div_ceil(pool.threads().max(1) * 4).max(min_rows)
}

/// Solves the least-squares problem `min ‖A x − b‖₂` via thin QR.
///
/// # Panics
/// If `A` has fewer rows than columns, if `b.len() != A.rows()`, or if `A`
/// is numerically rank deficient.
pub fn least_squares(a: &Matrix, b: &Vector) -> Vector {
    assert_eq!(b.len(), a.rows(), "least_squares rhs length mismatch");
    let qr = QrDecomposition::new(a);
    let qtb = qr.q.transpose().mul_vec(b);
    qr.solve_upper(&qtb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_square_matrix() {
        let a =
            Matrix::from_rows(&[vec![2.0, -1.0, 0.5], vec![1.0, 3.0, -2.0], vec![0.0, 1.0, 4.0]]);
        let qr = QrDecomposition::new(&a);
        assert!(qr.q.has_orthonormal_columns(1e-10));
        assert!(qr.reconstruct().approx_eq(&a, 1e-10));
        // R is upper triangular.
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_tall_matrix() {
        let a = Matrix::from_fn(6, 3, |i, j| {
            ((i + 1) * (j + 2)) as f64 + if i == j { 5.0 } else { 0.0 }
        });
        let qr = QrDecomposition::new(&a);
        assert_eq!(qr.q.shape(), (6, 3));
        assert_eq!(qr.r.shape(), (3, 3));
        assert!(qr.q.has_orthonormal_columns(1e-10));
        assert!(qr.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn qr_identity_is_trivial() {
        let i = Matrix::identity(4);
        let qr = QrDecomposition::new(&i);
        assert!(qr.reconstruct().approx_eq(&i, 1e-12));
    }

    #[test]
    fn least_squares_exact_system() {
        // x = (1, 2): A x = b exactly.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = least_squares(&a, &b);
        assert!(x.approx_eq(&Vector::from(vec![1.0, 2.0]), 1e-10));
    }

    #[test]
    fn least_squares_overdetermined_regression() {
        // Fit y = 2t + 1 with noiseless samples.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { ts[i] } else { 1.0 });
        let b: Vector = ts.iter().map(|t| 2.0 * t + 1.0).collect();
        let x = least_squares(&a, &b);
        assert!(crate::approx_eq(x[0], 2.0, 1e-10));
        assert!(crate::approx_eq(x[1], 1.0, 1e-10));
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_system_panics() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        least_squares(&a, &b);
    }
}
