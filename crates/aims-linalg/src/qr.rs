//! Householder QR factorization and least-squares solves.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// A QR factorization `A = Q R` with `Q` having orthonormal columns
/// (thin/economy form: `Q` is `m × n`, `R` is `n × n`, for `m ≥ n`).
#[derive(Clone, Debug)]
pub struct QrDecomposition {
    /// Orthonormal factor (`m × n`).
    pub q: Matrix,
    /// Upper-triangular factor (`n × n`).
    pub r: Matrix,
}

impl QrDecomposition {
    /// Computes the thin QR factorization of `a` by Householder reflections.
    ///
    /// # Panics
    /// If `a.rows() < a.cols()` (wide matrices are not needed in AIMS).
    pub fn new(a: &Matrix) -> Self {
        let (m, n) = a.shape();
        assert!(m >= n, "QR requires rows >= cols, got {m}x{n}");
        // Work on a full copy; accumulate reflectors into an m×m identity,
        // then truncate to the thin factors at the end.
        let mut r = a.clone();
        let mut q_full = Matrix::identity(m);

        for k in 0..n.min(m.saturating_sub(1)) {
            // Build the Householder vector for column k below the diagonal.
            let mut v = vec![0.0; m - k];
            for i in k..m {
                v[i - k] = r[(i, k)];
            }
            let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if alpha.abs() < crate::EPS {
                continue; // column already zero below the diagonal
            }
            v[0] -= alpha;
            let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
            if vnorm_sq < crate::EPS {
                continue;
            }

            // Apply H = I - 2 v vᵀ / (vᵀv) to R (left) and accumulate into Q.
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i - k] * r[(i, j)]).sum();
                let c = 2.0 * dot / vnorm_sq;
                for i in k..m {
                    r[(i, j)] -= c * v[i - k];
                }
            }
            for j in 0..m {
                let dot: f64 = (k..m).map(|i| v[i - k] * q_full[(j, i)]).sum();
                let c = 2.0 * dot / vnorm_sq;
                for i in k..m {
                    q_full[(j, i)] -= c * v[i - k];
                }
            }
        }

        // Zero out the strictly-lower triangle explicitly (it holds noise of
        // magnitude ~EPS after the reflections).
        for i in 0..n {
            for j in 0..i {
                r[(i, j)] = 0.0;
            }
        }

        QrDecomposition { q: q_full.submatrix(0, m, 0, n), r: r.submatrix(0, n, 0, n) }
    }

    /// Reconstructs `Q R`.
    pub fn reconstruct(&self) -> Matrix {
        self.q.matmul(&self.r)
    }

    /// Solves `R x = y` by back substitution.
    ///
    /// # Panics
    /// If `R` is (numerically) singular or `y.len() != R.rows()`.
    pub fn solve_upper(&self, y: &Vector) -> Vector {
        let n = self.r.rows();
        assert_eq!(y.len(), n, "rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.r[(i, j)] * xj;
            }
            let d = self.r[(i, i)];
            assert!(d.abs() > crate::EPS, "singular R in back substitution (pivot {i})");
            x[i] = acc / d;
        }
        Vector::from(x)
    }
}

/// Solves the least-squares problem `min ‖A x − b‖₂` via thin QR.
///
/// # Panics
/// If `A` has fewer rows than columns, if `b.len() != A.rows()`, or if `A`
/// is numerically rank deficient.
pub fn least_squares(a: &Matrix, b: &Vector) -> Vector {
    assert_eq!(b.len(), a.rows(), "least_squares rhs length mismatch");
    let qr = QrDecomposition::new(a);
    let qtb = qr.q.transpose().mul_vec(b);
    qr.solve_upper(&qtb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_square_matrix() {
        let a =
            Matrix::from_rows(&[vec![2.0, -1.0, 0.5], vec![1.0, 3.0, -2.0], vec![0.0, 1.0, 4.0]]);
        let qr = QrDecomposition::new(&a);
        assert!(qr.q.has_orthonormal_columns(1e-10));
        assert!(qr.reconstruct().approx_eq(&a, 1e-10));
        // R is upper triangular.
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_tall_matrix() {
        let a = Matrix::from_fn(6, 3, |i, j| {
            ((i + 1) * (j + 2)) as f64 + if i == j { 5.0 } else { 0.0 }
        });
        let qr = QrDecomposition::new(&a);
        assert_eq!(qr.q.shape(), (6, 3));
        assert_eq!(qr.r.shape(), (3, 3));
        assert!(qr.q.has_orthonormal_columns(1e-10));
        assert!(qr.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn qr_identity_is_trivial() {
        let i = Matrix::identity(4);
        let qr = QrDecomposition::new(&i);
        assert!(qr.reconstruct().approx_eq(&i, 1e-12));
    }

    #[test]
    fn least_squares_exact_system() {
        // x = (1, 2): A x = b exactly.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = least_squares(&a, &b);
        assert!(x.approx_eq(&Vector::from(vec![1.0, 2.0]), 1e-10));
    }

    #[test]
    fn least_squares_overdetermined_regression() {
        // Fit y = 2t + 1 with noiseless samples.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { ts[i] } else { 1.0 });
        let b: Vector = ts.iter().map(|t| 2.0 * t + 1.0).collect();
        let x = least_squares(&a, &b);
        assert!(crate::approx_eq(x[0], 2.0, 1e-10));
        assert!(crate::approx_eq(x[1], 1.0, 1e-10));
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_system_panics() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        least_squares(&a, &b);
    }
}
