//! Symmetric eigendecomposition via cyclic Jacobi rotations.
//!
//! Second-order statistical analysis in AIMS — PCA over covariance matrices
//! assembled from ProPolyne polynomial range-sums (paper §3.4.1) — needs the
//! eigendecomposition of small symmetric matrices. Cyclic Jacobi is exact in
//! the limit, unconditionally convergent on symmetric input, and trivially
//! verifiable, which is what a reproduction wants.

use crate::matrix::Matrix;

/// Eigendecomposition `A = Q Λ Qᵀ` of a symmetric matrix.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues in non-increasing order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as the columns of `q` (same order).
    pub eigenvectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix by the cyclic
/// Jacobi method.
///
/// # Panics
/// If `a` is not square or not symmetric to within `1e-9 · max|a|`.
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    let n = a.rows();
    assert_eq!(a.rows(), a.cols(), "symmetric_eigen requires a square matrix");
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a[(i, j)] - a[(j, i)]).abs() <= 1e-9 * scale,
                "matrix is not symmetric at ({i},{j})"
            );
        }
    }

    let mut m = a.clone();
    let mut q = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;

    for _ in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass; stop when negligible.
        let off: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| m[(i, j)] * m[(i, j)])
            .sum();
        if off.sqrt() <= 1e-14 * scale {
            break;
        }

        for p in 0..n {
            for r in (p + 1)..n {
                let apq = m[(p, r)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(r, r)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Apply the rotation on both sides: M ← JᵀMJ.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, r)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, r)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(r, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(r, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkq = q[(k, r)];
                    q[(k, p)] = c * qkp - s * qkq;
                    q[(k, r)] = s * qkp + c * qkq;
                }
            }
        }
    }

    let mut eigenvalues: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| eigenvalues[y].partial_cmp(&eigenvalues[x]).unwrap());

    let mut vecs = Matrix::zeros(n, n);
    let mut vals = vec![0.0; n];
    for (dst, &src) in order.iter().enumerate() {
        vals[dst] = eigenvalues[src];
        for i in 0..n {
            vecs[(i, dst)] = q[(i, src)];
        }
    }
    eigenvalues = vals;

    SymmetricEigen { eigenvalues, eigenvectors: vecs }
}

impl SymmetricEigen {
    /// Reconstructs `Q Λ Qᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let mut ql = self.eigenvectors.clone();
        for j in 0..n {
            for i in 0..n {
                ql[(i, j)] *= self.eigenvalues[j];
            }
        }
        ql.matmul(&self.eigenvectors.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::diagonal(&[1.0, 5.0, 3.0]);
        let e = symmetric_eigen(&a);
        assert!(crate::approx_eq(e.eigenvalues[0], 5.0, 1e-12));
        assert!(crate::approx_eq(e.eigenvalues[1], 3.0, 1e-12));
        assert!(crate::approx_eq(e.eigenvalues[2], 1.0, 1e-12));
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        assert!(crate::approx_eq(e.eigenvalues[0], 3.0, 1e-12));
        assert!(crate::approx_eq(e.eigenvalues[1], 1.0, 1e-12));
        assert!(e.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.0],
            vec![-2.0, 0.0, 5.0, -1.0],
            vec![0.5, 1.0, -1.0, 2.0],
        ]);
        let e = symmetric_eigen(&a);
        assert!(e.eigenvectors.has_orthonormal_columns(1e-10));
        assert!(e.reconstruct().approx_eq(&a, 1e-9));
        // Trace is invariant.
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!(crate::approx_eq(sum, a.trace(), 1e-10));
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 3.0]]);
        let e = symmetric_eigen(&a);
        for k in 0..2 {
            let v = e.eigenvectors.column(k);
            let av = a.mul_vec(&v);
            let lv = v.scaled(e.eigenvalues[k]);
            assert!(av.approx_eq(&lv, 1e-10), "eigenpair {k} violated");
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_input_panics() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        symmetric_eigen(&a);
    }

    #[test]
    fn negative_eigenvalues_handled() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let e = symmetric_eigen(&a);
        assert!(crate::approx_eq(e.eigenvalues[0], 1.0, 1e-12));
        assert!(crate::approx_eq(e.eigenvalues[1], -1.0, 1e-12));
    }
}
