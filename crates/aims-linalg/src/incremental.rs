//! Incremental (streaming) SVD.
//!
//! §3.4.1 of the AIMS paper proposes "computing SVD incrementally, i.e.,
//! computation of SVD utilizing results that have already been computed in
//! the earlier steps thus reducing the overall computation cost
//! considerably". This module implements the classic rank-incremental column
//! update (Brand 2002 style): the decomposition of `[A | c]` is obtained from
//! the decomposition of `A` plus an SVD of a small `(k+1) × (k+1)` core
//! matrix, instead of refactorizing the whole stream window.

use crate::matrix::Matrix;
use crate::svd::Svd;
use crate::vector::Vector;

/// A streaming left-subspace SVD: maintains `U` (m × k) and the singular
/// values of everything appended so far, optionally truncated to a maximum
/// rank.
///
/// The right factor `V` is not maintained: pattern-matching in AIMS only
/// needs the left singular vectors (the sensor-space rotations) and the
/// singular values, and dropping `V` keeps the per-update cost independent
/// of the stream length.
#[derive(Clone, Debug)]
pub struct IncrementalSvd {
    rows: usize,
    max_rank: usize,
    u: Matrix,
    sigma: Vec<f64>,
    appended: usize,
}

impl IncrementalSvd {
    /// Creates an empty decomposition for column vectors of length `rows`,
    /// truncating to at most `max_rank` retained directions.
    ///
    /// # Panics
    /// If `rows == 0` or `max_rank == 0`.
    pub fn new(rows: usize, max_rank: usize) -> Self {
        assert!(rows > 0, "rows must be positive");
        assert!(max_rank > 0, "max_rank must be positive");
        IncrementalSvd {
            rows,
            max_rank: max_rank.min(rows),
            u: Matrix::zeros(rows, 0),
            sigma: Vec::new(),
            appended: 0,
        }
    }

    /// Number of columns appended so far.
    pub fn columns_seen(&self) -> usize {
        self.appended
    }

    /// Current retained rank.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Current left singular vectors (`rows × rank`).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Current singular values (non-increasing).
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// Appends one column `c` to the implicit matrix and updates the
    /// decomposition.
    ///
    /// # Panics
    /// If `c.len() != rows`.
    pub fn append_column(&mut self, c: &Vector) {
        assert_eq!(c.len(), self.rows, "column length mismatch");
        self.appended += 1;
        let k = self.sigma.len();

        // Project onto the current subspace and split off the residual.
        let p: Vec<f64> =
            (0..k).map(|j| (0..self.rows).map(|i| self.u[(i, j)] * c[i]).sum()).collect();
        let mut r = c.clone();
        for (j, &pj) in p.iter().enumerate() {
            for i in 0..self.rows {
                r[i] -= pj * self.u[(i, j)];
            }
        }
        let rho = r.norm();
        let expand = rho > 1e-10 && k < self.max_rank.min(self.rows);

        // Core matrix K: [[diag(σ), p], [0, ρ]] (or without the last row/col
        // growth when the residual is negligible or rank is capped).
        let kdim = if expand { k + 1 } else { k.max(1).min(k + usize::from(k == 0)) };
        if k == 0 {
            // First column: decomposition is trivial.
            if rho <= 1e-300 {
                // A zero first column contributes nothing.
                if c.norm() == 0.0 {
                    return;
                }
            }
            let mut unit = c.clone();
            let norm = unit.normalize();
            if norm == 0.0 {
                return;
            }
            self.u = Matrix::from_columns(&[unit]);
            self.sigma = vec![norm];
            return;
        }

        let core = if expand {
            let mut km = Matrix::zeros(k + 1, k + 1);
            for (i, &s) in self.sigma.iter().enumerate() {
                km[(i, i)] = s;
            }
            for (i, &pi) in p.iter().enumerate() {
                km[(i, k)] = pi;
            }
            km[(k, k)] = rho;
            km
        } else {
            let mut km = Matrix::zeros(k, k + 1);
            for (i, &s) in self.sigma.iter().enumerate() {
                km[(i, i)] = s;
            }
            for (i, &pi) in p.iter().enumerate() {
                km[(i, k)] = pi;
            }
            km
        };
        debug_assert!(kdim >= 1);

        let core_svd = Svd::compute(&core);

        // Basis for the rotation: current U, plus the normalized residual
        // when expanding.
        let basis = if expand {
            let unit = r.scaled(1.0 / rho);
            self.u.hstack(&Matrix::from_columns(&[unit]))
        } else {
            self.u.clone()
        };

        let mut new_u = basis.matmul(&core_svd.u);
        let mut new_sigma = core_svd.singular_values.clone();

        // Truncate to max_rank and drop numerically-zero directions.
        let keep = new_sigma.iter().take(self.max_rank).filter(|&&s| s > 1e-12).count();
        new_u = new_u.submatrix(0, self.rows, 0, keep);
        new_sigma.truncate(keep);

        self.u = new_u;
        self.sigma = new_sigma;
    }

    /// Appends every column of `m` in order.
    pub fn append_matrix(&mut self, m: &Matrix) {
        for j in 0..m.cols() {
            self.append_column(&m.column(j));
        }
    }

    /// Exponential forgetting: scales every singular value by `factor`
    /// (`0 < factor ≤ 1`). Applying this before each append makes the
    /// decomposition track a sliding exponential window instead of the
    /// whole stream — the streaming-SVD mode §3.4.1 needs without the cost
    /// of exact downdating.
    ///
    /// # Panics
    /// If the factor is outside `(0, 1]`.
    pub fn decay(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "decay factor must be in (0,1]");
        for s in &mut self.sigma {
            *s *= factor;
        }
    }

    /// Largest principal angle (in radians) between this subspace and the
    /// column space of `other` truncated to the shared rank. Useful for
    /// testing subspace tracking quality.
    pub fn subspace_angle(&self, other: &Matrix) -> f64 {
        let k = self.rank().min(other.cols());
        if k == 0 {
            return 0.0;
        }
        let a = self.u.submatrix(0, self.rows, 0, k);
        let b = other.submatrix(0, other.rows(), 0, k);
        let m = a.transpose().matmul(&b);
        let svd = Svd::compute(&m);
        let smin = svd.singular_values.last().copied().unwrap_or(0.0).clamp(-1.0, 1.0);
        smin.min(1.0).acos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).max(1);
        Matrix::from_fn(m, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn single_column_matches_norm() {
        let mut inc = IncrementalSvd::new(4, 4);
        let c = Vector::from(vec![3.0, 0.0, 4.0, 0.0]);
        inc.append_column(&c);
        assert_eq!(inc.rank(), 1);
        assert!(crate::approx_eq(inc.singular_values()[0], 5.0, 1e-12));
    }

    #[test]
    fn matches_batch_svd_on_full_rank_stream() {
        let a = random_matrix(6, 5, 11);
        let mut inc = IncrementalSvd::new(6, 6);
        inc.append_matrix(&a);

        let batch = Svd::compute(&a);
        assert_eq!(inc.rank(), 5);
        for (i, (&si, sb)) in inc.singular_values().iter().zip(&batch.singular_values).enumerate() {
            assert!(crate::approx_eq(si, *sb, 1e-8), "σ{i}: {si} vs {sb}");
        }
        // Left subspaces agree.
        let angle = inc.subspace_angle(&batch.u);
        assert!(angle < 1e-6, "subspace angle {angle}");
    }

    #[test]
    fn truncation_keeps_dominant_directions() {
        // Stream with a dominant rank-2 structure plus small noise.
        let u = {
            let q = crate::qr::QrDecomposition::new(&random_matrix(8, 2, 3));
            q.q
        };
        let mut inc = IncrementalSvd::new(8, 2);
        let mut state = 77u64;
        for _ in 0..40 {
            let mut c = Vector::zeros(8);
            for j in 0..2 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let coef = ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0;
                c.axpy(coef * (2.0 - j as f64), &u.column(j));
            }
            inc.append_column(&c);
        }
        assert_eq!(inc.rank(), 2);
        let angle = inc.subspace_angle(&u);
        assert!(angle < 1e-6, "dominant subspace lost: angle {angle}");
    }

    #[test]
    fn zero_columns_are_ignored() {
        let mut inc = IncrementalSvd::new(3, 3);
        inc.append_column(&Vector::zeros(3));
        assert_eq!(inc.rank(), 0);
        inc.append_column(&Vector::from(vec![1.0, 0.0, 0.0]));
        inc.append_column(&Vector::zeros(3));
        assert_eq!(inc.rank(), 1);
        assert!(crate::approx_eq(inc.singular_values()[0], 1.0, 1e-12));
    }

    #[test]
    fn duplicate_columns_grow_sigma_not_rank() {
        let mut inc = IncrementalSvd::new(3, 3);
        let c = Vector::from(vec![1.0, 2.0, 2.0]);
        inc.append_column(&c);
        inc.append_column(&c);
        assert_eq!(inc.rank(), 1);
        // ‖[c c]‖₂ = √2·‖c‖.
        assert!(crate::approx_eq(inc.singular_values()[0], 2.0_f64.sqrt() * 3.0, 1e-9));
    }

    #[test]
    fn u_columns_stay_orthonormal() {
        let a = random_matrix(7, 12, 23);
        let mut inc = IncrementalSvd::new(7, 5);
        inc.append_matrix(&a);
        assert!(inc.u().has_orthonormal_columns(1e-8));
        assert!(inc.rank() <= 5);
        assert_eq!(inc.columns_seen(), 12);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn wrong_length_column_panics() {
        let mut inc = IncrementalSvd::new(4, 2);
        inc.append_column(&Vector::zeros(3));
    }

    #[test]
    fn decay_scales_sigma_and_forgets_old_directions() {
        let mut inc = IncrementalSvd::new(3, 3);
        inc.append_column(&Vector::from(vec![2.0, 0.0, 0.0]));
        let before = inc.singular_values()[0];
        inc.decay(0.5);
        assert!(crate::approx_eq(inc.singular_values()[0], before * 0.5, 1e-12));

        // With heavy decay, a new dominant direction takes over quickly.
        for _ in 0..20 {
            inc.decay(0.5);
            inc.append_column(&Vector::from(vec![0.0, 3.0, 0.0]));
        }
        let top = inc.u().column(0);
        assert!(top[1].abs() > 0.99, "new direction not dominant: {top:?}");
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn bad_decay_panics() {
        IncrementalSvd::new(2, 2).decay(0.0);
    }
}
