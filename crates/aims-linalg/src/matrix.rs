//! Row-major dense matrix.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::vector::Vector;

/// A dense, row-major `f64` matrix.
///
/// Indexing is `(row, col)`, zero-based. All binary operations panic on
/// dimension mismatch — immersidata pipelines construct matrices with known
/// shapes, so mismatches are programming errors, not recoverable conditions.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Builds a matrix whose columns are the given vectors.
    ///
    /// # Panics
    /// If the columns have inconsistent lengths.
    pub fn from_columns(columns: &[Vector]) -> Self {
        if columns.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let rows = columns[0].len();
        let mut m = Matrix::zeros(rows, columns.len());
        for (j, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), rows, "column {j} has length {} != {rows}", c.len());
            for i in 0..rows {
                m[(i, j)] = c[i];
            }
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    pub fn column(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column {j} out of bounds ({} cols)", self.cols);
        Vector::from((0..self.rows).map(|i| self[(i, j)]).collect::<Vec<_>>())
    }

    /// Overwrites column `j` with the entries of `v`.
    pub fn set_column(&mut self, j: usize, v: &Vector) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// If `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let out: Vec<f64> = (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.as_slice()).map(|(a, b)| a * b).sum())
            .collect();
        Vector::from(out)
    }

    /// Matrix product `self * other`, on the process-wide [`aims_exec`]
    /// pool (see [`Matrix::matmul_with`]).
    ///
    /// # Panics
    /// If `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_with(aims_exec::global_pool(), other)
    }

    /// Matrix product on an explicit thread pool: a blocked, cache-friendly
    /// kernel (k-panels that keep a stripe of `other` hot) with block rows
    /// of the output fanned out across the pool. Every output row is
    /// accumulated by one task in ascending-`k` order, so the result is
    /// bit-identical for every pool size.
    ///
    /// # Panics
    /// If `self.cols() != other.rows()`.
    pub fn matmul_with(&self, pool: &aims_exec::ThreadPool, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let _span = aims_telemetry::span!("linalg.matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let cols = other.cols;
        let flops = self.rows * self.cols * cols;
        if pool.is_serial() || flops < 64 * 64 * 64 {
            matmul_row_block(self, other, 0, &mut out.data);
            return out;
        }
        let rows_per = self.rows.div_ceil(pool.threads() * 4).max(1);
        pool.run(|scope| {
            for (ci, out_rows) in out.data.chunks_mut(rows_per * cols).enumerate() {
                let r0 = ci * rows_per;
                scope.spawn(move || matmul_row_block(self, other, r0, out_rows));
            }
        });
        out
    }

    /// Frobenius norm `sqrt(sum of squared entries)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of squared entries (the "energy" of the matrix).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale(s);
        m
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    /// If the ranges exceed the matrix bounds or are reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Stacks `other` below `self`.
    ///
    /// # Panics
    /// If the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Places `other` to the right of `self`.
    ///
    /// # Panics
    /// If the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    ///
    /// # Panics
    /// If the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `true` when `‖self − other‖_max ≤ tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Checks that every column has unit norm and distinct columns are
    /// orthogonal, to within `tol`.
    pub fn has_orthonormal_columns(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for k in j..self.cols {
                let dot: f64 = (0..self.rows).map(|i| self[(i, j)] * self[(i, k)]).sum();
                let expect = if j == k { 1.0 } else { 0.0 };
                if (dot - expect).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Accumulates output rows `r0..r0 + out_rows.len() / b.cols` of `a * b`
/// into `out_rows` (assumed zeroed). Blocked over `k` so a panel of `b`
/// rows stays cache-hot across the block's output rows; for any fixed
/// output element the contributions still arrive in ascending `k` order,
/// making the kernel bit-identical to the naive `i→k→j` triple loop.
fn matmul_row_block(a: &Matrix, b: &Matrix, r0: usize, out_rows: &mut [f64]) {
    const K_PANEL: usize = 64;
    let inner = a.cols;
    let cols = b.cols;
    for kb in (0..inner).step_by(K_PANEL) {
        let kend = (kb + K_PANEL).min(inner);
        for (ri, orow) in out_rows.chunks_mut(cols).enumerate() {
            let arow = &a.row(r0 + ri)[kb..kend];
            // Two b-rows stream per pass; each k is still added to an
            // output element separately and in ascending order, so bits
            // match the naive i→k→j loop. Slice windows (no index
            // arithmetic, no skip-zero branch) let the j-loop vectorize.
            let mut k = kb;
            let mut pairs = arow.chunks_exact(2);
            for pair in pairs.by_ref() {
                let (a0, a1) = (pair[0], pair[1]);
                let b0 = b.row(k);
                let b1 = b.row(k + 1);
                for ((o, &v0), &v1) in orow.iter_mut().zip(b0).zip(b1) {
                    let t = *o + a0 * v0;
                    *o = t + a1 * v1;
                }
                k += 2;
            }
            for &a0 in pairs.remainder() {
                let b0 = b.row(k);
                for (o, &v0) in orow.iter_mut().zip(b0) {
                    *o += a0 * v0;
                }
                k += 1;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl MulAssign<f64> for Matrix {
    fn mul_assign(&mut self, s: f64) {
        self.scale(s);
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d])
    }

    #[test]
    fn zeros_identity_diagonal() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);

        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_and_columns_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_columns(&[Vector::from(vec![1.0, 3.0]), Vector::from(vec![2.0, 4.0])]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);

        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b);
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 4, |i, j| (i * j) as f64);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 4));
        // c[1][2] = sum_k a[1][k] * b[k][2] = 1*0 + 2*2 + 3*4 = 16
        assert_eq!(c[(1, 2)], 16.0);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let v = Vector::from(vec![1.0, -1.0, 2.0]);
        let got = a.mul_vec(&v);
        let as_col = Matrix::from_vec(3, 1, v.as_slice().to_vec());
        let expect = a.matmul(&as_col);
        for i in 0..3 {
            assert_eq!(got[i], expect[(i, 0)]);
        }
    }

    #[test]
    fn row_column_accessors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.column(2).as_slice(), &[3.0, 6.0]);
        let mut b = a.clone();
        b.set_column(0, &Vector::from(vec![9.0, 10.0]));
        assert_eq!(b[(0, 0)], 9.0);
        assert_eq!(b[(1, 0)], 10.0);
    }

    #[test]
    fn norms_and_energy() {
        let a = m22(3.0, 0.0, 0.0, 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.energy(), 25.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn stack_and_submatrix() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 1)], 8.0);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(1, 3)], 8.0);
        let s = h.submatrix(0, 2, 1, 3);
        assert_eq!(s, m22(2.0, 5.0, 4.0, 7.0));
    }

    #[test]
    fn arithmetic_operators() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(&a + &b, Matrix::filled(2, 2, 5.0));
        assert_eq!(&(&a - &b) + &b, a);
        let mut c = a.clone();
        c += &b;
        c -= &b;
        assert_eq!(c, a);
        c *= 2.0;
        assert_eq!(c, a.scaled(2.0));
        assert_eq!((-&a).scaled(-1.0), a);
    }

    #[test]
    fn orthonormal_column_check() {
        assert!(Matrix::identity(4).has_orthonormal_columns(1e-12));
        let r2 = std::f64::consts::FRAC_1_SQRT_2;
        let rot = m22(r2, -r2, r2, r2);
        assert!(rot.has_orthonormal_columns(1e-12));
        assert!(!m22(1.0, 1.0, 0.0, 1.0).has_orthonormal_columns(1e-12));
    }

    #[test]
    fn empty_matrix_is_well_behaved() {
        let e = Matrix::zeros(0, 0);
        assert!(e.is_empty());
        assert_eq!(e.transpose(), e);
        assert_eq!(Matrix::from_rows(&[]).shape(), (0, 0));
    }
}
