//! Experiment E32: the tiered ingest engine under concurrent load — a
//! file-backed [`TieredStore`] absorbs a multi-million-sample stream on
//! one thread while the background compactor swaps sealed segments into
//! wavelet form and a foreground planner runs progressive range sums the
//! whole time. Gates: sustained ingest ≥ 1M samples/sec, every
//! progressive trajectory monotone, and — once compaction drains — the
//! store answers bit-identically to a serial single-store oracle.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aims::tier::{compact, range_sum_on, Compactor, CompactorConfig, TierConfig, TieredStore};
use aims_dsp::filters::FilterKind;
use aims_exec::ThreadPool;
use aims_service::{TieredPlanner, TieredPlannerConfig};
use aims_storage::{CrashPlan, DurabilityMode, FileDeviceOptions};

const SEG: usize = 4096;
const BLOCK: usize = 256;
const MAX_SEGMENTS: usize = 520;
const TOTAL: usize = 505 * SEG + 1234;
const SEED: u64 = 0xE32;

fn cfg() -> TierConfig {
    TierConfig {
        segment_len: SEG,
        block_size: BLOCK,
        max_segments: MAX_SEGMENTS,
        filter: FilterKind::Haar,
    }
}

fn signal() -> Vec<f64> {
    let mut state = SEED;
    (0..TOTAL)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 4099) as f64 / 11.0 - 180.0
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// E32 — tiered ingest: hot-tier absorption rate, compaction lag, and
/// query latency under concurrency, with a final oracle bit-identity
/// gate. Results land in `target/bench_tier.json` for CI trend tracking.
pub fn e32_tier() {
    crate::header(
        "E32",
        "tiered ingest: >=1M samples/s absorbed while progressive queries stay exact",
    );

    let data = Arc::new(signal());
    let dir = std::env::temp_dir().join(format!("aims-e32-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let opts = FileDeviceOptions {
        mode: DurabilityMode::Periodic(64),
        crash: CrashPlan::none(),
        ..Default::default()
    };
    let store = TieredStore::create_durable(&dir, cfg(), opts).unwrap();
    let compactor = Compactor::spawn(store.clone(), CompactorConfig::default());
    let ingesting = Arc::new(AtomicBool::new(true));

    println!(
        "workload: {TOTAL} samples, {SEG}-sample segments, {BLOCK}-item blocks, \
         file-backed (fsync every 64 appends), seed {SEED:#x}\n"
    );

    let (ingest_wall, latencies_ms, queries_hot_rows) = std::thread::scope(|scope| {
        // Ingest thread: the hot path under measurement.
        let ingest = {
            let store = store.clone();
            let ingesting = Arc::clone(&ingesting);
            let data = Arc::clone(&data);
            scope.spawn(move || {
                let t = Instant::now();
                for chunk in data.chunks(SEG) {
                    store.push_slice(chunk);
                }
                store.seal_open();
                let wall = t.elapsed();
                ingesting.store(false, Ordering::Release);
                wall
            })
        };
        // Foreground planner: progressive range sums against live
        // snapshots for as long as ingest runs.
        let queries = {
            let store = store.clone();
            let ingesting = Arc::clone(&ingesting);
            scope.spawn(move || {
                let planner = TieredPlanner::new(
                    store,
                    TieredPlannerConfig { blocks_per_round: 8, threads: 1 },
                );
                let mut lat = Vec::new();
                let mut hot_rows = 0usize;
                let mut k = 0usize;
                while ingesting.load(Ordering::Acquire) {
                    let n = planner.store().len();
                    if n == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    let (a, b) = match k % 3 {
                        0 => (0, n - 1),
                        1 => (n / 4, 3 * n / 4),
                        _ => (n.saturating_sub(SEG), n - 1),
                    };
                    let t = Instant::now();
                    let ans = planner.range_sum(a, b);
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                    // Monotone-bound gate on the live trajectory.
                    let mut prev = f64::INFINITY;
                    for s in &ans.steps {
                        assert!(s.bound <= prev, "bound grew mid-ingest: {prev} -> {}", s.bound);
                        prev = s.bound;
                    }
                    hot_rows += ans.hot_rows;
                    k += 1;
                }
                (lat, hot_rows)
            })
        };
        let wall = ingest.join().expect("ingest thread");
        let (lat, hot) = queries.join().expect("query thread");
        (wall, lat, hot)
    });

    // Compaction lag: how long the sealed-raw backlog takes to drain once
    // ingest stops (the compactor keeps running; queries have ceased, so
    // it runs at full rate).
    let t = Instant::now();
    let deadline = t + Duration::from_secs(120);
    while store.stats().sealed_raw > 0 {
        assert!(Instant::now() < deadline, "compactor failed to drain backlog");
        std::thread::sleep(Duration::from_millis(1));
    }
    let lag_ms = t.elapsed().as_secs_f64() * 1e3;
    let compacted = compactor.stop();

    let ingest_rate = TOTAL as f64 / ingest_wall.as_secs_f64();
    let mut sorted = latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);

    // Oracle gate: a single-store serial build answers bit-identically.
    let serial = ThreadPool::new(1);
    let oracle = TieredStore::new_mem(cfg());
    oracle.push_slice(&data);
    oracle.seal_open();
    compact::drain(&oracle, &serial);
    assert_eq!(store.len(), TOTAL, "samples lost in flight");
    let (snap, osnap) = (store.snapshot(), oracle.snapshot());
    assert!(snap.segments().iter().all(|s| s.historical), "backlog not fully compacted");
    for (a, b) in [(0, TOTAL - 1), (0, 0), (TOTAL / 3, 2 * TOTAL / 3), (SEG - 1, 5 * SEG)] {
        let got = range_sum_on(&snap, a, b, &serial);
        let want = range_sum_on(&osnap, a, b, &serial);
        assert_eq!(got.to_bits(), want.to_bits(), "oracle drift on [{a}, {b}]");
    }
    store.checkpoint();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    println!("{:>26} {:>14}", "metric", "value");
    println!("{:>26} {:>14}", "ingest samples/s", format!("{ingest_rate:.0}"));
    println!("{:>26} {:>14}", "ingest wall ms", format!("{:.1}", ingest_wall.as_secs_f64() * 1e3));
    println!("{:>26} {:>14}", "segments compacted", compacted);
    println!("{:>26} {:>14}", "compaction lag ms", format!("{lag_ms:.1}"));
    println!("{:>26} {:>14}", "queries during ingest", latencies_ms.len());
    println!("{:>26} {:>14}", "query p50 ms", format!("{p50:.3}"));
    println!("{:>26} {:>14}", "query p99 ms", format!("{p99:.3}"));
    println!("{:>26} {:>14}", "hot rows served", queries_hot_rows);

    // The headline acceptance gate.
    assert!(ingest_rate >= 1.0e6, "ingest rate {ingest_rate:.0} samples/s below the 1M/s floor");
    println!("\ngates: ingest >= 1M samples/s, monotone bounds on every live trajectory, and the");
    println!("fully-compacted store answered bit-identically to the serial single-store oracle.");

    let json = format!(
        "{{\"experiment\":\"e32_tier\",\"seed\":{SEED},\"samples\":{TOTAL},\
         \"ingest_samples_per_sec\":{ingest_rate:.1},\
         \"ingest_wall_ms\":{:.3},\"compaction_lag_ms\":{lag_ms:.3},\
         \"segments_compacted\":{compacted},\"queries\":{},\
         \"query_p50_ms\":{p50:.4},\"query_p99_ms\":{p99:.4},\"hot_rows_served\":{}}}\n",
        ingest_wall.as_secs_f64() * 1e3,
        latencies_ms.len(),
        queries_hot_rows
    );
    let path = std::path::Path::new("target").join("bench_tier.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
