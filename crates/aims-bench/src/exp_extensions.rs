//! Experiments E20–E22: the paper's proposed refinements ("future work"
//! it sketches in §3.3.1 and §3.4.1), implemented and measured.

use aims_linalg::RandomProjection;
use aims_propolyne::batch::{drill_down_queries, progressive_batch, BatchErrorNorm};
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;
use aims_sensors::asl::AslVocabulary;
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;
use aims_sensors::types::MultiStream;
use aims_stream::isolation::{evaluate_isolation, IsolationConfig, StreamRecognizer};
use aims_stream::signature::SvdSignature;

use crate::workloads::gaussian_mixture_cube;

/// E20 — §3.3.1: "for some applications it is important to minimize the
/// standard L² norm of the errors. For other applications it may be more
/// important to ensure that any large differences between results for
/// related ranges are captured early" — progressive batch evaluation under
/// the two error measures.
pub fn e20_batch_error_norms() {
    crate::header("E20", "progressive batch evaluation under L2 vs worst-query norms (§3.3.1)");
    let cube = gaussian_mixture_cube(128);
    let engine = Propolyne::new(cube.transform(&aims_dsp::filters::FilterKind::Db4.filter()));
    let base = RangeSumQuery::count(vec![(0, 127), (8, 119)]);
    let queries = drill_down_queries(&base, 0, 16);

    println!("16-bucket drill-down, errors after 25% of shared fetches:");
    println!(
        "{:>16} {:>14} {:>14} {:>12} {:>12}",
        "fetch order", "L2 err @25%", "max err @25%", "L2 AUC", "max AUC"
    );
    for norm in [BatchErrorNorm::L2Total, BatchErrorNorm::MaxQuery] {
        let run = progressive_batch(&engine, &queries, norm);
        let quarter = &run.steps[run.steps.len() / 4];
        println!(
            "{:>16} {:>14.1} {:>14.1} {:>12.0} {:>12.0}",
            format!("{norm:?}"),
            quarter.l2_error,
            quarter.max_error,
            run.auc(BatchErrorNorm::L2Total),
            run.auc(BatchErrorNorm::MaxQuery)
        );
        assert!(run.steps.last().unwrap().l2_error < 1e-6);
    }
    println!("\nshape check: each ordering wins (or ties) the metric it optimizes,");
    println!("and both end exact — the error-measure choice the paper formalizes.");
}

/// E21 — §3.4.1: incremental SVD inside the recognizer — quality and cost
/// against the batch-per-window mode on the same stream.
pub fn e21_incremental_recognizer() {
    crate::header("E21", "streaming recognizer: batch vs incremental SVD mode (§3.4.1)");
    let vocab = AslVocabulary::synthetic(8, 31, CyberGloveRig::default());
    let mut train = NoiseSource::seeded(6);
    let templates: Vec<(usize, MultiStream)> = (0..vocab.len())
        .flat_map(|l| (0..2).map(move |_| l))
        .map(|l| (l, vocab.instance(l, &mut train).stream))
        .collect();
    let mut stream_noise = NoiseSource::seeded(14);
    let labels: Vec<usize> = (0..30).map(|i| (i * 5 + 2) % vocab.len()).collect();
    let (stream, truth) = vocab.sentence(&labels, &mut stream_noise);
    let truth_tuples: Vec<(usize, usize, usize)> =
        truth.iter().map(|t| (t.label, t.start, t.end)).collect();

    println!("{:>14} {:>8} {:>12} {:>14}", "mode", "F1", "label acc", "µs/frame");
    for incremental in [false, true] {
        let config = IsolationConfig { incremental, ..Default::default() };
        let mut rec = StreamRecognizer::new(&templates, vocab.rig.spec(), config);
        let (detections, elapsed) = crate::timed(
            if incremental { "bench.e21.incremental" } else { "bench.e21.batch" },
            || rec.process_stream(&stream),
        );
        let report = evaluate_isolation(&detections, &truth_tuples, 0.3);
        println!(
            "{:>14} {:>8.2} {:>12.2} {:>14.1}",
            if incremental { "incremental" } else { "batch" },
            report.f1,
            report.label_accuracy,
            elapsed.as_secs_f64() * 1e6 / stream.len() as f64
        );
    }
    println!("\nshape check: the incremental mode is ~5x cheaper per frame, at a");
    println!("recognition cost: its exponentially-forgetting subspace lags the hard");
    println!("window, and the accumulation heuristic is sensitive to that lag. E18");
    println!("shows the SVD primitive itself matches batch results — the gap here is");
    println!("window semantics, the cost/quality dial the paper's refinement opens.");
}

/// E22 — §3.3.1 refinements list "dimension reduction techniques such as
/// random projections": sketching the 28-channel windows before the SVD
/// signature — accuracy and cost vs sketch dimension.
pub fn e22_random_projection() {
    crate::header("E22", "random-projection sketches before SVD signatures (§3.3.1)");
    let rig = CyberGloveRig { noise_sigma: 2.0, tremor_amplitude: 1.5, ..Default::default() };
    let vocab = AslVocabulary::synthetic_with_separation(16, 53, rig, 30.0);
    let mut train = NoiseSource::seeded(3);
    let mut test = NoiseSource::seeded(4);
    let templates: Vec<(usize, MultiStream)> =
        (0..vocab.len()).map(|l| (l, vocab.instance(l, &mut train).stream)).collect();
    let instances: Vec<(usize, MultiStream)> = (0..vocab.len())
        .flat_map(|l| (0..10).map(move |_| l))
        .map(|l| (l, vocab.instance(l, &mut test).stream))
        .collect();

    let accuracy_at = |sketch_dim: Option<usize>| -> (f64, std::time::Duration) {
        let projection = sketch_dim.map(|k| RandomProjection::new(28, k, 99));
        let signature = |s: &MultiStream| -> SvdSignature {
            let m = s.to_sensor_matrix();
            match &projection {
                Some(p) => SvdSignature::from_matrix(&p.project_columns(&m), 5),
                None => SvdSignature::from_matrix(&m, 5),
            }
        };
        let template_sigs: Vec<(usize, SvdSignature)> =
            templates.iter().map(|(l, s)| (*l, signature(s))).collect();
        let (hits, elapsed) = crate::timed("bench.e22.classify", || {
            let mut hits = 0;
            for (label, stream) in &instances {
                let sig = signature(stream);
                let best = template_sigs
                    .iter()
                    .max_by(|a, b| a.1.similarity(&sig).partial_cmp(&b.1.similarity(&sig)).unwrap())
                    .unwrap()
                    .0;
                if best == *label {
                    hits += 1;
                }
            }
            hits
        });
        (hits as f64 / instances.len() as f64, elapsed)
    };

    println!("{:>12} {:>12} {:>14}", "sketch dim", "accuracy", "classify time");
    let (full_acc, full_time) = accuracy_at(None);
    println!("{:>12} {:>11.1}% {:>14.2?}", "28 (none)", full_acc * 100.0, full_time);
    for k in [16usize, 8, 4, 2] {
        let (acc, time) = accuracy_at(Some(k));
        println!("{:>12} {:>11.1}% {:>14.2?}", k, acc * 100.0, time);
    }
    println!("\nshape check: moderate sketches preserve recognition accuracy while");
    println!("shrinking the SVD problem; very aggressive sketches degrade it —");
    println!("the accuracy/cost dial the paper's refinement list anticipates.");
}

/// E23 — §3.3.1's basis-library generalization: ProPolyne over per-axis
/// best wavelet-packet bases — exactness, and the data-compaction edge on
/// oscillatory data that motivates looking "beyond pure wavelets".
pub fn e23_packet_basis() {
    crate::header("E23", "ProPolyne over best wavelet-packet bases (§3.3.1)");
    use aims_propolyne::cube::DataCube;
    use aims_propolyne::packet::PacketCube;

    // Oscillatory-along-one-axis data: the regime where the DWT cascade is
    // a poor basis and a packet basis shines.
    let n = 128;
    let mut cube = DataCube::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            *cube.at_mut(&[i, j]) =
                (std::f64::consts::PI * 0.9 * i as f64).sin() * (2.0 + (j as f64 * 0.05).cos());
        }
    }
    let filter = aims_dsp::filters::FilterKind::Db4.filter();
    let pc = PacketCube::build(&cube, &filter, 5);
    let wc = cube.transform(&filter);

    // Exactness spot-check.
    let q = RangeSumQuery::count(vec![(10, 100), (20, 110)]);
    let exact = q.eval_scan(&cube);
    let got = pc.evaluate(&q);
    println!("exactness: packet {got:.3} vs scan {exact:.3}");
    assert!((got - exact).abs() < 1e-6 * exact.abs().max(1.0));

    // Compaction: energy captured by the top-k coefficients.
    println!("\n{:>8} {:>16} {:>16}", "top-k", "dwt basis", "best packet basis");
    for k in [64usize, 256, 1024] {
        let dwt = {
            let mut mags: Vec<f64> = wc.coeffs().iter().map(|c| c * c).collect();
            let total: f64 = mags.iter().sum();
            mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
            mags.iter().take(k).sum::<f64>() / total
        };
        println!("{:>8} {:>15.1}% {:>15.1}%", k, dwt * 100.0, pc.compaction(k) * 100.0);
    }
    println!("\nshape check: the per-axis best packet basis concentrates oscillatory");
    println!("energy in far fewer coefficients than the pure-wavelet cascade, while");
    println!("query answers stay exact — the §3.3.1 basis-library generalization.");
}
