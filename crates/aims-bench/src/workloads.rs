//! Shared synthetic workloads used across experiments.

use aims_propolyne::cube::DataCube;
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;
use aims_sensors::types::MultiStream;

/// A non-stationary glove session: rest, casual motion, intense motion —
/// the structure the acquisition experiments need (§3.1 evaluates how
/// strategies react to "the level of activity within the session window").
pub fn mixed_activity_session(seed: u64, segment_s: f64) -> MultiStream {
    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(seed);
    let mut session = rig.record_session(segment_s, 0.02, &mut noise);
    session.extend(&rig.record_session(segment_s, 0.5, &mut noise));
    session.extend(&rig.record_session(segment_s, 0.95, &mut noise));
    session
}

/// Smooth 2-D cube: mixture of Gaussians over a gentle ramp. Compresses
/// extremely well — the data-approximation-friendly case.
pub fn gaussian_mixture_cube(n: usize) -> DataCube {
    let mut cube = DataCube::zeros(&[n, n]);
    let centers = [(0.25, 0.3, 40.0), (0.7, 0.6, 60.0), (0.45, 0.85, 25.0)];
    for i in 0..n {
        for j in 0..n {
            let x = i as f64 / n as f64;
            let y = j as f64 / n as f64;
            let mut v = 2.0 + 3.0 * x;
            for &(cx, cy, a) in &centers {
                let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                v += a * (-d2 / 0.02).exp();
            }
            *cube.at_mut(&[i, j]) = v.round();
        }
    }
    cube
}

/// Uniform random cube — incompressible white noise.
pub fn uniform_cube(n: usize, seed: u64) -> DataCube {
    let mut cube = DataCube::zeros(&[n, n]);
    let mut state = seed.max(1);
    for v in cube.values_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state % 50) as f64;
    }
    cube
}

/// Zipf-ish cube: a few heavy cells, long light tail.
pub fn zipf_cube(n: usize, seed: u64) -> DataCube {
    let mut cube = DataCube::zeros(&[n, n]);
    let mut state = seed.max(1);
    let cells = n * n;
    for rank in 1..=(cells / 4) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let cell = (state % cells as u64) as usize;
        cube.values_mut()[cell] += (1000.0 / rank as f64).ceil();
    }
    cube
}

/// A cube built from a glove session's (time-bin, value-bin) pairs — the
/// sensor-trace distribution.
pub fn sensor_trace_cube(n: usize, seed: u64) -> DataCube {
    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(seed);
    let session = rig.record_session(60.0, 0.6, &mut noise);
    let chan = session.channel(5);
    let (lo, hi) = chan.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let mut cube = DataCube::zeros(&[n, n]);
    for (t, &x) in chan.iter().enumerate() {
        let ti = (t * n / chan.len()).min(n - 1);
        let vi = (((x - lo) / (hi - lo + 1e-9)) * n as f64) as usize;
        *cube.at_mut(&[ti, vi.min(n - 1)]) += 1.0;
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_cubes_have_mass() {
        assert!(gaussian_mixture_cube(32).total() > 0.0);
        assert!(uniform_cube(32, 1).total() > 0.0);
        assert!(zipf_cube(32, 2).total() > 0.0);
        assert!(sensor_trace_cube(32, 3).total() > 0.0);
    }

    #[test]
    fn mixed_session_shape() {
        let s = mixed_activity_session(1, 2.0);
        assert_eq!(s.channels(), 28);
        assert_eq!(s.len(), 600);
    }
}
