//! Experiment E30: durability-mode cost and crash recovery — a
//! YCSB-style load + update/read mix against the file-backed store under
//! each durability mode, plus a seeded crash drill proving recovery is
//! exact. Gates: fsync-always never loses an acknowledged write, and the
//! recovered state is bit-identical to the committed write prefix.

use std::io::Write;
use std::time::Instant;

use aims_storage::{
    BlockDevice, CrashPlan, DurabilityMode, FileDevice, FileDeviceOptions, MemDevice, RawMedia,
};

const BLOCK: usize = 32;
const NUM_BLOCKS: usize = 48;
const MIXED_OPS: usize = 512;
const SEED: u64 = 0xE30u64;

/// One measured durability mode.
struct Row {
    mode: DurabilityMode,
    writes: usize,
    wall_ms: f64,
    writes_per_sec: f64,
    fsyncs: u64,
    checkpoints: u64,
    recovery_ms: f64,
    replayed: u64,
    truncated_bytes: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn payload(tag: u64) -> Vec<f64> {
    (0..BLOCK).map(|i| (tag.wrapping_mul(31).wrapping_add(i as u64) % 997) as f64 - 498.0).collect()
}

/// The YCSB-style op sequence: a full load pass, then a 50/50 update/read
/// mix over seeded keys. Returns the ordered write log (block, payload).
fn op_log() -> Vec<(usize, Vec<f64>)> {
    let mut log: Vec<(usize, Vec<f64>)> = (0..NUM_BLOCKS).map(|b| (b, payload(b as u64))).collect();
    let mut state = SEED;
    for k in 0..MIXED_OPS {
        let r = splitmix(&mut state);
        if r & 1 == 0 {
            log.push(((r as usize >> 1) % NUM_BLOCKS, payload(0x1000 + k as u64)));
        }
    }
    log
}

fn opts(mode: DurabilityMode, crash: CrashPlan) -> FileDeviceOptions {
    FileDeviceOptions { mode, crash, checkpoint_bytes: 16 * 1024, ..Default::default() }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aims-e30-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn bits(device: &impl RawMedia) -> Vec<Vec<u64>> {
    (0..device.num_blocks())
        .map(|b| device.raw_payload(b).iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Applies the first `k` writes of the log to a memory replica.
fn replica(log: &[(usize, Vec<f64>)], k: usize) -> MemDevice {
    let mut mem = MemDevice::new(BLOCK, NUM_BLOCKS);
    for (b, p) in &log[..k] {
        mem.write_block(*b, p);
    }
    mem
}

/// Runs the workload with the crash plan armed, reopens, times recovery,
/// and asserts the recovered state is bit-identical to a committed
/// prefix of the write log covering every acknowledged write.
fn crash_drill(mode: DurabilityMode, log: &[(usize, Vec<f64>)], tag: &str) -> (f64, u64, u64) {
    let dir = fresh_dir(tag);
    // A crash step in the thick of the mixed phase: past the load pass,
    // before the tail.
    let crash_step = NUM_BLOCKS as u64 * 2 + (SEED % 64);
    let mut device =
        FileDevice::create(&dir, BLOCK, NUM_BLOCKS, opts(mode, CrashPlan::at(SEED, crash_step)))
            .unwrap();
    let mut completed = 0usize;
    let mut durable_at_crash = 0;
    for (b, p) in log {
        device.write_block(*b, p);
        if device.is_crashed() {
            durable_at_crash = device.durable_lsn();
            break;
        }
        completed += 1;
    }
    assert!(device.is_crashed(), "drill crash step {crash_step} never fired ({mode:?})");
    drop(device);

    let t = Instant::now();
    let device = FileDevice::open(&dir, opts(mode, CrashPlan::none())).unwrap();
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let r = device.recovery();

    // Gate: nothing acknowledged is lost. In fsync-always mode every
    // completed write was acknowledged, so this is the headline claim.
    if r.recovered_lsn > 0 {
        assert!(
            r.recovered_lsn >= durable_at_crash,
            "{mode:?}: recovered lsn {} below acked frontier {durable_at_crash}",
            r.recovered_lsn
        );
    }
    if mode == DurabilityMode::Always {
        assert!(
            durable_at_crash >= completed as u64,
            "always mode acked only {durable_at_crash} of {completed} completed writes"
        );
    }

    // Gate: the reopened store is bit-identical to SOME committed prefix
    // at least as long as the acked frontier (a post-checkpoint crash
    // leaves an empty WAL, so the prefix is found by search).
    let got = bits(&device);
    let floor = if r.recovered_lsn > 0 { r.recovered_lsn } else { durable_at_crash } as usize;
    let matched = (floor..=completed + 1).any(|k| bits(&replica(log, k.min(log.len()))) == got);
    assert!(matched, "{mode:?}: recovered state matches no committed prefix >= {floor}");

    std::fs::remove_dir_all(&dir).ok();
    (recovery_ms, r.replayed_records, r.truncated_bytes)
}

/// E30 — durable storage: acknowledged-write throughput per durability
/// mode and seeded crash drills with exact recovery. Results land in
/// `target/bench_durability.json` for CI trend tracking.
pub fn e30_durability() {
    crate::header("E30", "durability modes: write cost vs crash-loss window, with exact recovery");

    let log = op_log();
    let modes = [DurabilityMode::Always, DurabilityMode::Periodic(8), DurabilityMode::None];
    println!(
        "workload: {} blocks x {} items load + {MIXED_OPS} mixed ops \
         ({} writes total), seed {SEED:#x}\n",
        NUM_BLOCKS,
        BLOCK,
        log.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    let ((), wall) = crate::timed("bench.e30.durability", || {
        for mode in modes {
            let dir = fresh_dir(&mode.label().replace(':', "_"));
            let t = Instant::now();
            let mut device =
                FileDevice::create(&dir, BLOCK, NUM_BLOCKS, opts(mode, CrashPlan::none())).unwrap();
            for (b, p) in &log {
                device.write_block(*b, p);
            }
            device.sync();
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            let stats = device.wal_stats();

            // Sanity: the surviving state equals the full log on every mode.
            assert_eq!(bits(&device), bits(&replica(&log, log.len())), "{mode:?} state drift");
            device.close();
            std::fs::remove_dir_all(&dir).ok();

            let (recovery_ms, replayed, truncated_bytes) =
                crash_drill(mode, &log, &format!("drill-{}", mode.label().replace(':', "_")));
            rows.push(Row {
                mode,
                writes: log.len(),
                wall_ms,
                writes_per_sec: log.len() as f64 / (wall_ms / 1e3),
                fsyncs: stats.fsyncs,
                checkpoints: stats.checkpoints,
                recovery_ms,
                replayed,
                truncated_bytes,
            });
        }
    });

    println!(
        "{:>12} {:>10} {:>12} {:>8} {:>6} {:>12} {:>10} {:>10}",
        "mode", "wall ms", "writes/s", "fsyncs", "ckpts", "recovery ms", "replayed", "torn B"
    );
    for r in &rows {
        println!(
            "{:>12} {:>10} {:>12} {:>8} {:>6} {:>12} {:>10} {:>10}",
            r.mode.label(),
            format!("{:.2}", r.wall_ms),
            format!("{:.0}", r.writes_per_sec),
            r.fsyncs,
            r.checkpoints,
            format!("{:.3}", r.recovery_ms),
            r.replayed,
            r.truncated_bytes,
        );
    }
    let speedup = |num: &Row, den: &Row| num.writes_per_sec / den.writes_per_sec;
    let none_over_always = speedup(&rows[2], &rows[0]);
    let periodic_over_always = speedup(&rows[1], &rows[0]);
    println!("\nshape check: fsyncs track the mode (every write / every 8th / checkpoint-only),");
    println!(
        "none mode writes {none_over_always:.1}x faster than fsync-always \
         (periodic {periodic_over_always:.1}x); every crash drill recovered a"
    );
    println!("bit-identical committed prefix with no acked write lost. ({wall:.1?})");

    // Machine-readable record for the driver / CI trend tracking.
    let json = format!(
        "{{\"experiment\":\"e30_durability\",\"seed\":{SEED},\
         \"none_over_always\":{none_over_always:.4},\
         \"periodic_over_always\":{periodic_over_always:.4},\"rows\":[{}]}}\n",
        rows.iter()
            .map(|r| format!(
                "{{\"mode\":\"{}\",\"writes\":{},\"wall_ms\":{:.3},\"writes_per_sec\":{:.1},\
                 \"fsyncs\":{},\"checkpoints\":{},\"recovery_ms\":{:.3},\"replayed\":{},\
                 \"truncated_bytes\":{}}}",
                r.mode.label(),
                r.writes,
                r.wall_ms,
                r.writes_per_sec,
                r.fsyncs,
                r.checkpoints,
                r.recovery_ms,
                r.replayed,
                r.truncated_bytes
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = std::path::Path::new("target").join("bench_durability.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
