//! Experiment E27: the serving layer — shared-scan batching plus the
//! process-wide block cache vs per-query isolated evaluation, on 32
//! concurrent overlapping range sums.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use aims_dsp::filters::FilterKind;
use aims_propolyne::blockstore::BlockedCoefficients;
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;
use aims_service::{Outcome, QueryService, QuerySpec, ServiceConfig, ServiceError};
use aims_storage::buffer::BufferPool;
use aims_storage::device::{BlockDevice, RetryPolicy};

use crate::workloads::gaussian_mixture_cube;

const SIDE: usize = 128;
const BLOCK: usize = 32;
const QUERIES: usize = 32;

/// 32 range sums clustered on a hot region of the cube, so their block
/// footprints overlap heavily — the workload the shared scan is for.
fn overlapping_queries() -> Vec<Vec<(usize, usize)>> {
    (0..QUERIES)
        .map(|k| {
            let lo = (k * 2) % 40;
            let hi = (lo + 80).min(SIDE - 1);
            let lo2 = (k * 3) % 32;
            let hi2 = (lo2 + 72).min(SIDE - 1);
            vec![(lo, hi), (lo2, hi2)]
        })
        .collect()
}

/// E27 — concurrent query service: 32 overlapping range sums through the
/// admission/shared-scan/cache path vs the same queries each evaluated in
/// isolation through a one-block buffer pool. Asserts every concurrent
/// answer bit-identical to serial, asserts the shared path reads at least
/// 2x fewer device blocks, and demonstrates typed overload rejections.
/// Records `target/bench_service.json`.
pub fn e27_service_sharing() {
    crate::header(
        "E27",
        "query service: shared-scan batching + block cache vs isolated evaluation",
    );

    let cube = gaussian_mixture_cube(SIDE).transform(&FilterKind::Db4.filter());
    let engine = Propolyne::new(cube.clone());
    let queries = overlapping_queries();
    let expected: Vec<u64> = queries
        .iter()
        .map(|ranges| {
            let p = engine.prepare(&RangeSumQuery::count(ranges.clone()));
            engine.evaluate_prepared(&p).to_bits()
        })
        .collect();

    // Baseline: each query on its own one-block buffer pool over a shared
    // blocked store — no reuse across queries, the pre-service shape.
    let store = BlockedCoefficients::new(engine.cube().coeffs(), BLOCK);
    let mut baseline_solo_blocks = 0usize;
    for (k, ranges) in queries.iter().enumerate() {
        let prepared = engine.prepare(&RangeSumQuery::count(ranges.clone()));
        baseline_solo_blocks += store.plan_blocks(&prepared).len();
        let mut pool = BufferPool::new(1);
        let answer = store.evaluate_degraded(&prepared, &mut pool, &RetryPolicy::none());
        assert_eq!(
            answer.estimate.to_bits(),
            expected[k],
            "baseline evaluation diverged on query {k}"
        );
    }
    let baseline_reads = store.device().stats().reads;

    // Service: the same 32 queries submitted concurrently, one session
    // thread each, shared scan + cache underneath.
    let svc = Arc::new(QueryService::new(
        cube.clone(),
        BLOCK,
        ServiceConfig {
            max_batch: QUERIES,
            round_blocks: 48,
            cache_blocks: 512,
            ..ServiceConfig::default()
        },
    ));
    let (_, elapsed) = crate::timed("bench.e27.service", || {
        let mut sessions = Vec::new();
        for (k, ranges) in queries.iter().cloned().enumerate() {
            let svc = Arc::clone(&svc);
            sessions.push(std::thread::spawn(move || {
                (k, svc.submit(QuerySpec::interactive(ranges)).expect("queue sized for 32").wait())
            }));
        }
        for s in sessions {
            let (k, outcome) = s.join().unwrap();
            match outcome {
                Outcome::Done(r) => {
                    assert_eq!(
                        r.estimate.to_bits(),
                        expected[k],
                        "concurrent service answer diverged on query {k}"
                    );
                    assert_eq!(r.error_bound, 0.0, "clean storage must answer exactly");
                }
                other => panic!("query {k} did not complete: {other:?}"),
            }
        }
    });
    let service_reads = svc.device().stats().reads;
    let cache = svc.cache().stats();
    svc.shutdown();

    // Overload: a deliberately tiny queue, flooded — every failure must be
    // a typed QueueFull, never a panic or hang.
    let tiny = QueryService::new(
        cube,
        BLOCK,
        ServiceConfig {
            queue_capacity: 2,
            max_batch: 1,
            round_blocks: 4,
            round_pause: Duration::from_millis(2),
            ..ServiceConfig::default()
        },
    );
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for ranges in queries.iter().cloned() {
        match tiny.submit(QuerySpec::batch(ranges)) {
            Ok(h) => accepted.push(h),
            Err(ServiceError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(other) => panic!("overload produced a non-overload error: {other}"),
        }
    }
    let accepted_count = accepted.len();
    for h in accepted {
        assert!(
            matches!(h.wait(), Outcome::Done(_) | Outcome::Shed(_)),
            "accepted queries must still finish (exactly or with a best-so-far answer)"
        );
    }
    let accepted = accepted_count;
    tiny.shutdown();

    let reduction = baseline_reads as f64 / (service_reads as f64).max(1.0);
    println!("{:>28} {:>12}", "metric", "value");
    println!("{:>28} {:>12}", "concurrent queries", QUERIES);
    println!("{:>28} {:>12}", "plan blocks (sum of solos)", baseline_solo_blocks);
    println!("{:>28} {:>12}", "baseline device reads", baseline_reads);
    println!("{:>28} {:>12}", "service device reads", service_reads);
    println!("{:>28} {:>12}", "read reduction", crate::times(reduction));
    println!("{:>28} {:>12}", "cache hits", cache.hits);
    println!("{:>28} {:>12}", "cache misses", cache.misses);
    println!(
        "{:>28} {:>12}",
        "service wall time",
        format!("{:.1} ms", elapsed.as_secs_f64() * 1e3)
    );
    println!("{:>28} {:>12}", "overload accepted", accepted);
    println!("{:>28} {:>12}", "overload rejected (typed)", rejected);

    assert!(
        baseline_reads >= 2 * service_reads,
        "shared scan + cache must at least halve device reads: {baseline_reads} vs {service_reads}"
    );
    assert!(rejected > 0, "a 2-slot queue flooded with 32 queries must reject some");

    println!("\nshape check: all 32 concurrent answers are bit-identical to serial");
    println!("evaluation (asserted above); overlapping plans share block fetches, so");
    println!("total device reads drop >=2x vs per-query isolation; overload surfaces");
    println!("as typed QueueFull rejections while every accepted query still finishes.");

    // Machine-readable record for the driver / CI trend tracking.
    let json = format!(
        concat!(
            "{{\"experiment\":\"e27_service\",\"queries\":{},",
            "\"baseline_reads\":{},\"service_reads\":{},\"reduction\":{:.3},",
            "\"cache_hits\":{},\"cache_misses\":{},",
            "\"overload_accepted\":{},\"overload_rejected\":{},",
            "\"bit_identical\":true}}\n"
        ),
        QUERIES,
        baseline_reads,
        service_reads,
        reduction,
        cache.hits,
        cache.misses,
        accepted,
        rejected,
    );
    let path = std::path::Path::new("target").join("bench_service.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
