//! Experiments E4–E6: disk-level storage of wavelet data (paper §3.2.1).

use aims_storage::alloc::{
    evaluate_allocation, needed_items_upper_bound, Allocation, RandomAlloc, SequentialAlloc,
    TensorAlloc, TreeTilingAlloc,
};
use aims_storage::error_tree::{point_query_set, range_query_set};
use aims_storage::progressive::{error_auc, progressive_curve, RetrievalOrder};

/// E4 — "for all disk blocks of size B, if a block must be retrieved to
/// answer a query, the expected number of needed items on the block is
/// less than 1 + lg B", and the error-tree tiling approaches that bound
/// while naive layouts do not (§3.2.1).
pub fn e4_needed_items_bound() {
    crate::header("E4", "needed items per retrieved block vs the 1+lg B bound (§3.2.1)");
    let n = 1 << 16;
    let point_queries: Vec<Vec<usize>> =
        (0..300).map(|k| point_query_set((k * 397) % n, n)).collect();
    let range_queries: Vec<Vec<usize>> = (0..300)
        .map(|k| {
            let a = (k * 431) % (n / 2);
            range_query_set(a, a + n / 3, n)
        })
        .collect();

    println!("-- point queries (the bound's setting) --");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "B", "bound", "tiling", "sequential", "random", "tiling blocks/q"
    );
    for b in [4usize, 8, 16, 32, 64, 128, 256] {
        let tiling = TreeTilingAlloc::new(n, b);
        let sequential = SequentialAlloc::new(n, b);
        let random = RandomAlloc::new(n, b, 5);
        let (blocks_t, needed_t) = evaluate_allocation(&tiling, &point_queries);
        let (_, needed_s) = evaluate_allocation(&sequential, &point_queries);
        let (_, needed_r) = evaluate_allocation(&random, &point_queries);
        println!(
            "{:>6} {:>10.2} {:>12.2} {:>12.2} {:>12.2} {:>14.1}",
            b,
            needed_items_upper_bound(b),
            needed_t,
            needed_s,
            needed_r,
            blocks_t
        );
    }

    println!("\n-- range-sum queries (two boundary paths; paths share coarse blocks,");
    println!("   so needed items per block can exceed the point-query bound) --");
    println!("{:>6} {:>14} {:>14} {:>14}", "B", "tiling blk/q", "seq blk/q", "random blk/q");
    for b in [16usize, 64, 256] {
        let tiling = TreeTilingAlloc::new(n, b);
        let sequential = SequentialAlloc::new(n, b);
        let random = RandomAlloc::new(n, b, 5);
        let (bt, _) = evaluate_allocation(&tiling, &range_queries);
        let (bs, _) = evaluate_allocation(&sequential, &range_queries);
        let (br, _) = evaluate_allocation(&random, &range_queries);
        println!("{b:>6} {bt:>14.1} {bs:>14.1} {br:>14.1}");
    }
    println!("\nshape check: on point queries the tiling column tracks the 1+lg B");
    println!("bound while naive layouts sit near 1-2; on range queries the tiling");
    println!("touches the fewest blocks.");
}

/// E5 — "decompose each dimension into optimal virtual blocks, and take
/// the Cartesian products … to be our actual blocks" (§3.2.1): the tensor
/// allocation on a 2-D cube vs row-major blocks of equal size.
pub fn e5_tensor_allocation() {
    crate::header("E5", "tensor-product allocation for multivariate wavelets (§3.2.1)");
    let side = 256usize;
    let vb = 8usize; // virtual block per dimension → real block 64
    let tensor = TensorAlloc::new(&[side, side], &[vb, vb]);
    let rowmajor = SequentialAlloc::new(side * side, vb * vb);
    let random = RandomAlloc::new(side * side, vb * vb, 17);

    // 2-D point queries: tensor products of per-dimension paths.
    let mut queries = Vec::new();
    for k in 0..200 {
        let (ti, tj) = ((k * 97) % side, (k * 61) % side);
        let pi = point_query_set(ti, side);
        let pj = point_query_set(tj, side);
        let mut q = Vec::with_capacity(pi.len() * pj.len());
        for &a in &pi {
            for &b in &pj {
                q.push(a * side + b);
            }
        }
        queries.push(q);
    }

    println!("{:>14} {:>14} {:>18}", "allocation", "blocks/query", "needed items/block");
    for (name, alloc) in [
        ("tensor tiling", &tensor as &dyn Allocation),
        ("row-major", &rowmajor as &dyn Allocation),
        ("random", &random as &dyn Allocation),
    ] {
        let (blocks, needed) = evaluate_dyn(alloc, &queries);
        println!("{name:>14} {blocks:>14.1} {needed:>18.2}");
    }
    println!("\nshape check: tensor tiling touches several-fold fewer blocks per 2-D");
    println!("point query, with correspondingly more needed items per block.");
}

fn evaluate_dyn(alloc: &dyn Allocation, queries: &[Vec<usize>]) -> (f64, f64) {
    // evaluate_allocation is generic; adapt via a thin wrapper.
    struct Dyn<'a>(&'a dyn Allocation);
    impl Allocation for Dyn<'_> {
        fn block_of(&self, i: usize) -> usize {
            self.0.block_of(i)
        }
        fn num_blocks(&self) -> usize {
            self.0.num_blocks()
        }
        fn block_size(&self) -> usize {
            self.0.block_size()
        }
        fn num_coefficients(&self) -> usize {
            self.0.num_coefficients()
        }
    }
    evaluate_allocation(&Dyn(alloc), queries)
}

/// E6 — "perform the most valuable I/O's first and deliver approximate
/// results progressively" (§3.2.1): error-vs-blocks-read curves for
/// importance, sequential, and random retrieval orders.
pub fn e6_progressive_retrieval() {
    crate::header("E6", "importance-ordered progressive block retrieval (§3.2.1)");
    let n = 1 << 14;
    // A skewed coefficient vector: realistic wavelet data (most energy in
    // few coefficients).
    let signal: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            50.0 * (2.0 * std::f64::consts::PI * 1.5 * t).sin()
                + 20.0 * (2.0 * std::f64::consts::PI * 5.0 * t).sin()
                + ((i * 2654435761) % 97) as f64 * 0.05
        })
        .collect();
    let coeffs = aims_dsp::dwt::dwt_full(&signal, &aims_dsp::filters::WaveletFilter::haar());
    // Place coefficients randomly: under the tiling layout, block 0 holds
    // the coarse (most important) coefficients, so a plain sequential scan
    // is accidentally near-optimal. A random placement isolates the value
    // of the importance function itself.
    let alloc = RandomAlloc::new(n, 32, 11);

    // A range-sum query in the wavelet domain (boundary paths + root).
    let set = range_query_set(1000, 12000, n);
    let query: Vec<(usize, f64)> = set.iter().map(|&i| (i, 1.0)).collect();

    println!("{:>12} {:>14} {:>22}", "order", "error AUC", "err after 25% blocks");
    let mut aucs = Vec::new();
    for order in [RetrievalOrder::Importance, RetrievalOrder::Sequential, RetrievalOrder::Random(3)]
    {
        let curve = progressive_curve(&query, &coeffs, &alloc, order);
        let quarter = curve[curve.len() / 4].abs_error;
        let auc = error_auc(&curve);
        println!("{:>12} {:>14.1} {:>22.2}", format!("{order:?}"), auc, quarter);
        aucs.push(auc);
    }
    println!("\nshape check: importance order has the smallest error AUC — the most");
    println!("valuable blocks arrive first and the estimate converges fastest.");
}
