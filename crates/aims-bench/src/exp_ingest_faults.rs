//! Experiment E26: online recognition under sensor faults — F1 of the
//! streaming recognizer vs. wire dropout rate, for both gap-repair
//! policies, with bit-identity asserted at zero faults.

use std::io::Write;

use aims_acquisition::ingest::{IngestConfig, RepairPolicy, SupervisedIngest};
use aims_acquisition::recorder::RecorderConfig;
use aims_sensors::asl::AslVocabulary;
use aims_sensors::faulty::{FaultySensorRig, SensorFaultPlan};
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;
use aims_stream::isolation::{evaluate_isolation, IsolationConfig, StreamRecognizer};

/// Largest F1 drop from the clean baseline the gate tolerates at any
/// dropout rate up to 20%. Measured headroom: across every seed tried the
/// repaired stream scored *identically* to the clean baseline, so this
/// bound is pure safety margin against adversarial seeds (see
/// `EXPERIMENTS.md`).
const MAX_F1_DROP: f64 = 0.25;

/// One measured point of the degradation surface.
struct Row {
    dropout: f64,
    policy: RepairPolicy,
    repaired_samples: usize,
    f1: f64,
    recall: f64,
    label_accuracy: f64,
    min_confidence: f64,
}

/// E26 — fault-tolerant ingest: recognition quality as the wire dropout
/// rate grows, under both repair policies. Gates: zero faults is
/// bit-identical to the clean stream (and scores identically), and at
/// every dropout rate ≤ 20% the F1 stays within [`MAX_F1_DROP`] of the
/// clean baseline. The fault schedule derives entirely from one seed,
/// overridable via `AIMS_INGEST_FAULT_SEED`. Results land in
/// `target/bench_ingest_faults.json` for CI trend tracking.
pub fn e26_ingest_faults() {
    crate::header("E26", "fault-tolerant ingest: recognition F1 vs dropout rate x repair policy");

    let seed: u64 =
        std::env::var("AIMS_INGEST_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2003);

    // The well-separated vocabulary and sentence of the deflaked isolation
    // test: the clean baseline recognizes it perfectly, so every F1 drop
    // below is attributable to the injected faults.
    let vocab = AslVocabulary::synthetic_with_separation(6, 11, CyberGloveRig::default(), 110.0);
    let mut train = NoiseSource::seeded(2);
    let templates: Vec<(usize, _)> = (0..vocab.len())
        .flat_map(|l| (0..2).map(move |_| l))
        .map(|l| (l, vocab.instance(l, &mut train).stream))
        .collect();
    let mut stream_noise = NoiseSource::seeded(9);
    let labels = [0usize, 3, 5, 1, 4, 2, 0, 5];
    let (clean, truth) = vocab.sentence(&labels, &mut stream_noise);
    let truth_tuples: Vec<(usize, usize, usize)> =
        truth.iter().map(|t| (t.label, t.start, t.end)).collect();

    let recognize = |stream: &aims_sensors::types::MultiStream,
                     quality: &aims_sensors::types::QualityMask| {
        let mut rec =
            StreamRecognizer::new(&templates, vocab.rig.spec(), IsolationConfig::default());
        let detections = rec.process_stream_flagged(stream, quality);
        let min_conf = detections.iter().map(|d| d.confidence).fold(1.0f64, f64::min);
        (evaluate_isolation(&detections, &truth_tuples, 0.3), min_conf)
    };

    let clean_quality = aims_sensors::types::QualityMask::clean(clean.len(), clean.channels());
    let (clean_report, _) = recognize(&clean, &clean_quality);
    println!(
        "clean baseline: {} frames, {} channels, F1 {:.3}, label accuracy {:.3}, seed {seed}\n",
        clean.len(),
        clean.channels(),
        clean_report.f1,
        clean_report.label_accuracy
    );

    // A buffer the recorder can never overrun, so the only degradation
    // measured is the injected wire faults.
    let ingest_config = |policy| IngestConfig {
        repair: policy,
        recorder: RecorderConfig { buffer_frames: 1 << 16, batch_size: 64, store_latency_us: 0 },
        ..IngestConfig::default()
    };

    let mut rows: Vec<Row> = Vec::new();
    let ((), wall) = crate::timed("bench.e26.ingest_faults", || {
        for dropout in [0.0, 0.05, 0.1, 0.2] {
            for policy in RepairPolicy::ALL {
                let rig = FaultySensorRig::new(SensorFaultPlan::dropout(seed, dropout));
                let wire = rig.transmit(&clean);
                let out = SupervisedIngest::new(ingest_config(policy)).ingest(clean.spec(), &wire);
                if dropout == 0.0 {
                    assert_eq!(out.stream.len(), clean.len(), "zero-fault frame count");
                    for t in 0..clean.len() {
                        for c in 0..clean.channels() {
                            assert_eq!(
                                out.stream.value(t, c).to_bits(),
                                clean.value(t, c).to_bits(),
                                "zero-fault ingest must be bit-identical (frame {t} ch {c})"
                            );
                        }
                    }
                    assert_eq!(out.stats.repaired_samples, 0);
                } else {
                    assert!(out.stats.repaired_samples > 0, "dropout {dropout} repaired nothing");
                }
                let (report, min_conf) = recognize(&out.stream, &out.quality);
                if dropout == 0.0 {
                    assert_eq!(report.f1, clean_report.f1, "zero faults must score identically");
                }
                assert!(
                    report.f1 >= clean_report.f1 - MAX_F1_DROP,
                    "F1 fell beyond the documented bound at dropout {dropout} ({}): \
                     {:.3} < {:.3} - {MAX_F1_DROP}",
                    policy.name(),
                    report.f1,
                    clean_report.f1
                );
                rows.push(Row {
                    dropout,
                    policy,
                    repaired_samples: out.stats.repaired_samples,
                    f1: report.f1,
                    recall: report.recall,
                    label_accuracy: report.label_accuracy,
                    min_confidence: min_conf,
                });
            }
        }
    });

    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "dropout", "policy", "repaired", "F1", "recall", "label acc", "min conf"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12} {:>10} {:>8} {:>8} {:>10} {:>10}",
            format!("{:.2}", r.dropout),
            r.policy.name(),
            r.repaired_samples,
            format!("{:.3}", r.f1),
            format!("{:.3}", r.recall),
            format!("{:.3}", r.label_accuracy),
            format!("{:.3}", r.min_confidence),
        );
    }
    println!("\nshape check: zero dropout → zero repairs, bit-identical samples and an");
    println!("identical score; repairs grow with the dropout rate, confidence discounts");
    println!("deepen, and F1 stays within {MAX_F1_DROP} of the clean baseline. ({wall:.1?})");

    // Machine-readable record for the driver / CI trend tracking.
    let json = format!(
        "{{\"experiment\":\"e26_ingest_faults\",\"seed\":{seed},\"clean_f1\":{:.6},\
         \"max_f1_drop\":{MAX_F1_DROP},\"rows\":[{}]}}\n",
        clean_report.f1,
        rows.iter()
            .map(|r| format!(
                "{{\"dropout\":{:.2},\"policy\":\"{}\",\"repaired_samples\":{},\"f1\":{:.6},\
                 \"recall\":{:.6},\"label_accuracy\":{:.6},\"min_confidence\":{:.6}}}",
                r.dropout,
                r.policy.name(),
                r.repaired_samples,
                r.f1,
                r.recall,
                r.label_accuracy,
                r.min_confidence
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = std::path::Path::new("target").join("bench_ingest_faults.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
