//! Experiment E29: single-core kernel speed — the in-place lifting DWT,
//! cache-blocked tiled transforms, unrolled matmul and SoA batch inner
//! products against frozen copies of the pre-kernel implementations.
//!
//! Everything here runs on a one-thread pool: E24 measures how well the
//! hot paths scale *across* cores, E29 measures how fast one core moves
//! through them. The old implementations are reproduced verbatim below
//! (per-line gather + per-level allocating convolution for the DWT, the
//! naive zero-skipping triple loop for matmul, the AoS `(index, value)`
//! sorted merge for the batch dot) so the speedup is measured against the
//! real predecessor, not a strawman.

use std::io::Write;

use aims_dsp::dwt::{analysis_step, dwt_standard_md_with, idwt_standard_md_with, synthesis_step};
use aims_dsp::filters::{FilterKind, WaveletFilter};
use aims_exec::ThreadPool;
use aims_linalg::Matrix;
use aims_propolyne::batch::{drill_down_queries, evaluate_batch_with};
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;

use crate::workloads::gaussian_mixture_cube;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Pre-kernel full decomposition: one fresh `(approx, detail)` Vec pair
/// per level, error-tree concatenation.
fn old_dwt_full(signal: &[f64], filter: &WaveletFilter) -> Vec<f64> {
    let mut approx = signal.to_vec();
    let mut details = Vec::new();
    while approx.len() > 1 {
        let (a, d) = analysis_step(&approx, filter);
        details.push(d);
        approx = a;
    }
    let mut out = approx;
    for d in details.into_iter().rev() {
        out.extend_from_slice(&d);
    }
    out
}

fn old_idwt_full(coeffs: &[f64], filter: &WaveletFilter) -> Vec<f64> {
    let mut approx = vec![coeffs[0]];
    let mut offset = 1;
    while offset < coeffs.len() {
        let band = &coeffs[offset..offset + approx.len()];
        approx = synthesis_step(&approx, band, filter);
        offset += band.len();
    }
    approx
}

/// Pre-kernel 2-D standard transform: per axis, gather every line into a
/// fresh Vec (strided element-by-element for the non-contiguous axis),
/// transform it through the allocating per-level path, scatter it back.
fn old_dwt_2d(data: &[f64], dims: &[usize; 2], filter: &WaveletFilter, forward: bool) -> Vec<f64> {
    let (rows, cols) = (dims[0], dims[1]);
    let mut out = data.to_vec();
    // Axis 0: stride `cols` lines of length `rows`.
    for c in 0..cols {
        let line: Vec<f64> = (0..rows).map(|r| out[r * cols + c]).collect();
        let t = if forward { old_dwt_full(&line, filter) } else { old_idwt_full(&line, filter) };
        for (r, v) in t.into_iter().enumerate() {
            out[r * cols + c] = v;
        }
    }
    // Axis 1: contiguous rows.
    for r in 0..rows {
        let line = out[r * cols..(r + 1) * cols].to_vec();
        let t = if forward { old_dwt_full(&line, filter) } else { old_idwt_full(&line, filter) };
        out[r * cols..(r + 1) * cols].copy_from_slice(&t);
    }
    out
}

/// Pre-kernel matmul: the naive i→k→j triple loop with the zero-skip
/// branch the blocked kernel replaced.
fn old_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let orow = out.row_mut(i);
        for (k, &aik) in a.row(i).iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            for (o, &bv) in orow.iter_mut().zip(b.row(k)) {
                *o += aik * bv;
            }
        }
        let _ = orow;
    }
    out
}

/// Pre-kernel batch evaluation: AoS `(index, weight)` entries merged
/// against an AoS `(index, value)` fetch plan, serial throughout.
fn old_evaluate_batch(engine: &Propolyne, queries: &[RangeSumQuery]) -> Vec<f64> {
    let prepared: Vec<Vec<(usize, f64)>> =
        queries.iter().map(|q| engine.prepare(q).entries().collect()).collect();
    let coeffs = engine.cube().coeffs();
    let mut needed: Vec<usize> = prepared.iter().flat_map(|p| p.iter().map(|&(i, _)| i)).collect();
    needed.sort_unstable();
    needed.dedup();
    let plan: Vec<(usize, f64)> = needed.into_iter().map(|i| (i, coeffs[i])).collect();
    prepared
        .iter()
        .map(|entries| {
            let mut acc = 0.0;
            let mut cursor = 0usize;
            for &(i, w) in entries {
                while plan[cursor].0 < i {
                    cursor += 1;
                }
                acc += w * plan[cursor].1;
                cursor += 1;
            }
            acc
        })
        .collect()
}

/// E29 — kernel rework: serial wall time of the current kernels vs the
/// frozen pre-rework implementations, results pinned (bit-identical where
/// the kernel is exact, ulp-bounded for the Db4 lifting factorization).
/// Records `target/bench_kernels.json` for the trend gate.
pub fn e29_kernel_speed() {
    crate::header("E29", "kernel rework: serial speed vs frozen pre-kernel implementations");
    println!("pool size: 1 (single-core kernel speed; E24 covers scaling)\n");

    // Resolve the autotuner up front so its one-shot calibration doesn't
    // land inside the first timed region.
    let tune = aims_exec::tuning();
    println!(
        "autotuned tile {} / serial-below {} ({})\n",
        tune.tile,
        tune.par_threshold,
        if tune.from_env { "AIMS_TILE override" } else { "calibrated" }
    );

    let serial = ThreadPool::new(1);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let report = crate::TelemetryReport::start();

    // 2-D DWT, 1024x1024 db4, forward + inverse.
    {
        let n = 1024usize;
        let filter = FilterKind::Db4.filter();
        let data: Vec<f64> =
            (0..n * n).map(|i| ((i % 613) as f64 * 0.25).sin() + (i / n) as f64 * 1e-3).collect();
        let dims = [n, n];
        let (old_fwd, t_old) = crate::timed("bench.e29.dwt.old", || {
            let fwd = old_dwt_2d(&data, &dims, &filter, true);
            let _inv = old_dwt_2d(&fwd, &dims, &filter, false);
            fwd
        });
        let (new_fwd, t_new) = crate::timed("bench.e29.dwt.new", || {
            let fwd = dwt_standard_md_with(&serial, &data, &dims, &filter);
            let _inv = idwt_standard_md_with(&serial, &fwd, &dims, &filter);
            fwd
        });
        // Db4 runs through the lifting factorization: equal to the old
        // convolution path up to a few ulps per level. In 2-D the two
        // axis passes compound, and the column pass's rounding is carried
        // at the magnitude of its intermediate coefficients (which grow
        // ~sqrt(2) per level), so the error scale is the largest
        // coefficient, not the input scale.
        let levels = (n.trailing_zeros() as f64) + 1.0;
        let cmax = old_fwd.iter().fold(1e-30_f64, |m, v| m.max(v.abs()));
        let tol = 8.0 * levels * cmax * f64::EPSILON;
        for (i, (a, b)) in new_fwd.iter().zip(&old_fwd).enumerate() {
            assert!((a - b).abs() <= tol, "db4 coeff {i}: {a} vs {b} (tol {tol:e})");
        }
        rows.push(("2-D DWT 1024^2 fwd+inv".into(), t_old.as_secs_f64(), t_new.as_secs_f64()));
    }

    // Same transform with Haar, where the new kernel must be exact.
    {
        let n = 512usize;
        let filter = FilterKind::Haar.filter();
        let data: Vec<f64> = (0..n * n).map(|i| ((i * 29 + 3) % 97) as f64 * 0.1 - 4.0).collect();
        let dims = [n, n];
        let (old_fwd, t_old) =
            crate::timed("bench.e29.haar.old", || old_dwt_2d(&data, &dims, &filter, true));
        let (new_fwd, t_new) = crate::timed("bench.e29.haar.new", || {
            dwt_standard_md_with(&serial, &data, &dims, &filter)
        });
        assert_eq!(bits(&new_fwd), bits(&old_fwd), "haar kernel diverged from convolution");
        rows.push(("2-D Haar DWT 512^2 fwd".into(), t_old.as_secs_f64(), t_new.as_secs_f64()));
    }

    // Matmul 512x512: blocked + unrolled vs naive, bit-identical.
    {
        let n = 512usize;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 101) as f64 * 0.01 - 0.5);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 17) % 89) as f64 * 0.01 - 0.4);
        let (c_old, t_old) = crate::timed("bench.e29.matmul.old", || old_matmul(&a, &b));
        let (c_new, t_new) = crate::timed("bench.e29.matmul.new", || a.matmul_with(&serial, &b));
        assert_eq!(bits(c_new.as_slice()), bits(c_old.as_slice()), "blocked matmul diverged");
        rows.push(("matmul 512^2".into(), t_old.as_secs_f64(), t_new.as_secs_f64()));
    }

    // 64-query drill-down batch: SoA plan + merge vs AoS, bit-identical.
    {
        let cube = gaussian_mixture_cube(256);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let base = RangeSumQuery::count(vec![(0, 255), (16, 239)]);
        let queries = drill_down_queries(&base, 0, 64);
        let (res_old, t_old) =
            crate::timed("bench.e29.batch.old", || old_evaluate_batch(&engine, &queries));
        let (res_new, t_new) =
            crate::timed("bench.e29.batch.new", || evaluate_batch_with(&serial, &engine, &queries));
        assert_eq!(bits(&res_new.answers), bits(&res_old), "SoA batch diverged from AoS");
        rows.push(("ProPolyne batch 64q".into(), t_old.as_secs_f64(), t_new.as_secs_f64()));
    }

    println!("{:>24} {:>12} {:>12} {:>10}", "workload", "old", "new", "speedup");
    for (name, to, tn) in &rows {
        println!(
            "{:>24} {:>12} {:>12} {:>10}",
            name,
            format!("{:.1} ms", to * 1e3),
            format!("{:.1} ms", tn * 1e3),
            crate::times(to / tn.max(1e-12))
        );
    }
    println!("\nshape check: exact kernels (Haar, matmul, batch) are asserted bit-identical");
    println!("to the frozen implementations; the Db4 lifting path is ulp-bounded per level.");
    println!("Target: >=2x on the 2-D DWT (in-place lifting + tiled strided access).");

    report.finish("E29 kernel counters (scratch reuse, tuner)");

    let json = format!(
        "{{\"experiment\":\"e29_kernels\",\"workloads\":[{}]}}\n",
        rows.iter()
            .map(|(name, to, tn)| format!(
                "{{\"name\":\"{name}\",\"old_s\":{to:.6},\"new_s\":{tn:.6},\"speedup\":{:.3}}}",
                to / tn.max(1e-12)
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = std::path::Path::new("target").join("bench_kernels.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
