//! Experiment E19: the integrated AIMS pipeline (paper Fig. 1, §4).

use aims::{AimsConfig, AimsSystem};
use aims_sensors::asl::AslVocabulary;
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;
use aims_stream::isolation::{evaluate_isolation, IsolationConfig};

use crate::workloads::mixed_activity_session;

/// E19 — end-to-end: one session acquired, transformed, stored, and
/// queried through both modes, with throughput and I/O accounting.
pub fn e19_end_to_end() {
    crate::header("E19", "integrated AIMS pipeline: acquire → store → query (Fig. 1)");

    // Acquire + store.
    let session = mixed_activity_session(55, 20.0);
    let raw = session.device_size_bytes();
    let mut system = AimsSystem::new(AimsConfig::default());
    let telemetry = crate::TelemetryReport::start();
    let (report, ingest_time) = crate::timed("bench.e19.ingest", || system.ingest(&session));
    println!(
        "ingest: {} frames x {} ch in {ingest_time:.2?} ({:.1} Mframe-ch/s)",
        report.frames,
        report.channels,
        (report.frames * report.channels) as f64 / ingest_time.as_secs_f64() / 1e6
    );
    println!(
        "storage: {} bytes after sampling ({:.1}x vs raw {}), rmse {:.3}",
        report.sampled_bytes,
        raw as f64 / report.sampled_bytes as f64,
        raw,
        report.sampling_rmse
    );

    // Offline queries over blocked storage.
    let (checks, offline_time) = crate::timed("bench.e19.offline_queries", || {
        let mut checks = 0usize;
        for c in (0..system.channels()).step_by(4) {
            let avg = system.channel_average(c, 10.0, 50.0).unwrap();
            assert!(avg.is_finite());
            checks += 1;
        }
        checks
    });
    let reads = system.total_block_reads();
    println!("offline: {checks} channel averages in {offline_time:.2?}, {reads} block reads total");

    // Online recognition on a fresh stream with the same rig.
    let vocab = AslVocabulary::synthetic(8, 29, CyberGloveRig::default());
    let mut noise = NoiseSource::seeded(3);
    let templates: Vec<(usize, _)> = (0..vocab.len())
        .flat_map(|l| (0..2).map(move |_| l))
        .map(|l| (l, vocab.instance(l, &mut noise).stream))
        .collect();
    let mut recognizer =
        AimsSystem::online_recognizer(&templates, vocab.rig.spec(), IsolationConfig::default());
    let labels: Vec<usize> = (0..12).map(|i| (i * 3 + 1) % vocab.len()).collect();
    let (stream, truth) = vocab.sentence(&labels, &mut noise);
    let (detections, online_time) =
        crate::timed("bench.e19.online", || recognizer.process_stream(&stream));
    let truth_tuples: Vec<(usize, usize, usize)> =
        truth.iter().map(|t| (t.label, t.start, t.end)).collect();
    let rep = evaluate_isolation(&detections, &truth_tuples, 0.3);
    println!(
        "online: {} signs over {:.0}s processed in {online_time:.2?} — F1 {:.2}, label acc {:.2}",
        truth.len(),
        stream.duration(),
        rep.f1,
        rep.label_accuracy
    );
    println!("\nshape check: one system instance serves the full Fig. 1 data path with");
    println!("bounded memory and accounted I/O at far-beyond-real-time throughput.");
    telemetry.finish("E19 end-to-end");
}
