//! Experiments E7–E12: ProPolyne, the off-line query engine (paper §3.3,
//! §3.3.1).

use aims_dsp::dwt::dwt_full;
use aims_dsp::filters::FilterKind;
use aims_dsp::poly::Polynomial;
use aims_propolyne::batch::{drill_down_queries, evaluate_batch};
use aims_propolyne::cube::{AttributeSpace, DataCube};
use aims_propolyne::engine::Propolyne;
use aims_propolyne::hybrid::{choose_standard_dims, HybridEngine};
use aims_propolyne::lazy::lazy_transform;
use aims_propolyne::query::RangeSumQuery;
use aims_propolyne::synopsis::compare_at_budget;

use crate::workloads::{gaussian_mixture_cube, sensor_trace_cube, uniform_cube, zipf_cube};

/// E7 — "the lazy wavelet transform … translates polynomial range-sums to
/// the wavelet domain in polylogarithmic time" (§3.3). Nonzeros and time
/// vs domain size, against the naive dense transform.
pub fn e7_lazy_transform() {
    crate::header("E7", "lazy wavelet transform: polylog query translation (§3.3)");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "N", "log2 N", "nnz", "lazy work", "lazy time", "dense time"
    );
    let poly = Polynomial::from_coeffs(vec![1.0, 0.5]); // degree-1 measure
    let filter = FilterKind::Db4.filter();
    for log_n in [8u32, 10, 12, 14, 16, 18, 20] {
        let n = 1usize << log_n;
        let (a, b) = (n / 7, n - n / 5);

        let (lazy, lazy_time) =
            crate::timed("bench.e7.lazy_transform", || lazy_transform(n, a, b, &poly, &filter));

        let dense_time = if log_n <= 18 {
            let q: Vec<f64> =
                (0..n).map(|i| if i >= a && i <= b { poly.eval(i as f64) } else { 0.0 }).collect();
            let (_, dense) = crate::timed("bench.e7.dense_transform", || dwt_full(&q, &filter));
            format!("{:>10.2?}", dense)
        } else {
            "      (skip)".into()
        };

        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>14.2?} {:>12}",
            n,
            log_n,
            lazy.nnz(1e-7),
            lazy.work,
            lazy_time,
            dense_time
        );
    }
    println!("\nshape check: nnz and lazy work grow ~linearly in log N (polylog), while");
    println!("the dense transform time grows linearly in N.");
}

/// E8 — ProPolyne exact evaluation matches the relational scan for all
/// five aggregate types (§3.3: "not only COUNT, SUM and AVERAGE, but also
/// VARIANCE, COVARIANCE").
pub fn e8_exact_aggregates() {
    crate::header("E8", "exact COUNT/SUM/AVG/VARIANCE/COVARIANCE vs relational scan (§3.3)");
    let space = AttributeSpace::new(vec![(0.0, 64.0), (0.0, 64.0)], vec![64, 64]);
    let cube = {
        let mut c = DataCube::zeros(&[64, 64]);
        let mut state = 99u64;
        for v in c.values_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 6) as f64;
        }
        c
    };
    let engine = Propolyne::new(cube.transform(&FilterKind::Db6.filter()));
    let stats = aims_propolyne::stats::CubeStats::new(&engine, &space);

    let mut max_rel = vec![0.0f64; 5];
    let mut checked = 0usize;
    for k in 0..40 {
        let a0 = (k * 7) % 40;
        let a1 = (k * 11) % 32;
        let ranges = [(a0, a0 + 23), (a1, a1 + 31)];
        let rq = |q: RangeSumQuery| q.eval_scan(&cube);

        let count_scan = rq(RangeSumQuery::count(ranges.to_vec()));
        if count_scan == 0.0 {
            continue;
        }
        checked += 1;
        let vp0 = space.value_poly(0);
        let vp1 = space.value_poly(1);
        let sum_scan = rq(RangeSumQuery::sum_poly(ranges.to_vec(), 0, vp0.clone()));
        let sq_scan = rq(RangeSumQuery::sum_poly(ranges.to_vec(), 0, vp0.mul(&vp0)));
        let cross_scan =
            rq(RangeSumQuery::sum_product(ranges.to_vec(), 0, vp0.clone(), 1, vp1.clone()));
        let sum1_scan = rq(RangeSumQuery::sum_poly(ranges.to_vec(), 1, vp1));

        let avg_scan = sum_scan / count_scan;
        let var_scan = sq_scan / count_scan - avg_scan * avg_scan;
        let cov_scan = cross_scan / count_scan - avg_scan * (sum1_scan / count_scan);

        let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1.0);
        max_rel[0] = max_rel[0].max(rel(stats.count(&ranges), count_scan));
        max_rel[1] = max_rel[1].max(rel(stats.sum(0, &ranges), sum_scan));
        max_rel[2] = max_rel[2].max(rel(stats.average(0, &ranges).unwrap(), avg_scan));
        max_rel[3] = max_rel[3].max(rel(stats.variance(0, &ranges).unwrap(), var_scan));
        max_rel[4] = max_rel[4].max(rel(stats.covariance(0, 1, &ranges).unwrap(), cov_scan));
    }
    println!("{checked} random rectangles checked; max relative deviation from scan:");
    for (name, err) in ["COUNT", "SUM", "AVERAGE", "VARIANCE", "COVARIANCE"].iter().zip(&max_rel) {
        println!("  {name:>10}: {err:.2e}");
    }
    println!("\nshape check: all five aggregates agree with the scan to rounding error.");
}

/// E9 — "the approximate results produced by ProPolyne are very accurate
/// long before the exact query evaluation is complete" (§3.3), plus the
/// filter-moment ablation.
pub fn e9_progressive_accuracy() {
    crate::header("E9", "progressive accuracy: error vs retrieved query coefficients (§3.3)");
    let cube = gaussian_mixture_cube(256);

    println!("-- error vs fraction of query coefficients (db4, COUNT query) --");
    let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
    let q = RangeSumQuery::count(vec![(31, 215), (40, 180)]);
    let run = engine.progressive(&q);
    let total = run.steps.len();
    println!("{:>10} {:>12} {:>12}", "coeffs", "rel error", "bound/exact");
    for frac in [0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let k = ((total as f64 * frac) as usize).clamp(1, total);
        let s = &run.steps[k - 1];
        println!(
            "{:>9}% {:>12.2e} {:>12.2e}",
            (frac * 100.0) as usize,
            s.abs_error / run.exact.abs(),
            s.guaranteed_bound / run.exact.abs()
        );
    }

    println!("\n-- filter ablation: 1-D query nnz at N=65536 (moment condition) --");
    println!("{:>8} {:>10} {:>18} {:>18}", "filter", "moments", "nnz, degree 1", "nnz, degree 2");
    let n = 1 << 16;
    for kind in FilterKind::ALL {
        let f = kind.filter();
        let nnz = |deg: usize| {
            lazy_transform(n, n / 9, n - n / 11, &Polynomial::monomial(deg), &f).nnz(1e-7)
        };
        println!(
            "{:>8} {:>10} {:>18} {:>18}",
            format!("{kind:?}"),
            f.vanishing_moments(),
            nnz(1),
            nnz(2)
        );
    }
    println!("\nshape check: ~1% relative error within a few percent of the");
    println!("coefficients; a filter with too few vanishing moments for the measure's");
    println!("degree produces O(N) query coefficients, adequate filters stay at");
    println!("O(filter-length x log N) — the paper's moment condition, sharply.");
}

/// E10 — "the performance of wavelet based data approximation methods
/// varies wildly with the dataset, while query approximation based
/// ProPolyne delivers consistent, and consistently better, results" (§3.3).
pub fn e10_data_vs_query_approximation() {
    crate::header("E10", "data approximation vs query approximation across datasets (§3.3)");
    let n = 128;
    let datasets: Vec<(&str, DataCube)> = vec![
        ("smooth mixture", gaussian_mixture_cube(n)),
        ("uniform noise", uniform_cube(n, 5)),
        ("zipf spikes", zipf_cube(n, 9)),
        ("sensor trace", sensor_trace_cube(n, 13)),
    ];
    let workload: Vec<RangeSumQuery> = (0..15)
        .map(|k| {
            let a = (k * 7) % 50;
            RangeSumQuery::count(vec![(a, a + 60), (5 + k, 90 + k)])
        })
        .collect();
    let budget = 96;

    println!("{:>16} {:>14} {:>14} {:>10}", "dataset", "data-approx", "query-approx", "winner");
    let mut data_errs = Vec::new();
    let mut query_errs = Vec::new();
    for (name, cube) in &datasets {
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let (d, q) = compare_at_budget(&engine, &workload, budget);
        println!(
            "{:>16} {:>14.4} {:>14.4} {:>10}",
            name,
            d,
            q,
            if q <= d { "query" } else { "data" }
        );
        data_errs.push(d);
        query_errs.push(q);
    }
    let worst = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\nworst-case error across datasets: data-approx {:.4}, query-approx {:.4}",
        worst(&data_errs),
        worst(&query_errs)
    );
    println!("shape check: data approximation is only competitive on the one highly");
    println!("compressible dataset and degrades by an order of magnitude on the");
    println!("others; query approximation wins on most datasets and its worst case");
    println!("is several-fold better — 'consistent, and consistently better'.");
}

/// E11 — the hybrid standard/wavelet engine "can perform dramatically
/// better" than pure relational or pure ProPolyne, with the decomposition
/// chosen at population time (§3.3.1).
pub fn e11_hybrid() {
    crate::header("E11", "hybrid standard+wavelet basis vs pure plans (§3.3.1)");
    // Sensor relation: (sensor_id, time, value) with 4 sensors.
    let space = AttributeSpace::new(vec![(0.0, 4.0), (0.0, 512.0), (0.0, 64.0)], vec![4, 512, 64]);
    let tuples: Vec<Vec<f64>> = (0..6000)
        .map(|i| {
            let sensor = (i % 4) as f64 + 0.5;
            let time = ((i / 4) % 512) as f64 + 0.5;
            let value = (32.0 + 24.0 * ((i as f64) * 0.013).sin()).floor() + 0.5;
            vec![sensor, time, value]
        })
        .collect();

    let chosen = choose_standard_dims(&space, &tuples, 16);
    println!("population-time chooser picked standard dims: {chosen:?} (expected [0])");

    let filter = FilterKind::Db4.filter();
    let hybrid = HybridEngine::build(&space, &tuples, &chosen, &filter);
    let cube = DataCube::from_tuples(&space, tuples.clone());
    let pure = Propolyne::new(cube.transform(&filter));

    // Workload: single-sensor range aggregates (the common immersidata
    // query: "this sensor, this time window").
    println!(
        "\n{:>26} {:>16} {:>16} {:>14}",
        "query", "pure ProPolyne", "hybrid coeffs", "relational rows"
    );
    for (label, sensor, trange) in [
        ("sensor 1, t∈[50,300)", 1usize, (50usize, 299usize)),
        ("sensor 3, t∈[0,512)", 3, (0, 511)),
        ("sensor 0, t∈[200,210)", 0, (200, 209)),
    ] {
        let q = RangeSumQuery::count(vec![(sensor, sensor), trange, (0, 63)]);
        let pure_cost = pure.prepare(&q).nnz();
        let ans = hybrid.evaluate(&q);
        // Pure relational plan: scan matching rows.
        let rows = tuples
            .iter()
            .filter(|t| {
                space.bin(0, t[0]) == sensor && (trange.0..=trange.1).contains(&space.bin(1, t[1]))
            })
            .count();
        println!("{:>26} {:>16} {:>16} {:>14}", label, pure_cost, ans.coefficients_touched, rows);
        let scan = q.eval_scan(&cube);
        assert!((ans.value - scan).abs() < 1e-5 * scan.abs().max(1.0), "hybrid wrong");
    }
    println!("\nshape check: the hybrid touches fewer coefficients than pure ProPolyne");
    println!("on selective sensor queries, and both beat scanning the matching rows.");
}

/// E12 — batch/group-by evaluation "shares I/O maximally" across related
/// ranges (§3.3.1).
pub fn e12_batch_sharing() {
    crate::header("E12", "shared retrieval for drill-down query batches (§3.3.1)");
    let cube = gaussian_mixture_cube(128);
    let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
    let base = RangeSumQuery::count(vec![(0, 127), (16, 111)]);

    println!("{:>10} {:>16} {:>16} {:>12}", "buckets", "independent", "shared", "sharing");
    for buckets in [2usize, 4, 8, 16, 32] {
        let queries = drill_down_queries(&base, 0, buckets);
        let batch = evaluate_batch(&engine, &queries);
        println!(
            "{:>10} {:>16} {:>16} {:>12}",
            buckets,
            batch.independent_fetches,
            batch.shared_fetches,
            crate::times(batch.sharing_factor())
        );
        // Sanity: buckets partition the base.
        let total: f64 = batch.answers.iter().sum();
        let whole = engine.evaluate(&base);
        assert!((total - whole).abs() < 1e-6 * whole.abs().max(1.0));
    }
    println!("\nshape check: the sharing factor grows with the number of related");
    println!("buckets — drill-down buckets share their coarse coefficients.");
}
