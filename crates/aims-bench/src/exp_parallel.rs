//! Experiment E24: the execution layer — serial vs parallel wall time on
//! the three multicore hot paths (2-D DWT, ProPolyne batch, matmul), with
//! bit-identical results asserted for every measurement.

use std::io::Write;

use aims_dsp::dwt::{dwt_standard_md_with, idwt_standard_md_with};
use aims_dsp::filters::FilterKind;
use aims_exec::{configured_threads, global_pool, ThreadPool};
use aims_linalg::Matrix;
use aims_propolyne::batch::{drill_down_queries, evaluate_batch_with};
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;

use crate::workloads::gaussian_mixture_cube;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// E24 — execution layer: work-stealing pool speedup on the DWT,
/// ProPolyne batch, and matmul hot paths. The parallel result of every
/// workload is asserted bit-identical to the serial one; the speedups are
/// recorded in `target/bench_parallel.json` (threads included, since a
/// single-core host legitimately reports ~1.0x).
pub fn e24_parallel_speedup() {
    let threads = configured_threads();
    crate::header("E24", "parallel execution layer: serial vs pooled hot paths (bit-identical)");
    println!("pool size: {threads} (AIMS_THREADS or available parallelism)\n");

    let serial = ThreadPool::new(1);
    let pool = global_pool();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // 2-D DWT, 1024x1024 db4: forward + inverse.
    {
        let n = 1024usize;
        let filter = FilterKind::Db4.filter();
        let data: Vec<f64> =
            (0..n * n).map(|i| ((i % 613) as f64 * 0.25).sin() + (i / n) as f64 * 1e-3).collect();
        let dims = [n, n];
        let (fwd_s, t_serial) = crate::timed("bench.e24.dwt.serial", || {
            let fwd = dwt_standard_md_with(&serial, &data, &dims, &filter);
            let inv = idwt_standard_md_with(&serial, &fwd, &dims, &filter);
            (fwd, inv)
        });
        let (fwd_p, t_par) = crate::timed("bench.e24.dwt.parallel", || {
            let fwd = dwt_standard_md_with(pool, &data, &dims, &filter);
            let inv = idwt_standard_md_with(pool, &fwd, &dims, &filter);
            (fwd, inv)
        });
        assert_eq!(bits(&fwd_p.0), bits(&fwd_s.0), "parallel forward DWT diverged");
        assert_eq!(bits(&fwd_p.1), bits(&fwd_s.1), "parallel inverse DWT diverged");
        rows.push(("2-D DWT 1024^2 fwd+inv".into(), t_serial.as_secs_f64(), t_par.as_secs_f64()));
    }

    // 64-query drill-down batch on a 256x256 db4 cube.
    {
        let cube = gaussian_mixture_cube(256);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let base = RangeSumQuery::count(vec![(0, 255), (16, 239)]);
        let queries = drill_down_queries(&base, 0, 64);
        let (res_s, t_serial) = crate::timed("bench.e24.batch.serial", || {
            evaluate_batch_with(&serial, &engine, &queries)
        });
        let (res_p, t_par) = crate::timed("bench.e24.batch.parallel", || {
            evaluate_batch_with(pool, &engine, &queries)
        });
        assert_eq!(bits(&res_p.answers), bits(&res_s.answers), "parallel batch diverged");
        rows.push(("ProPolyne batch 64q".into(), t_serial.as_secs_f64(), t_par.as_secs_f64()));
    }

    // Blocked matmul, 512x512.
    {
        let n = 512usize;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 101) as f64 * 0.01 - 0.5);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 17) % 89) as f64 * 0.01 - 0.4);
        let (c_s, t_serial) =
            crate::timed("bench.e24.matmul.serial", || a.matmul_with(&serial, &b));
        let (c_p, t_par) = crate::timed("bench.e24.matmul.parallel", || a.matmul_with(pool, &b));
        assert_eq!(bits(c_p.as_slice()), bits(c_s.as_slice()), "parallel matmul diverged");
        rows.push(("matmul 512^2".into(), t_serial.as_secs_f64(), t_par.as_secs_f64()));
    }

    println!("{:>24} {:>12} {:>12} {:>10}", "workload", "serial", "parallel", "speedup");
    for (name, ts, tp) in &rows {
        println!(
            "{:>24} {:>12} {:>12} {:>10}",
            name,
            format!("{:.1} ms", ts * 1e3),
            format!("{:.1} ms", tp * 1e3),
            crate::times(ts / tp.max(1e-12))
        );
    }
    println!("\nshape check: every parallel result is bit-identical to serial (asserted");
    println!("above); speedup tracks the core count — ~1.0x on a single-core host,");
    println!(">=2x expected on 4+ cores for the DWT and batch workloads.");

    // Machine-readable record for the driver / CI trend tracking.
    let json = format!(
        "{{\"experiment\":\"e24_parallel\",\"threads\":{threads},\"workloads\":[{}]}}\n",
        rows.iter()
            .map(|(name, ts, tp)| format!(
                "{{\"name\":\"{name}\",\"serial_s\":{ts:.6},\"parallel_s\":{tp:.6},\"speedup\":{:.3}}}",
                ts / tp.max(1e-12)
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = std::path::Path::new("target").join("bench_parallel.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
