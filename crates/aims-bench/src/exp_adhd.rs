//! Experiments E13–E14: the ADHD off-line analysis application (paper
//! §2.1).

use aims_learn::{
    cross_validate, Dataset, DecisionTree, GaussianNaiveBayes, KNearestNeighbors, Label, LinearSvm,
};
use aims_propolyne::cube::AttributeSpace;
use aims_propolyne::stats::CubeStats;
use aims_sensors::adhd::{generate_cohort, AdhdSession, SessionConfig, SubjectKind};

fn cohort_dataset(sessions: &[AdhdSession]) -> Dataset {
    Dataset::new(
        sessions.iter().map(|s| s.motion_speed_features()).collect(),
        sessions
            .iter()
            .map(|s| match s.profile.kind {
                SubjectKind::Normal => Label::Negative,
                SubjectKind::Adhd => Label::Positive,
            })
            .collect(),
    )
}

/// E13 — "we successfully (with 86% accuracy) distinguished hyperactive
/// kids from normal ones by using a Support Vector Machine (SVM) on the
/// motion speed of different trackers" (§2.1), with the earlier-work
/// baselines (Bayes, trees) for context.
pub fn e13_adhd_classification() {
    crate::header("E13", "ADHD vs normal: SVM on tracker motion speed (§2.1, paper: 86%)");
    // Short sessions: motion-speed estimates carry realistic estimation
    // noise, keeping the classifier below ceiling (as in the study).
    let config = SessionConfig { duration_s: 40.0, ..Default::default() };
    let sessions = generate_cohort(60, &config, 2003);
    let dataset = cohort_dataset(&sessions);
    println!(
        "cohort: {} subjects ({} features each), 5-fold cross-validation",
        dataset.len(),
        dataset.dim()
    );

    println!(
        "\n{:>22} {:>12} {:>10} {:>10} {:>8}",
        "classifier", "accuracy", "precision", "recall", "F1"
    );
    let rows: Vec<(&str, aims_learn::CvReport)> = vec![
        ("linear SVM (paper)", cross_validate::<LinearSvm>(&dataset, 5, 7)),
        ("naive Bayes", cross_validate::<GaussianNaiveBayes>(&dataset, 5, 7)),
        ("decision tree", cross_validate::<DecisionTree>(&dataset, 5, 7)),
        ("k-NN (k=5)", cross_validate::<KNearestNeighbors>(&dataset, 5, 7)),
    ];
    for (name, report) in &rows {
        println!(
            "{:>22} {:>11.1}% {:>10.2} {:>10.2} {:>8.2}",
            name,
            report.mean_accuracy() * 100.0,
            report.confusion.precision(),
            report.confusion.recall(),
            report.confusion.f1()
        );
    }
    println!("\nshape check: the SVM lands near the paper's 86% —");
    println!("and is competitive with or better than the conventional baselines the");
    println!("group used in earlier work [28, 5].");
}

/// E14 — the §2.1 example queries answered through ProPolyne: per-child
/// average response time, and the correlation between performance and
/// distraction attention.
pub fn e14_adhd_queries() {
    crate::header("E14", "ADHD analytical queries via ProPolyne range-sums (§2.1)");
    let config = SessionConfig::default();
    let sessions = generate_cohort(20, &config, 777);

    // Relation: (subject, reaction_ms, attended_distraction_s) per hit.
    let n_subjects = sessions.len();
    let space = AttributeSpace::new(
        vec![(0.0, n_subjects as f64), (0.0, 1500.0), (0.0, 25.0)],
        vec![64, 128, 32],
    );
    let mut tuples = Vec::new();
    for s in &sessions {
        let attention = s.total_distraction_attention();
        for e in &s.task_events {
            if let Some(rt) = e.reaction_s {
                tuples.push(vec![s.subject_id as f64 + 0.5, rt * 1000.0, attention]);
            }
        }
    }
    let reference = tuples.clone();
    let engine = aims::AimsSystem::offline_engine(
        &space,
        tuples,
        &aims_dsp::filters::FilterKind::Db6.filter(),
    );
    let stats = CubeStats::new(&engine, &space);
    println!("{} response tuples loaded", reference.len());

    // Per-subject averages: ProPolyne vs direct aggregation.
    println!("\n{:>9} {:>10} {:>16} {:>14}", "subject", "group", "avg rt (prop.)", "avg rt (scan)");
    let mut max_dev: f64 = 0.0;
    for s in sessions.iter().take(8) {
        let bin = space.bin(0, s.subject_id as f64 + 0.5);
        let ranges = [(bin, bin), (0, 127), (0, 31)];
        let prop = stats.average(1, &ranges);
        let direct: Vec<f64> =
            reference.iter().filter(|t| space.bin(0, t[0]) == bin).map(|t| t[1]).collect();
        if let (Some(p), false) = (prop, direct.is_empty()) {
            let scan_avg = direct.iter().sum::<f64>() / direct.len() as f64;
            max_dev = max_dev.max((p - scan_avg).abs() / scan_avg);
            println!(
                "{:>9} {:>10} {:>14.0}ms {:>12.0}ms",
                s.subject_id,
                format!("{:?}", s.profile.kind),
                p,
                scan_avg
            );
        }
    }
    println!("max relative deviation from scan (binning error): {max_dev:.3}");

    // Correlation query over the whole cohort.
    let all = [(0usize, 63usize), (0usize, 127usize), (0usize, 31usize)];
    let cov = stats.covariance(1, 2, &all).unwrap();
    let corr =
        cov / (stats.variance(1, &all).unwrap().sqrt() * stats.variance(2, &all).unwrap().sqrt());
    println!("\ncovariance(reaction time, distraction attention) = {cov:.1} (corr {corr:+.2})");
    println!("\nshape check: ProPolyne reproduces the scan averages to binning");
    println!("resolution, and the correlation is positive (distractible subjects are");
    println!("slower), answering the paper's example queries in the wavelet domain.");
}
