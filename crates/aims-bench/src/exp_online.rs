//! Experiments E15–E18: the online query-and-analysis subsystem (paper
//! §3.4, §3.4.1, §3.4.2).

use aims_linalg::{IncrementalSvd, Matrix, Svd};
use aims_propolyne::cube::{AttributeSpace, DataCube};
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;
use aims_sensors::asl::AslVocabulary;
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;
use aims_sensors::types::MultiStream;
use aims_stream::baselines::SimilarityMeasure;
use aims_stream::isolation::{evaluate_isolation, IsolationConfig, StreamRecognizer};
use aims_stream::signature::SvdSignature;
use aims_stream::vocabulary::VocabularyMatcher;

/// E15's vocabulary: *motion-defined* signs. All signs share one hand
/// posture and differ only in their wrist-motion structure; within each
/// pair, the two signs have identical per-channel amplitudes and
/// frequencies and differ only in the *relative phase* between two
/// channels (in-phase vs anti-phase). This is precisely the regime the
/// paper argues for the SVD measure (§3.4.2): the information lives in the
/// correlation across sensors — per-channel DFT magnitudes cannot see it,
/// and time-domain distances are scrambled by the random onset phase of
/// each performance.
struct MotionSign {
    motion: aims_sensors::glove::WristMotion,
    base_duration_s: f64,
}

fn motion_vocabulary(pairs: usize, seed: u64) -> Vec<MotionSign> {
    let mut noise = NoiseSource::seeded(seed);
    let mut signs = Vec::with_capacity(pairs * 2);
    for p in 0..pairs {
        // Two coupled tracker channels + per-pair distinct frequency.
        let c1 = p % 6;
        let c2 = (p + 1 + p / 6) % 6;
        let freq = 1.0 + 0.45 * p as f64;
        let amp = 18.0;
        for anti in [false, true] {
            let mut m = aims_sensors::glove::WristMotion::still();
            m.amplitude[c1] = amp;
            m.frequency[c1] = freq;
            m.amplitude[c2] = amp;
            m.frequency[c2] = freq;
            m.phase[c2] = if anti { std::f64::consts::PI } else { 0.0 };
            signs.push(MotionSign { motion: m, base_duration_s: noise.uniform(0.9, 1.3) });
        }
    }
    signs
}

/// One performance of a motion sign: random global onset phase, random
/// duration, sensor noise — relative phase between channels is the only
/// reliable signature.
fn motion_instance(rig: &CyberGloveRig, sign: &MotionSign, noise: &mut NoiseSource) -> MultiStream {
    let shape = aims_sensors::glove::HandShape::neutral();
    let mut motion = sign.motion.clone();
    let global_phase = noise.uniform(0.0, std::f64::consts::TAU);
    for c in 0..motion.phase.len() {
        motion.phase[c] += global_phase;
    }
    let frames = ((sign.base_duration_s * noise.uniform(0.7, 1.4)) * rig.sample_rate) as usize;
    rig.record_motion(&shape, &shape, &motion, frames.max(16), noise)
}

/// E15 — "our choice of weighted SVD for similarity measure is justified"
/// (§3.4.2): rank-1 recognition across measures on motion-defined signs
/// whose identity lives in cross-sensor correlation.
pub fn e15_similarity_measures() {
    crate::header("E15", "weighted-SVD vs Euclidean/DFT/DWT similarity (§3.4, §3.4.2)");
    let rig = CyberGloveRig { noise_sigma: 0.8, tremor_amplitude: 0.8, ..Default::default() };
    let signs = motion_vocabulary(10, 42);
    let mut train_noise = NoiseSource::seeded(1);
    let mut test_noise = NoiseSource::seeded(2);

    let templates: Vec<(usize, MultiStream)> = signs
        .iter()
        .enumerate()
        .map(|(l, s)| (l, motion_instance(&rig, s, &mut train_noise)))
        .collect();
    let test: Vec<(usize, MultiStream)> = signs
        .iter()
        .enumerate()
        .flat_map(|(l, s)| (0..25).map(move |_| (l, s)))
        .map(|(l, s)| (l, motion_instance(&rig, s, &mut test_noise)))
        .collect();

    println!(
        "vocabulary: {} motion-defined signs ({} in/anti-phase pairs), {} test instances",
        signs.len(),
        signs.len() / 2,
        test.len()
    );
    println!("each instance: random onset phase, ±40% duration, sensor noise");
    println!("\n{:>14} {:>12}", "measure", "accuracy");
    for measure in SimilarityMeasure::ALL {
        let mut matcher = VocabularyMatcher::new(measure);
        for (l, t) in &templates {
            matcher.add_template(*l, t.clone());
        }
        println!("{:>14} {:>11.1}%", measure.name(), matcher.accuracy(&test) * 100.0);
    }
    println!("\nshape check: weighted-SVD dominates — the in/anti-phase distinction is");
    println!("a cross-sensor covariance sign, invisible to per-channel DFT magnitudes");
    println!("and washed out of time-domain distances by the random onset phase.");
}

/// E16 — the accumulation heuristic "in real-time investigates the
/// accumulated values and simultaneously recognizes and isolates the input
/// patterns" (§3.4): segmentation F1, label accuracy and per-frame cost on
/// a long continuous stream.
pub fn e16_isolation() {
    crate::header("E16", "simultaneous isolation + recognition on a continuous stream (§3.4)");
    let vocab = AslVocabulary::synthetic(10, 17, CyberGloveRig::default());
    let mut train_noise = NoiseSource::seeded(4);
    let templates: Vec<(usize, MultiStream)> = (0..vocab.len())
        .flat_map(|l| (0..2).map(move |_| l))
        .map(|l| (l, vocab.instance(l, &mut train_noise).stream))
        .collect();

    let mut stream_noise = NoiseSource::seeded(8);
    let labels: Vec<usize> = (0..60).map(|i| (i * 7 + 3) % vocab.len()).collect();
    let (stream, truth) = vocab.sentence(&labels, &mut stream_noise);
    println!("stream: {} frames ({:.0}s), {} signs", stream.len(), stream.duration(), truth.len());

    let mut recognizer =
        StreamRecognizer::new(&templates, vocab.rig.spec(), IsolationConfig::default());
    let (detections, elapsed) =
        crate::timed("bench.e16.process_stream", || recognizer.process_stream(&stream));

    let truth_tuples: Vec<(usize, usize, usize)> =
        truth.iter().map(|t| (t.label, t.start, t.end)).collect();
    let report = evaluate_isolation(&detections, &truth_tuples, 0.3);
    let per_frame = elapsed.as_secs_f64() / stream.len() as f64;
    println!("\ndetections: {}", detections.len());
    println!("precision {:.2}  recall {:.2}  F1 {:.2}", report.precision, report.recall, report.f1);
    println!("label accuracy among matched segments: {:.2}", report.label_accuracy);
    println!(
        "processing: {elapsed:.2?} total, {:.1} µs/frame ({}x faster than the 100 Hz real-time budget)",
        per_frame * 1e6,
        (0.01 / per_frame) as u64
    );
    println!("\nshape check: F1 and label accuracy well above chance (chance label");
    println!(
        "accuracy = {:.2}), per-frame cost far under the 10 ms real-time budget.",
        1.0 / vocab.len() as f64
    );
}

/// E17 — "ProPolyne's class of polynomial range-sum aggregates can be used
/// directly to compute our SVD-based similarity function" (§3.4.1): the
/// Gram matrix from SUM(xᵢxⱼ)/COUNT range-sums matches the direct one, and
/// the signatures agree.
pub fn e17_svd_from_propolyne() {
    crate::header("E17", "SVD similarity computed from ProPolyne range-sums (§3.4.1)");
    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(23);
    let d = 4;
    println!("{:>8} {:>18} {:>22}", "window", "gram max dev", "signature similarity");
    for window_s in [0.5f64, 1.0, 2.0] {
        let window = rig.record_session(window_s, 0.7, &mut noise);
        let n = window.len();
        let channels: Vec<Vec<f64>> = (0..d).map(|c| window.channel(c)).collect();
        let direct = Matrix::from_fn(d, d, |a, b| {
            channels[a].iter().zip(&channels[b]).map(|(x, y)| x * y).sum::<f64>() / n as f64
        });

        let space = AttributeSpace::new(vec![(-120.0, 120.0); d], vec![128; d]);
        let tuples: Vec<Vec<f64>> =
            (0..n).map(|t| (0..d).map(|c| channels[c][t]).collect()).collect();
        let cube = DataCube::from_tuples(&space, tuples);
        let engine = Propolyne::new(cube.transform(&aims_dsp::filters::FilterKind::Db6.filter()));
        let full: Vec<(usize, usize)> = vec![(0, 127); d];
        let count = engine.evaluate(&RangeSumQuery::count(full.clone()));
        let gram = Matrix::from_fn(d, d, |a, b| {
            let q = if a == b {
                let v = space.value_poly(a);
                RangeSumQuery::sum_poly(full.clone(), a, v.mul(&v))
            } else {
                RangeSumQuery::sum_product(
                    full.clone(),
                    a,
                    space.value_poly(a),
                    b,
                    space.value_poly(b),
                )
            };
            engine.evaluate(&q) / count
        });

        let dev = {
            let diff = &direct - &gram;
            diff.max_abs() / direct.max_abs()
        };
        let sim =
            SvdSignature::from_gram(&direct, 3).similarity(&SvdSignature::from_gram(&gram, 3));
        println!("{:>7.1}s {:>18.4} {:>22.6}", window_s, dev, sim);
    }
    println!("\nshape check: the range-sum Gram matrix matches the direct one to");
    println!("binning resolution, and the SVD signatures are interchangeable —");
    println!("the online similarity can run on wavelet-stored data.");
}

/// E18 — "computing SVD incrementally … reducing the overall computation
/// cost considerably" (§3.4.1): per-window cost and subspace agreement of
/// incremental vs batch SVD on a sliding 28-D stream.
pub fn e18_incremental_svd() {
    crate::header("E18", "incremental vs batch SVD over sliding windows (§3.4.1)");
    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(6);
    let stream = rig.record_session(20.0, 0.7, &mut noise);
    let sensors = stream.channels();
    let window = 64usize;
    let step = 4usize;

    // Batch: full Jacobi SVD per window. Incremental: one rank update per
    // new column (amortized over `step` columns per window move).
    let mut batch_time = std::time::Duration::ZERO;
    let mut inc_time = std::time::Duration::ZERO;
    let mut agreement = 0.0;
    let mut windows = 0usize;

    let mut inc = IncrementalSvd::new(sensors, 8);
    // Prime with the first window.
    for t in 0..window {
        let col: aims_linalg::Vector = stream.frame(t).iter().copied().collect();
        inc.append_column(&col);
    }
    let mut t = window;
    while t + step <= stream.len() {
        // Incremental: absorb the new frames (no downdating — the window
        // grows; the dominant subspace tracking is what matters for
        // similarity).
        let (sig_inc, dt_inc) = crate::timed("bench.e18.incremental_step", || {
            for dt in 0..step {
                let col: aims_linalg::Vector = stream.frame(t + dt).iter().copied().collect();
                inc.append_column(&col);
            }
            SvdSignature::from_incremental(&inc, 5)
        });
        inc_time += dt_inc;

        // Batch: full SVD of the whole prefix seen so far (what a
        // non-incremental implementation would recompute).
        let (sig_batch, dt_batch) = crate::timed("bench.e18.batch_svd", || {
            let m = Matrix::from_fn(sensors, t + step, |c, tt| stream.value(tt, c));
            let svd = Svd::compute(&m);
            let total: f64 = svd.singular_values.iter().map(|s| s * s).sum();
            SvdSignature {
                basis: svd.u.submatrix(0, sensors, 0, 5),
                shares: svd.singular_values.iter().take(5).map(|s| s * s / total).collect(),
            }
        });
        batch_time += dt_batch;

        agreement += sig_inc.similarity(&sig_batch);
        windows += 1;
        t += step;
        if windows >= 40 {
            break;
        }
    }

    println!("{windows} window updates of {step} frames each (28 sensors)");
    println!(
        "batch recomputation: {batch_time:.2?} total ({:.2?}/update)",
        batch_time / windows as u32
    );
    println!(
        "incremental update : {inc_time:.2?} total ({:.2?}/update)",
        inc_time / windows as u32
    );
    println!(
        "speedup {:.1}x, mean signature agreement {:.4}",
        batch_time.as_secs_f64() / inc_time.as_secs_f64(),
        agreement / windows as f64
    );
    println!("\nshape check: the incremental path is much cheaper per update and its");
    println!("signature stays interchangeable with the batch one.");
}
