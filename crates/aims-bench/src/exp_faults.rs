//! Experiment E25: graceful degradation under storage faults —
//! degraded-query error vs. fraction of lost blocks, with the guaranteed
//! error bound asserted at every point and bit-identity asserted at zero
//! faults.

use std::io::Write;

use aims_storage::buffer::BufferPool;
use aims_storage::device::{BlockDevice, RetryPolicy};
use aims_storage::faults::{FaultKind, FaultPlan, FaultyDevice};
use aims_storage::store::{AllocKind, WaveletStore};

/// One measured point of the degradation curve.
struct Row {
    dead_fraction: f64,
    lost_blocks: usize,
    degraded_queries: usize,
    mean_abs_error: f64,
    mean_bound: f64,
    worst_rel_error: f64,
}

/// E25 — fault-injected storage: mean degraded-query error and guaranteed
/// bound as the fraction of dead blocks grows. Gates: at every fraction
/// the true error never exceeds the bound, and at fraction 0 every answer
/// is bit-identical to the plain in-memory device. Results land in
/// `target/bench_faults.json` for CI trend tracking.
pub fn e25_fault_degradation() {
    crate::header("E25", "fault-injected storage: degraded-query error vs fraction of lost blocks");

    let n = 4096usize;
    let block = 32usize;
    let seed = 0xA1B2u64;
    let signal: Vec<f64> =
        (0..n).map(|i| ((i * 13 + 5) % 31) as f64 - 15.0 + (i as f64 * 0.003).sin()).collect();
    let plain = WaveletStore::from_signal(&signal, block, AllocKind::TreeTiling);

    // 64 range queries spread over the domain at several widths.
    let queries: Vec<(usize, usize)> = (0..64)
        .map(|k| {
            let width = 1usize << (4 + (k % 8));
            let start = (k * 61) % (n - width);
            (start, start + width - 1)
        })
        .collect();
    let exact: Vec<f64> = {
        let mut pool = BufferPool::new(256);
        queries.iter().map(|&(a, b)| plain.range_sum(a, b, &mut pool)).collect()
    };

    println!("store: n={n}, B={block}, tree tiling, {} range queries, seed {seed:#x}\n", 64);

    let policy = RetryPolicy::with_retries(2);
    let mut rows: Vec<Row> = Vec::new();
    let ((), wall) = crate::timed("bench.e25.faults", || {
        for dead_fraction in [0.0, 0.05, 0.1, 0.2, 0.4] {
            let store =
                WaveletStore::from_signal_on(&signal, block, AllocKind::TreeTiling, |bs, nb| {
                    FaultyDevice::with_plan(
                        bs,
                        nb,
                        FaultPlan::uniform(seed, FaultKind::DeadBlock, dead_fraction),
                    )
                });
            let device = store.device();
            let lost_blocks = (0..device.num_blocks()).filter(|&b| device.is_dead(b)).count();

            let mut pool = BufferPool::new(256);
            let mut degraded_queries = 0usize;
            let mut sum_err = 0.0;
            let mut sum_bound = 0.0;
            let mut worst_rel = 0.0f64;
            for (&(a, b), &truth) in queries.iter().zip(&exact) {
                let got = store.range_sum_outcome(a, b, &mut pool, &policy);
                let err = (got.value - truth).abs();
                assert!(
                    err <= got.error_bound + 1e-9,
                    "bound violated at fraction {dead_fraction} [{a},{b}]: \
                     err {err} > bound {}",
                    got.error_bound
                );
                if dead_fraction == 0.0 {
                    assert_eq!(
                        got.value.to_bits(),
                        truth.to_bits(),
                        "zero-fault answer must be bit-identical [{a},{b}]"
                    );
                }
                if got.degraded() {
                    degraded_queries += 1;
                    sum_err += err;
                    sum_bound += got.error_bound;
                    worst_rel = worst_rel.max(err / truth.abs().max(1.0));
                }
            }
            let denom = degraded_queries.max(1) as f64;
            rows.push(Row {
                dead_fraction,
                lost_blocks,
                degraded_queries,
                mean_abs_error: sum_err / denom,
                mean_bound: sum_bound / denom,
                worst_rel_error: worst_rel,
            });
        }
    });

    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14} {:>12}",
        "dead frac", "dead blocks", "degraded q", "mean |err|", "mean bound", "worst rel"
    );
    for r in &rows {
        println!(
            "{:>10} {:>12} {:>14} {:>14} {:>14} {:>12}",
            format!("{:.2}", r.dead_fraction),
            r.lost_blocks,
            format!("{}/64", r.degraded_queries),
            format!("{:.3}", r.mean_abs_error),
            format!("{:.3}", r.mean_bound),
            format!("{:.4}", r.worst_rel_error),
        );
    }
    println!("\nshape check: zero faults → 0 degraded queries and bit-identical answers");
    println!("(asserted above); the guaranteed bound dominates the true error at every");
    println!("fraction, and both grow with the share of lost blocks. ({wall:.1?})");

    // Machine-readable record for the driver / CI trend tracking.
    let json = format!(
        "{{\"experiment\":\"e25_faults\",\"seed\":{seed},\"queries\":64,\"rows\":[{}]}}\n",
        rows.iter()
            .map(|r| format!(
                "{{\"dead_fraction\":{:.2},\"lost_blocks\":{},\"degraded_queries\":{},\
                 \"mean_abs_error\":{:.6},\"mean_bound\":{:.6},\"worst_rel_error\":{:.6}}}",
                r.dead_fraction,
                r.lost_blocks,
                r.degraded_queries,
                r.mean_abs_error,
                r.mean_bound,
                r.worst_rel_error
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = std::path::Path::new("target").join("bench_faults.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
