//! Perf-trajectory regression gate (ROADMAP item 4).
//!
//! Each E-experiment records its key numbers in `target/bench_*.json`.
//! This tool distills those files into a handful of named scalar
//! metrics, compares them against the committed baselines in
//! `BENCH_TRAJECTORY.json`, and exits non-zero when any metric has
//! regressed beyond its tolerance — so a perf regression fails ci.sh
//! the same way a broken test does.
//!
//! Usage:
//!   trend check            compare current numbers against baselines
//!   trend check --record   also ratchet baselines on improvement and
//!                          adopt any metrics not yet tracked
//!
//! Tolerances are per-metric: wall-time-derived numbers (speedups, the
//! tracing overhead) get wide bands because they move with host load;
//! seeded accuracy numbers (worst-case error, recognition F1) are
//! deterministic and get tight ones. `higher` metrics regress by
//! falling below `baseline * (1 - rel) - abs`; `lower` metrics by
//! rising above `baseline * (1 + rel) + abs`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

use aims_telemetry::json::{self, JsonValue};

const TRAJECTORY_PATH: &str = "BENCH_TRAJECTORY.json";
const HISTORY_CAP: usize = 24;

/// One tracked metric: where it came from, which way is better, and how
/// much slack it gets before a change counts as a regression.
struct MetricSpec {
    name: &'static str,
    direction: Direction,
    rel_tolerance: f64,
    abs_tolerance: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Higher,
    Lower,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            _ => None,
        }
    }
}

/// Reads `target/bench_*.json` and distills the tracked metrics.
/// Files that are missing are skipped (their metrics simply don't get
/// checked this run); files that exist but don't parse are an error.
fn collect_current() -> Result<Vec<(MetricSpec, f64)>, String> {
    let mut out = Vec::new();

    // E24 — parallel speedups, one metric per workload. These are
    // ratios of two wall-clock runs on a shared host and swing up to
    // 3x under contention (the 2-D DWT has been observed anywhere
    // between 0.4x and 1.3x), so the band only catches catastrophic
    // regressions; the --record ratchet tightens baselines once the
    // ROADMAP item-4 kernel work makes them stable.
    if let Some(v) = load("target/bench_parallel.json")? {
        let workloads = v
            .get("workloads")
            .and_then(JsonValue::as_array)
            .ok_or("bench_parallel.json: missing workloads[]")?;
        for w in workloads {
            let name = w.str("name").ok_or("bench_parallel.json: workload without name")?;
            let speedup =
                w.num("speedup").ok_or("bench_parallel.json: workload without speedup")?;
            out.push((
                MetricSpec {
                    name: leak(format!("e24.{}.speedup", slug(name))),
                    direction: Direction::Higher,
                    rel_tolerance: 0.75,
                    abs_tolerance: 0.0,
                },
                speedup,
            ));
        }
    }

    // E29 — serial kernel speedups vs the frozen pre-kernel
    // implementations. Both sides run on the same core in the same
    // process, so the ratio is steadier than E24's parallel numbers —
    // but it is still a wall-clock ratio on a shared host: medium band.
    if let Some(v) = load("target/bench_kernels.json")? {
        let workloads = v
            .get("workloads")
            .and_then(JsonValue::as_array)
            .ok_or("bench_kernels.json: missing workloads[]")?;
        for w in workloads {
            let name = w.str("name").ok_or("bench_kernels.json: workload without name")?;
            let speedup = w.num("speedup").ok_or("bench_kernels.json: workload without speedup")?;
            out.push((
                MetricSpec {
                    name: leak(format!("e29.{}.speedup", slug(name))),
                    direction: Direction::Higher,
                    rel_tolerance: 0.50,
                    abs_tolerance: 0.0,
                },
                speedup,
            ));
        }
    }

    // E25 — worst relative error across the fault sweep. Seeded and
    // deterministic: tight band.
    if let Some(v) = load("target/bench_faults.json")? {
        let worst = rows_extreme(&v, "worst_rel_error", f64::max, f64::NEG_INFINITY)
            .ok_or("bench_faults.json: no worst_rel_error in rows[]")?;
        out.push((
            MetricSpec {
                name: "e25.worst_rel_error",
                direction: Direction::Lower,
                rel_tolerance: 0.05,
                abs_tolerance: 0.0,
            },
            worst,
        ));
    }

    // E26 — minimum recognition F1 across dropout levels. Seeded: tight.
    if let Some(v) = load("target/bench_ingest_faults.json")? {
        let min_f1 = rows_extreme(&v, "f1", f64::min, f64::INFINITY)
            .ok_or("bench_ingest_faults.json: no f1 in rows[]")?;
        out.push((
            MetricSpec {
                name: "e26.min_f1",
                direction: Direction::Higher,
                rel_tolerance: 0.05,
                abs_tolerance: 0.0,
            },
            min_f1,
        ));
    }

    // E27 — shared-scan read reduction. Deterministic plan math, but
    // admission timing can shift which queries share a scan: medium.
    if let Some(v) = load("target/bench_service.json")? {
        let reduction = v.num("reduction").ok_or("bench_service.json: missing reduction")?;
        out.push((
            MetricSpec {
                name: "e27.reduction",
                direction: Direction::Higher,
                rel_tolerance: 0.20,
                abs_tolerance: 0.0,
            },
            reduction,
        ));
    }

    // E30 — durability-mode write throughput ratios. Each side is a
    // wall-clock run doing real fsyncs, so the ratio moves with the
    // host's storage stack: wide band, ratcheted by --record.
    if let Some(v) = load("target/bench_durability.json")? {
        for (field, name) in [
            ("none_over_always", "e30.none_over_always.speedup"),
            ("periodic_over_always", "e30.periodic_over_always.speedup"),
        ] {
            let ratio =
                v.num(field).ok_or_else(|| format!("bench_durability.json: missing {field}"))?;
            out.push((
                MetricSpec {
                    name,
                    direction: Direction::Higher,
                    rel_tolerance: 0.75,
                    abs_tolerance: 0.0,
                },
                ratio,
            ));
        }
    }

    // E31 — adaptive QoS. The scheduling comparison (boost-weighted
    // FIFO/utility bound-area ratio) is deterministic once the cohort
    // is gathered, so it gets a modest band; the drill's shed fraction
    // is a seeded workload property with a little admission-timing
    // slack; recovery time and overload p99 are wall-clock numbers on
    // a flooded service, so they get absolute bands wide enough for a
    // loaded CI host.
    if let Some(v) = load("target/bench_chaos.json")? {
        let ratio = v.num("auc_ratio").ok_or("bench_chaos.json: missing auc_ratio")?;
        out.push((
            MetricSpec {
                name: "e31.auc_ratio",
                direction: Direction::Higher,
                rel_tolerance: 0.15,
                abs_tolerance: 0.0,
            },
            ratio,
        ));
        let shed = v.num("shed_fraction").ok_or("bench_chaos.json: missing shed_fraction")?;
        out.push((
            MetricSpec {
                name: "e31.shed_fraction",
                direction: Direction::Lower,
                rel_tolerance: 0.25,
                abs_tolerance: 0.05,
            },
            shed,
        ));
        let recovery = v.num("recovery_ms").ok_or("bench_chaos.json: missing recovery_ms")?;
        out.push((
            MetricSpec {
                name: "e31.recovery_ms",
                direction: Direction::Lower,
                rel_tolerance: 0.0,
                abs_tolerance: 500.0,
            },
            recovery,
        ));
        let p99 = v.num("p99_overload_ms").ok_or("bench_chaos.json: missing p99_overload_ms")?;
        out.push((
            MetricSpec {
                name: "e31.p99_overload_ms",
                direction: Direction::Lower,
                rel_tolerance: 2.0,
                abs_tolerance: 10.0,
            },
            p99,
        ));
    }

    // E32 — tiered ingest. The absorption rate and query p99 are
    // wall-clock numbers on a host also running the compactor, so they
    // get wide bands (the 1M/s acceptance floor is asserted inside the
    // experiment itself, not here); compaction lag moves with scheduler
    // luck on a saturated box and gets an absolute allowance on top.
    if let Some(v) = load("target/bench_tier.json")? {
        let rate = v
            .num("ingest_samples_per_sec")
            .ok_or("bench_tier.json: missing ingest_samples_per_sec")?;
        out.push((
            MetricSpec {
                name: "e32.ingest_samples_per_sec",
                direction: Direction::Higher,
                rel_tolerance: 0.60,
                abs_tolerance: 0.0,
            },
            rate,
        ));
        let lag = v.num("compaction_lag_ms").ok_or("bench_tier.json: missing compaction_lag_ms")?;
        out.push((
            MetricSpec {
                name: "e32.compaction_lag_ms",
                direction: Direction::Lower,
                rel_tolerance: 1.0,
                abs_tolerance: 1000.0,
            },
            lag,
        ));
        let p99 = v.num("query_p99_ms").ok_or("bench_tier.json: missing query_p99_ms")?;
        out.push((
            MetricSpec {
                name: "e32.query_p99_ms",
                direction: Direction::Lower,
                rel_tolerance: 2.0,
                abs_tolerance: 10.0,
            },
            p99,
        ));
    }

    // E28 — tracing overhead ratio. Pure wall-time delta on a ~20 ms
    // run: the absolute band matters more than the relative one.
    if let Some(v) = load("target/bench_trace.json")? {
        let overhead = v.num("overhead").ok_or("bench_trace.json: missing overhead")?;
        out.push((
            MetricSpec {
                name: "e28.overhead",
                direction: Direction::Lower,
                rel_tolerance: 0.0,
                abs_tolerance: 0.04,
            },
            overhead,
        ));
    }

    Ok(out)
}

fn load(path: &str) -> Result<Option<JsonValue>, String> {
    if !Path::new(path).exists() {
        return Ok(None);
    }
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map(Some).map_err(|e| format!("{path}: {e:?}"))
}

/// Folds `field` across the object's `rows[]` with the given combiner.
fn rows_extreme(v: &JsonValue, field: &str, fold: fn(f64, f64) -> f64, init: f64) -> Option<f64> {
    let rows = v.get("rows")?.as_array()?;
    let mut acc = init;
    let mut seen = false;
    for r in rows {
        if let Some(x) = r.num(field) {
            acc = fold(acc, x);
            seen = true;
        }
    }
    seen.then_some(acc)
}

/// `"2-D DWT 1024^2 fwd+inv"` -> `"2_d_dwt_1024_2_fwd_inv"` — a stable
/// metric-name fragment from a human workload label.
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_sep = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    if out.ends_with('_') {
        out.pop();
    }
    out
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// The committed state for one metric.
struct Tracked {
    direction: Direction,
    rel_tolerance: f64,
    abs_tolerance: f64,
    baseline: f64,
    history: Vec<f64>,
}

fn load_trajectory(path: &str) -> Result<BTreeMap<String, Tracked>, String> {
    if !Path::new(path).exists() {
        return Ok(BTreeMap::new());
    }
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("{path}: {e:?}"))?;
    let metrics = v
        .get("metrics")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| format!("{path}: missing metrics object"))?;
    let mut out = BTreeMap::new();
    for (name, m) in metrics {
        let direction = m
            .str("direction")
            .and_then(Direction::from_str)
            .ok_or_else(|| format!("{path}: metric {name} has bad direction"))?;
        let baseline =
            m.num("baseline").ok_or_else(|| format!("{path}: metric {name} has no baseline"))?;
        let history = m
            .get("history")
            .and_then(JsonValue::as_array)
            .map(|a| a.iter().filter_map(JsonValue::as_f64).collect())
            .unwrap_or_default();
        out.insert(
            name.clone(),
            Tracked {
                direction,
                rel_tolerance: m.num("rel_tolerance").unwrap_or(0.0),
                abs_tolerance: m.num("abs_tolerance").unwrap_or(0.0),
                baseline,
                history,
            },
        );
    }
    Ok(out)
}

fn write_trajectory(path: &str, metrics: &BTreeMap<String, Tracked>) -> Result<(), String> {
    let mut s = String::from("{\n  \"version\": 1,\n  \"metrics\": {\n");
    let last = metrics.len().saturating_sub(1);
    for (i, (name, t)) in metrics.iter().enumerate() {
        let history = t.history.iter().map(|x| format!("{x:.6}")).collect::<Vec<_>>().join(", ");
        let _ = write!(
            s,
            "    {}: {{\"direction\": \"{}\", \"rel_tolerance\": {}, \"abs_tolerance\": {}, \
             \"baseline\": {:.6}, \"history\": [{}]}}",
            json_string(name),
            t.direction.as_str(),
            t.rel_tolerance,
            t.abs_tolerance,
            t.baseline,
            history
        );
        s.push_str(if i == last { "\n" } else { ",\n" });
    }
    s.push_str("  }\n}\n");
    fs::write(path, s).map_err(|e| format!("{path}: {e}"))
}

fn json_string(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.iter().any(|a| a == "--record");
    let cmd = args.iter().find(|a| !a.starts_with("--")).map(String::as_str);
    match cmd {
        Some("check") | None => {}
        Some(other) => {
            eprintln!("unknown command `{other}`\nusage: trend check [--record]");
            return ExitCode::FAILURE;
        }
    }

    let current = match collect_current() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trend: {e}");
            return ExitCode::FAILURE;
        }
    };
    if current.is_empty() {
        eprintln!(
            "trend: no target/bench_*.json files found — run the experiments first\n\
             (cargo run --release -p aims-bench --bin experiments -- e24 e25 e26 e27 e28)"
        );
        return ExitCode::FAILURE;
    }

    let mut trajectory = match load_trajectory(TRAJECTORY_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trend: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0usize;
    let mut changed = false;
    println!("perf trajectory vs {TRAJECTORY_PATH}:");
    for (spec, value) in &current {
        match trajectory.get_mut(spec.name) {
            None => {
                if record {
                    trajectory.insert(
                        spec.name.to_string(),
                        Tracked {
                            direction: spec.direction,
                            rel_tolerance: spec.rel_tolerance,
                            abs_tolerance: spec.abs_tolerance,
                            baseline: *value,
                            history: vec![*value],
                        },
                    );
                    changed = true;
                    println!("  {:32} {value:>10.4}  NEW (baseline recorded)", spec.name);
                } else {
                    println!("  {:32} {value:>10.4}  untracked (run with --record)", spec.name);
                }
            }
            Some(t) => {
                // The committed tolerances govern — editing the file is
                // how a human loosens or tightens a gate.
                let (ok, bound) = match t.direction {
                    Direction::Higher => {
                        let min_ok = t.baseline * (1.0 - t.rel_tolerance) - t.abs_tolerance;
                        (*value >= min_ok, min_ok)
                    }
                    Direction::Lower => {
                        let max_ok = t.baseline * (1.0 + t.rel_tolerance) + t.abs_tolerance;
                        (*value <= max_ok, max_ok)
                    }
                };
                let improved = match t.direction {
                    Direction::Higher => *value > t.baseline,
                    Direction::Lower => *value < t.baseline,
                };
                let verdict = if !ok {
                    regressions += 1;
                    "REGRESSION"
                } else if improved {
                    "ok (improved)"
                } else {
                    "ok"
                };
                println!(
                    "  {:32} {value:>10.4}  baseline {:>10.4}  bound {:>10.4}  {verdict}",
                    spec.name, t.baseline, bound
                );
                if record {
                    t.history.push(*value);
                    if t.history.len() > HISTORY_CAP {
                        let drop = t.history.len() - HISTORY_CAP;
                        t.history.drain(..drop);
                    }
                    if improved {
                        // Ratchet: improvements become the new floor, so
                        // the gate tracks the best the code has done.
                        t.baseline = *value;
                    }
                    changed = true;
                }
            }
        }
    }

    if changed {
        if let Err(e) = write_trajectory(TRAJECTORY_PATH, &trajectory) {
            eprintln!("trend: {e}");
            return ExitCode::FAILURE;
        }
        println!("updated {TRAJECTORY_PATH}");
    }

    if regressions > 0 {
        eprintln!("trend: {regressions} metric(s) regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("trend: all {} tracked metrics within tolerance", current.len());
        ExitCode::SUCCESS
    }
}
