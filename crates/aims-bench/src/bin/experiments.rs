//! The experiment driver: reproduces every quantitative claim of the AIMS
//! paper (CIDR 2003). See `DESIGN.md` for the claim → experiment index and
//! `EXPERIMENTS.md` for the recorded results.
//!
//! Usage:
//!   cargo run --release -p aims-bench --bin experiments            # all
//!   cargo run --release -p aims-bench --bin experiments -- e9 e13  # some

use aims_bench::{
    exp_acquisition, exp_adhd, exp_chaos, exp_durability, exp_extensions, exp_faults,
    exp_ingest_faults, exp_kernels, exp_online, exp_parallel, exp_propolyne, exp_service,
    exp_storage, exp_system, exp_tier, exp_trace,
};

type Experiment = (&'static str, fn());

const EXPERIMENTS: &[Experiment] = &[
    ("e1", exp_acquisition::e1_sampling_bandwidth),
    ("e2", exp_acquisition::e2_sampling_vs_compression),
    ("e3", exp_acquisition::e3_multibasis),
    ("e4", exp_storage::e4_needed_items_bound),
    ("e5", exp_storage::e5_tensor_allocation),
    ("e6", exp_storage::e6_progressive_retrieval),
    ("e7", exp_propolyne::e7_lazy_transform),
    ("e8", exp_propolyne::e8_exact_aggregates),
    ("e9", exp_propolyne::e9_progressive_accuracy),
    ("e10", exp_propolyne::e10_data_vs_query_approximation),
    ("e11", exp_propolyne::e11_hybrid),
    ("e12", exp_propolyne::e12_batch_sharing),
    ("e13", exp_adhd::e13_adhd_classification),
    ("e14", exp_adhd::e14_adhd_queries),
    ("e15", exp_online::e15_similarity_measures),
    ("e16", exp_online::e16_isolation),
    ("e17", exp_online::e17_svd_from_propolyne),
    ("e18", exp_online::e18_incremental_svd),
    ("e19", exp_system::e19_end_to_end),
    ("e20", exp_extensions::e20_batch_error_norms),
    ("e21", exp_extensions::e21_incremental_recognizer),
    ("e22", exp_extensions::e22_random_projection),
    ("e23", exp_extensions::e23_packet_basis),
    ("e24", exp_parallel::e24_parallel_speedup),
    ("e25", exp_faults::e25_fault_degradation),
    ("e26", exp_ingest_faults::e26_ingest_faults),
    ("e27", exp_service::e27_service_sharing),
    ("e28", exp_trace::e28_tracing_overhead),
    ("e29", exp_kernels::e29_kernel_speed),
    ("e30", exp_durability::e30_durability),
    ("e31", exp_chaos::e31_chaos_qos),
    ("e32", exp_tier::e32_tier),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let selected: Vec<&Experiment> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        let picks: Vec<&Experiment> = EXPERIMENTS
            .iter()
            .filter(|(id, _)| args.iter().any(|a| a == id || a.trim_start_matches("--exp=") == *id))
            .collect();
        if picks.is_empty() {
            eprintln!(
                "unknown experiment selection {:?}; available: {}",
                args,
                EXPERIMENTS.iter().map(|(id, _)| *id).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        }
        picks
    };

    println!("AIMS reproduction — experiment suite ({} selected)", selected.len());
    let report = aims_bench::TelemetryReport::start();
    let (_, wall) = aims_bench::timed("bench.suite", || {
        for (_, run) in &selected {
            run();
        }
    });
    println!("\n{}", "=".repeat(78));
    println!("completed {} experiments in {wall:.1?}", selected.len());
    report.finish("experiment suite (cumulative)");
}
