//! Experiments E1–E3: the acquisition subsystem (paper §3.1, §3.1.1).

use aims_acquisition::multibasis::{select_bases, SelectionParams};
use aims_acquisition::sampling::{sample_stream, SamplingParams, Strategy};
use aims_dsp::dwt::{dwt_full, next_pow2};
use aims_dsp::filters::FilterKind;
use aims_dsp::{adpcm, huffman, quantize};
use aims_sensors::types::MultiStream;

use crate::workloads::mixed_activity_session;

/// E1 — "adaptive sampling requires far less bandwidth (and storage) as
/// compared to the other techniques" (§3.1). Bandwidth of the four
/// strategies on mixed-activity sessions, at three session activity mixes.
pub fn e1_sampling_bandwidth() {
    crate::header("E1", "sampling strategies: bandwidth vs reconstruction error (§3.1)");
    println!(
        "{:>20} {:>16} {:>10} {:>10} {:>10}",
        "session", "strategy", "KB/s", "vs raw", "rel rmse"
    );
    let sessions: [(&str, MultiStream); 3] = [
        ("mostly idle", idle_heavy_session(11)),
        ("mixed", mixed_activity_session(7, 10.0)),
        ("always busy", busy_session(13)),
    ];
    let params = SamplingParams::default();
    for (name, session) in &sessions {
        let duration = session.duration();
        let raw_bps = session.device_size_bytes() as f64 / duration;
        for strategy in Strategy::ALL {
            let r = sample_stream(session, strategy, &params);
            let bps = r.bandwidth_bytes_per_s(duration);
            println!(
                "{:>20} {:>16} {:>10.2} {:>9.1}x {:>10.3}",
                name,
                strategy.name(),
                bps / 1024.0,
                raw_bps / bps,
                r.relative_rmse(session)
            );
        }
    }
    println!("\nshape check: adaptive should show the largest 'vs raw' factor on the");
    println!("idle-heavy and mixed sessions, with all strategies at comparable rmse.");
}

fn idle_heavy_session(seed: u64) -> MultiStream {
    let rig = aims_sensors::glove::CyberGloveRig::default();
    let mut noise = aims_sensors::noise::NoiseSource::seeded(seed);
    let mut s = rig.record_session(20.0, 0.02, &mut noise);
    s.extend(&rig.record_session(5.0, 0.8, &mut noise));
    s.extend(&rig.record_session(5.0, 0.05, &mut noise));
    s
}

fn busy_session(seed: u64) -> MultiStream {
    let rig = aims_sensors::glove::CyberGloveRig::default();
    let mut noise = aims_sensors::noise::NoiseSource::seeded(seed);
    rig.record_session(30.0, 0.9, &mut noise)
}

/// E2 — "adaptive sampling provides superior savings" vs block compression
/// (zip), and "only marginal improvement by combining ADPCM with adaptive
/// sampling" (§3.1).
pub fn e2_sampling_vs_compression() {
    crate::header("E2", "adaptive sampling vs block compression; ADPCM composition (§3.1)");
    let session = mixed_activity_session(3, 10.0);
    let duration = session.duration();
    let kb = |bytes: usize| bytes as f64 / duration / 1024.0;

    let raw = session.device_size_bytes();
    println!("raw stream: {:.2} KB/s", kb(raw));

    // zip stand-in: order-0 Huffman over the raw 8-bit device samples —
    // what zipping the recording file sees (lossless w.r.t. the device).
    let mut zip_bytes = 0usize;
    for c in 0..session.channels() {
        let chan = session.channel(c);
        let q8 = quantize::UniformQuantizer::fit(&chan, 8);
        zip_bytes += huffman::encode(&q8.encode_signal(&chan), 256).size_bytes();
    }

    // ADPCM on the full-rate stream (4 bits/sample vs the device's 8).
    let mut adpcm_bytes = 0usize;
    for c in 0..session.channels() {
        adpcm_bytes += adpcm::encode_auto(&session.channel(c)).size_bytes() / 2;
        // (size_bytes counts f64 headers; halving approximates 8-bit-domain
        // headers. The dominant term is the 4-bit code stream either way.)
    }

    // Adaptive sampling, and ADPCM layered on the kept samples: each kept
    // sample shrinks from the device byte to a 4-bit code.
    let adaptive = sample_stream(&session, Strategy::Adaptive, &SamplingParams::default());
    let adaptive_adpcm_bytes = adaptive.kept_samples / 2 + session.channels() * 8;

    println!("\n{:>36} {:>10} {:>10} {:>14}", "method", "KB/s", "vs raw", "fidelity");
    println!(
        "{:>36} {:>10.2} {:>9.1}x {:>14}",
        "huffman on device bytes (zip)",
        kb(zip_bytes),
        raw as f64 / zip_bytes as f64,
        "lossless"
    );
    println!(
        "{:>36} {:>10.2} {:>9.1}x {:>14}",
        "ADPCM on full-rate stream",
        kb(adpcm_bytes),
        raw as f64 / adpcm_bytes as f64,
        "4-bit quant"
    );
    println!(
        "{:>36} {:>10.2} {:>9.1}x {:>14.4}",
        "adaptive sampling",
        kb(adaptive.bytes),
        raw as f64 / adaptive.bytes as f64,
        adaptive.relative_rmse(&session)
    );
    println!(
        "{:>36} {:>10.2} {:>9.1}x {:>14}",
        "adaptive + ADPCM",
        kb(adaptive_adpcm_bytes),
        raw as f64 / adaptive_adpcm_bytes as f64,
        "~adaptive"
    );
    println!("\nshape check: adaptive beats the zip stand-in decisively; stacking ADPCM");
    println!("on top of adaptive adds only a modest further factor (paper: 'marginal').");
}

/// E3 — multi-basis transformation (§3.1.1): standard basis on the
/// low-cardinality dimensions, wavelets elsewhere, chosen automatically;
/// score by energy compaction of the chosen basis per column.
pub fn e3_multibasis() {
    crate::header("E3", "per-dimension basis selection from the DWPT library (§3.1.1)");
    let session = mixed_activity_session(19, 8.0);
    let n = session.len();
    let columns: Vec<(&str, Vec<f64>)> = vec![
        ("sensor_id", (0..n).map(|i| (i % 5) as f64).collect()),
        ("x (quantized pos)", (0..n).map(|i| ((i / 240) % 4) as f64).collect()),
        ("time", (0..n).map(|i| i as f64).collect()),
        ("joint angle", session.channel(4)),
        ("tracker roll", session.channel(27)),
    ];
    let plan = select_bases(
        &columns.iter().map(|(_, c)| c.clone()).collect::<Vec<_>>(),
        &SelectionParams::default(),
    );

    println!(
        "{:>20} {:>18} {:>22} {:>22}",
        "dimension", "chosen basis", "top-10% energy (std)", "top-10% energy (chosen)"
    );
    for ((name, col), basis) in columns.iter().zip(&plan.per_dim) {
        let mut padded = col.clone();
        padded.resize(next_pow2(col.len()), *col.last().unwrap());
        let compaction = |coeffs: &[f64]| {
            let mut m: Vec<f64> = coeffs.iter().map(|x| x * x).collect();
            let total: f64 = m.iter().sum();
            m.sort_by(|a, b| b.partial_cmp(a).unwrap());
            if total <= 0.0 {
                1.0
            } else {
                m.iter().take((m.len() / 10).max(1)).sum::<f64>() / total
            }
        };
        let std_score = compaction(&padded);
        let chosen_score = match basis {
            aims_acquisition::multibasis::BasisChoice::Standard => std_score,
            aims_acquisition::multibasis::BasisChoice::Wavelet(k)
            | aims_acquisition::multibasis::BasisChoice::WaveletPacket(k, _) => {
                compaction(&dwt_full(&padded, &k.filter()))
            }
        };
        println!("{:>20} {:>18} {:>22.3} {:>22.3}", name, basis.label(), std_score, chosen_score);
    }
    println!("\nshape check: id-like dimensions stay 'standard'; signal dimensions get a");
    println!("wavelet basis whose top-10% coefficients capture nearly all the energy.");
    let _ = FilterKind::ALL; // keep the import meaningful for readers
}
