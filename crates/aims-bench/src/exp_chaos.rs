//! Experiment E31: adaptive QoS under composed chaos — the six-phase
//! seeded drill (storage faults × sensor faults × overload) plus the
//! utility-vs-FIFO round-scheduling comparison.

use std::io::Write;
use std::time::Duration;

use aims::chaos::{run_drill, ChaosConfig};
use aims_dsp::filters::FilterKind;
use aims_propolyne::blockstore::BlockedCoefficients;
use aims_propolyne::cube::WaveletCube;
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;
use aims_service::{Outcome, QosConfig, QueryService, QuerySpec, SchedulerPolicy, ServiceConfig};

use crate::workloads::gaussian_mixture_cube;

const SIDE: usize = 64;
const BLOCK: usize = 16;
const QUERIES: usize = 12;

/// The master seed: `AIMS_CHAOS_SEED` if set (CI pins two values), else
/// the default drill seed.
fn chaos_seed() -> u64 {
    std::env::var("AIMS_CHAOS_SEED").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(4242)
}

/// A heterogeneous session mix: every third query is a broad **batch**
/// report sweeping most of the cube; the rest are narrow **interactive**
/// probes. The class split is where round scheduling has real freedom:
/// a class-blind FIFO sweep over the ascending block union serves the
/// batch reports' huge low-id mass first and makes the interactive
/// probes wait, while the utility scheduler's boost-weighted fair
/// shares tighten interactive bounds first at a bounded cost to batch.
fn mixed_queries() -> Vec<Vec<(usize, usize)>> {
    (0..QUERIES)
        .map(|k| {
            if is_batch(k) {
                let lo = (k * 3) % 24;
                let hi = (lo + 38).min(SIDE - 1);
                let lo2 = (k * 5) % 20;
                let hi2 = (lo2 + 34).min(SIDE - 1);
                vec![(lo, hi), (lo2, hi2)]
            } else {
                let lo = (7 * k + 13) % (SIDE - 8);
                let lo2 = (11 * k + 29) % (SIDE - 8);
                vec![(lo, lo + 6), (lo2, lo2 + 6)]
            }
        })
        .collect()
}

/// Whether workload query `k` is the broad batch class (the rest are
/// narrow interactive probes).
fn is_batch(k: usize) -> bool {
    k.is_multiple_of(3)
}

/// Each session's starting error bound `Σ_b sqrt(w²_b · E_b)` — the
/// same per-block Cauchy–Schwarz number the service computes at submit,
/// rebuilt here from the public blockstore so the experiment can
/// normalize bound trajectories (relative progress) without private API.
fn initial_bounds(
    engine: &Propolyne,
    blocked: &BlockedCoefficients,
    queries: &[Vec<(usize, usize)>],
) -> Vec<f64> {
    let bs = blocked.block_size();
    queries
        .iter()
        .map(|ranges| {
            let p = engine.prepare(&RangeSumQuery::count(ranges.clone()));
            let plan = blocked.plan_blocks(&p);
            let mut w2 = vec![0.0; plan.len()];
            let mut k = 0usize;
            for (&i, &w) in p.indices.iter().zip(p.weights.iter()) {
                while plan[k] != i / bs {
                    k += 1;
                }
                w2[k] += w * w;
            }
            plan.iter().zip(&w2).map(|(&b, &s)| (s * blocked.block_energy(b)).sqrt()).sum()
        })
        .collect()
}

/// Runs the mixed-class workload under one scheduler policy with
/// shedding disabled (identical answers by construction) and returns
/// each session's relative bound-trajectory area — Σ over its per-round
/// progress frames of `bound / initial_bound`, the "remaining
/// uncertainty" the utility scheduler allocates against. Lower = faster
/// refinement. Also returns the answer bits.
fn bound_auc(
    policy: SchedulerPolicy,
    cube: &WaveletCube,
    queries: &[Vec<(usize, usize)>],
    initial: &[f64],
) -> (Vec<f64>, Vec<u64>) {
    let svc = QueryService::new(
        cube.clone(),
        BLOCK,
        ServiceConfig {
            queue_capacity: QUERIES,
            max_batch: QUERIES,
            round_blocks: 8,
            round_pause: Duration::from_micros(300),
            // Gather the whole cohort before the first round — without
            // the warmup, early rounds race the submission loop, late
            // admits catch up free from a warm cache, and the measured
            // areas flip between discrete modes run to run.
            admission_warmup: Duration::from_millis(25),
            qos: QosConfig { policy, shedding: false, ..QosConfig::default() },
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<_> = queries
        .iter()
        .enumerate()
        .map(|(k, r)| {
            let spec = if is_batch(k) {
                QuerySpec::batch(r.clone())
            } else {
                QuerySpec::interactive(r.clone())
            };
            svc.submit(spec).expect("queue sized for workload")
        })
        .collect();
    let mut saucs = Vec::new();
    let mut bits = Vec::new();
    for (h, &initial) in handles.into_iter().zip(initial) {
        let (trace, outcome) = h.collect();
        let mut sauc = 0.0;
        for r in &trace {
            sauc += r.error_bound / initial.max(f64::MIN_POSITIVE);
        }
        saucs.push(sauc);
        match outcome {
            Outcome::Done(r) => bits.push(r.estimate.to_bits()),
            other => panic!("undisturbed workload must complete, got {other:?}"),
        }
    }
    svc.shutdown();
    (saucs, bits)
}

/// E31 — adaptive QoS and composed chaos. Part 1 runs the six-phase
/// seeded drill (no panics, no lost queries, monotone bounds, shed ⇒
/// best-so-far, full drain recovery). Part 2 compares utility-driven
/// round scheduling against FIFO on a mixed batch/interactive workload
/// with shedding off: answers must be bit-identical, and the utility
/// policy must reduce the class-weighted error bound faster (smaller
/// boost-weighted trajectory area). Records `target/bench_chaos.json`.
pub fn e31_chaos_qos() {
    crate::header("E31", "adaptive QoS: composed chaos drill + utility-vs-FIFO scheduling");

    // Part 1 — the composed drill.
    let cfg = ChaosConfig { seed: chaos_seed(), ..ChaosConfig::default() };
    let (report, drill_elapsed) = crate::timed("e31.drill", || run_drill(&cfg));
    println!(
        "\ncomposed drill (seed {}, {:.0} ms):",
        report.seed,
        drill_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "{:>16} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7} {:>6} {:>9}",
        "phase", "submit", "accept", "reject", "done", "shed", "expire", "degr", "p99 ms"
    );
    for p in &report.phases {
        println!(
            "{:>16} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7} {:>6} {:>9.2}",
            p.name,
            p.submitted,
            p.accepted,
            p.rejected,
            p.done,
            p.shed,
            p.expired,
            p.degraded,
            p.p99_ms
        );
    }
    println!(
        "recovery {:.1} ms | shed fraction {:.3} | p99 overload {:.2} ms",
        report.recovery_ms, report.shed_fraction, report.p99_overload_ms
    );
    let violations = report.violations();
    assert!(
        report.passed(),
        "chaos drill (seed {}) violated {} invariant(s):\n  {}",
        report.seed,
        violations.len(),
        violations.join("\n  ")
    );
    assert!(report.shed_fraction > 0.0, "flood phases never engaged shedding");

    // Part 2 — utility vs FIFO round scheduling, shedding off.
    let cube = gaussian_mixture_cube(SIDE).transform(&FilterKind::Db4.filter());
    let engine = Propolyne::new(cube.clone());
    let blocked = BlockedCoefficients::new(engine.cube().coeffs(), BLOCK);
    let queries = mixed_queries();
    let initial = initial_bounds(&engine, &blocked, &queries);
    let expected: Vec<u64> = queries
        .iter()
        .map(|ranges| {
            let p = engine.prepare(&RangeSumQuery::count(ranges.clone()));
            engine.evaluate_prepared(&p).to_bits()
        })
        .collect();

    let (fifo_sauc, fifo_bits) = bound_auc(SchedulerPolicy::Fifo, &cube, &queries, &initial);
    let (utility_sauc, utility_bits) =
        bound_auc(SchedulerPolicy::Utility, &cube, &queries, &initial);
    assert_eq!(fifo_bits, expected, "FIFO answers must match serial evaluation");
    assert_eq!(utility_bits, expected, "utility answers must match serial evaluation");

    // The gated metric is the *class-weighted* bound area — interactive
    // sessions weighted by the service's own interactive boost — i.e.
    // the utility objective the scheduler declares. The per-class areas
    // are reported alongside so the trade is visible: interactive
    // tightens faster, batch pays a bounded premium.
    let boost = QosConfig::default().interactive_boost;
    let class_area = |saucs: &[f64], batch: bool| -> f64 {
        saucs.iter().enumerate().filter(|&(k, _)| is_batch(k) == batch).map(|(_, &s)| s).sum()
    };
    let fifo_int = class_area(&fifo_sauc, false);
    let fifo_bat = class_area(&fifo_sauc, true);
    let utility_int = class_area(&utility_sauc, false);
    let utility_bat = class_area(&utility_sauc, true);
    let fifo_auc = boost * fifo_int + fifo_bat;
    let utility_auc = boost * utility_int + utility_bat;
    let auc_ratio = fifo_auc / utility_auc.max(f64::MIN_POSITIVE);

    println!("\n{:>28} {:>10} {:>10}", "bound area", "fifo", "utility");
    println!("{:>28} {:>10.1} {:>10.1}", "interactive class", fifo_int, utility_int);
    println!("{:>28} {:>10.1} {:>10.1}", "batch class", fifo_bat, utility_bat);
    println!(
        "{:>28} {:>10.1} {:>10.1}",
        format!("weighted (boost {boost:.0})"),
        fifo_auc,
        utility_auc
    );
    println!(
        "{:>28} {:>10} sessions {}",
        "fifo/utility weighted",
        crate::times(auc_ratio),
        QUERIES
    );
    assert!(
        auc_ratio >= 1.0,
        "utility scheduling must not refine the weighted workload slower than FIFO \
         (ratio {auc_ratio:.3})"
    );
    println!("\nanswers bit-identical across policies; drill invariants all held");

    // Machine-readable record: the drill report with the scheduling
    // comparison folded in at top level for the trend gate.
    let drill_json = report.to_json();
    let json = format!(
        "{},\"fifo_auc\":{:.3},\"utility_auc\":{:.3},\"auc_ratio\":{:.4},\
         \"fifo_interactive_auc\":{:.3},\"utility_interactive_auc\":{:.3}}}\n",
        &drill_json[..drill_json.len() - 1],
        fifo_auc,
        utility_auc,
        auc_ratio,
        fifo_int,
        utility_int,
    );
    let path = std::path::Path::new("target").join("bench_chaos.json");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(json.as_bytes());
        println!("[recorded {}]", path.display());
    }
}
