//! Experiment E28: the observability tax — end-to-end tracing and
//! per-query profiling must be effectively free when disabled and cheap
//! when enabled.
//!
//! Three claims, each asserted:
//! 1. Untraced and traced runs of the same 128-query workload return
//!    bit-identical answers (tracing never perturbs evaluation).
//! 2. The traced run's wall time stays within a small factor of the
//!    untraced run (overhead < 5% on a quiet host; the number is
//!    recorded for the `trend` gate either way).
//! 3. A traced query on a seeded faulty device yields a `QueryProfile`
//!    whose block/retry/degraded attribution exactly matches the
//!    device's own fault schedule, and the flight recorder exports
//!    Chrome trace JSON that parses.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aims_dsp::filters::FilterKind;
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;
use aims_service::{Outcome, QueryService, QuerySpec, ServiceConfig};
use aims_storage::device::RetryPolicy;
use aims_storage::faults::{FaultPlan, FaultyDevice};
use aims_telemetry::{global_recorder, TraceId};

use crate::workloads::gaussian_mixture_cube;

const SIDE: usize = 256;
const BLOCK: usize = 256;
const QUERIES: usize = 128;
const REPEATS: usize = 9;

/// The E27 overlapping workload, reused so the tracing tax is measured
/// on the serving path it actually protects.
fn overlapping_queries() -> Vec<Vec<(usize, usize)>> {
    (0..QUERIES)
        .map(|k| {
            let lo = (k * 2) % 40;
            let hi = (lo + 80).min(SIDE - 1);
            let lo2 = (k * 3) % 32;
            let hi2 = (lo2 + 72).min(SIDE - 1);
            vec![(lo, hi), (lo2, hi2)]
        })
        .collect()
}

/// Runs the workload once on a fresh service, returning wall time; every
/// answer is asserted bit-identical to `expected`.
fn run_workload(cube: &aims_propolyne::WaveletCube, expected: &[u64], traced: bool) -> Duration {
    let svc = Arc::new(QueryService::new(
        cube.clone(),
        BLOCK,
        ServiceConfig {
            max_batch: QUERIES,
            round_blocks: 128,
            cache_blocks: 512,
            ..ServiceConfig::default()
        },
    ));
    let queries = overlapping_queries();
    let start = Instant::now();
    // Submit everything up front (admission is non-blocking; the queue
    // is sized for the whole batch), then drain the sessions in order.
    // Keeping the client single-threaded removes QUERIES thread spawns of
    // scheduling noise from each measurement — the concurrency under
    // test lives in the service's scheduler and compute pool.
    let mut sessions = Vec::new();
    for (k, ranges) in queries.into_iter().enumerate() {
        let mut spec = QuerySpec::interactive(ranges);
        if traced {
            spec = spec.traced();
        }
        sessions.push((k, svc.submit(spec).expect("queue sized for the batch")));
    }
    for (k, handle) in sessions {
        match handle.wait() {
            Outcome::Done(r) => assert_eq!(
                r.estimate.to_bits(),
                expected[k],
                "query {k} (traced={traced}) diverged from serial"
            ),
            other => panic!("query {k} did not complete: {other:?}"),
        }
    }
    let elapsed = start.elapsed();
    svc.shutdown();
    elapsed
}

/// Runs the workload one query at a time through a fresh service,
/// returning wall time. Serial execution makes the run fully
/// deterministic — each query sees the same plan, rounds, cache state,
/// and (when traced) event count on every repeat, unlike the concurrent
/// batch where admission timing reshuffles the shared scan. This is the
/// measurement the overhead gate uses.
fn run_serial(cube: &aims_propolyne::WaveletCube, expected: &[u64], traced: bool) -> Duration {
    let svc = QueryService::new(
        cube.clone(),
        BLOCK,
        ServiceConfig { round_blocks: 16, cache_blocks: 512, ..ServiceConfig::default() },
    );
    let queries = overlapping_queries();
    let start = Instant::now();
    for (k, ranges) in queries.into_iter().enumerate() {
        let mut spec = QuerySpec::interactive(ranges);
        if traced {
            spec = spec.traced();
        }
        match svc.submit(spec).expect("serial submits never fill the queue").wait() {
            Outcome::Done(r) => assert_eq!(
                r.estimate.to_bits(),
                expected[k],
                "serial query {k} (traced={traced}) diverged"
            ),
            other => panic!("serial query {k} did not complete: {other:?}"),
        }
    }
    let elapsed = start.elapsed();
    svc.shutdown();
    elapsed
}

/// E28 — tracing overhead and profile fidelity: the 128-query serving
/// workload untraced vs fully traced (median of 9 each, interleaved),
/// bit-identity asserted on every answer; then one traced query on a
/// seeded `FaultyDevice` whose profile is checked field-by-field against
/// the device's own fault schedule. Exports `target/trace_e28.json`
/// (Chrome trace-event format) and records `target/bench_trace.json`.
pub fn e28_tracing_overhead() {
    crate::header("E28", "end-to-end tracing: zero-cost disabled, <5% overhead enabled");

    let cube = gaussian_mixture_cube(SIDE).transform(&FilterKind::Db4.filter());
    let engine = Propolyne::new(cube.clone());
    let expected: Vec<u64> = overlapping_queries()
        .iter()
        .map(|ranges| {
            let p = engine.prepare(&RangeSumQuery::count(ranges.clone()));
            engine.evaluate_prepared(&p).to_bits()
        })
        .collect();

    // Claim 1 — the concurrent batch, traced and untraced: every answer
    // is asserted bit-identical inside run_workload. The wall times are
    // reported but not gated: admission timing reshuffles the shared
    // scan between runs, so the concurrent comparison is noisy by
    // construction. These runs also warm the allocator and thread pool.
    let concurrent_untraced = run_workload(&cube, &expected, false);
    let concurrent_traced = run_workload(&cube, &expected, true);

    // Claim 2 — the overhead gate, on the *serial* workload: identical
    // deterministic work per run, so the only difference between the
    // variants is the tracing itself. Interleave the variants so
    // slow-clock drift hits both alike, and use the median of each
    // side: one descheduled run (common in shared containers) shifts a
    // min- or mean-based estimate but leaves the median untouched.
    run_serial(&cube, &expected, false);
    run_serial(&cube, &expected, true);
    let mut untraced_runs = Vec::with_capacity(REPEATS);
    let mut traced_runs = Vec::with_capacity(REPEATS);
    let mut pair_ratios = Vec::with_capacity(REPEATS);
    let written_before = global_recorder().written();
    for _ in 0..REPEATS {
        let u = run_serial(&cube, &expected, false);
        let t = run_serial(&cube, &expected, true);
        untraced_runs.push(u);
        traced_runs.push(t);
        // Back-to-back pairs see the same host conditions, so the
        // per-pair ratio cancels drift that medians taken over the
        // whole session would not.
        pair_ratios.push(t.as_secs_f64() / u.as_secs_f64().max(1e-9));
    }
    let events_per_run = (global_recorder().written() - written_before) / REPEATS as u64;
    let median = |runs: &mut Vec<Duration>| {
        runs.sort();
        runs[runs.len() / 2]
    };
    let med_untraced = median(&mut untraced_runs);
    let med_traced = median(&mut traced_runs);
    pair_ratios.sort_by(f64::total_cmp);
    let overhead = pair_ratios[pair_ratios.len() / 2] - 1.0;

    // Profile fidelity on seeded faulty storage: predict per-block costs
    // from the fault schedule before any read consumes it, then check
    // the served profile field-by-field.
    let fault_plan = FaultPlan {
        seed: 4242,
        read_error_rate: 0.25,
        bit_flip_rate: 0.0,
        torn_write_rate: 0.0,
        dead_fraction: 0.12,
        latency: Duration::ZERO,
        latency_rate: 0.0,
    };
    let svc = QueryService::on_device(
        cube.clone(),
        BLOCK,
        ServiceConfig { retry: RetryPolicy::with_retries(8), ..ServiceConfig::default() },
        |bs, nb| FaultyDevice::with_plan(bs, nb, fault_plan),
    );
    let ranges = vec![(4, 99), (16, 111)];
    let prepared = svc.engine().prepare(&RangeSumQuery::count(ranges.clone()));
    // Same coefficients + same block size ⇒ same plan as the service's
    // own device-backed store.
    let plan_store =
        aims_propolyne::blockstore::BlockedCoefficients::new(engine.cube().coeffs(), BLOCK);
    let plan_blocks = plan_store.plan_blocks(&prepared);
    let (mut want_read, mut want_retries, mut want_degraded) = (0u64, 0u64, 0u64);
    for &b in &plan_blocks {
        if svc.device().is_dead(b) {
            want_degraded += 1;
        } else {
            want_read += 1;
            want_retries += svc.device().planned_read_failures(b) as u64;
        }
    }
    let (_, outcome, profile) =
        svc.submit(QuerySpec::interactive(ranges).traced()).unwrap().collect_profiled();
    assert!(matches!(outcome, Outcome::Done(_)), "faulty-device query must still finish");
    let p = profile.expect("traced query must yield a profile");
    assert_eq!(p.blocks_read, want_read, "blocks_read diverged from device ground truth");
    assert_eq!(p.retries, want_retries, "retries diverged from device ground truth");
    assert_eq!(p.degraded_blocks, want_degraded, "degraded diverged from device ground truth");
    assert_eq!(
        p.blocks_read + p.blocks_shared + p.degraded_blocks,
        plan_blocks.len() as u64,
        "attribution must cover the whole plan"
    );
    let fetch_events = global_recorder()
        .events_for(TraceId(p.trace_id))
        .iter()
        .filter(|e| e.name == "storage.fetch")
        .count();
    svc.shutdown();

    // Export the flight recorder as Chrome trace JSON and prove the
    // artifact is loadable (well-formed JSON with a traceEvents array).
    let chrome = global_recorder().export_chrome_trace();
    let parsed = aims_telemetry::json::parse(&chrome).expect("chrome export must parse");
    let n_events =
        parsed.get("traceEvents").and_then(|v| v.as_array()).map(|a| a.len()).unwrap_or(0);
    assert!(n_events > 0, "traced runs must leave events in the flight recorder");
    let trace_path = std::path::Path::new("target").join("trace_e28.json");
    match std::fs::File::create(&trace_path).and_then(|mut f| f.write_all(chrome.as_bytes())) {
        Ok(()) => {}
        Err(e) => println!("(could not write {}: {e})", trace_path.display()),
    }

    println!("{:>28} {:>14}", "metric", "value");
    println!("{:>28} {:>14}", "queries per run", QUERIES);
    println!(
        "{:>28} {:>14}",
        "concurrent untraced",
        format!("{:.1} ms", concurrent_untraced.as_secs_f64() * 1e3)
    );
    println!(
        "{:>28} {:>14}",
        "concurrent traced",
        format!("{:.1} ms", concurrent_traced.as_secs_f64() * 1e3)
    );
    println!(
        "{:>28} {:>14}",
        "serial untraced (median/9)",
        format!("{:.1} ms", med_untraced.as_secs_f64() * 1e3)
    );
    println!(
        "{:>28} {:>14}",
        "serial traced (median/9)",
        format!("{:.1} ms", med_traced.as_secs_f64() * 1e3)
    );
    println!("{:>28} {:>14}", "tracing overhead", format!("{:+.1}%", overhead * 100.0));
    println!("{:>28} {:>14}", "events per traced run", events_per_run);
    println!("{:>28} {:>14}", "profile blocks read", p.blocks_read);
    println!("{:>28} {:>14}", "profile retries", p.retries);
    println!("{:>28} {:>14}", "profile degraded", p.degraded_blocks);
    println!("{:>28} {:>14}", "fetch events recorded", fetch_events);
    println!("{:>28} {:>14}", "chrome trace events", n_events);

    assert!(overhead < 0.05, "tracing overhead must stay under 5%: got {:+.1}%", overhead * 100.0);

    println!("\nshape check: traced and untraced answers are bit-identical (asserted");
    println!("per query above); the traced profile matches the seeded fault schedule");
    println!("field-by-field; the exported chrome trace parses and is non-empty.");

    // Machine-readable record for the driver / CI trend tracking.
    let json = format!(
        concat!(
            "{{\"experiment\":\"e28_trace\",\"queries\":{},",
            "\"untraced_s\":{:.6},\"traced_s\":{:.6},\"overhead\":{:.4},",
            "\"profile_ground_truth\":true,\"chrome_events\":{},",
            "\"bit_identical\":true}}\n"
        ),
        QUERIES,
        med_untraced.as_secs_f64(),
        med_traced.as_secs_f64(),
        overhead,
        n_events,
    );
    let path = std::path::Path::new("target").join("bench_trace.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nrecorded {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
}
