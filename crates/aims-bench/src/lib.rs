//! Experiment harness for the AIMS reproduction.
//!
//! The CIDR 2003 paper is a system-design paper: its "evaluation" is a set
//! of quantitative claims rather than numbered result tables. Every claim
//! is reproduced by one experiment here (E1–E19, plus extension
//! experiments E20–E30; see `DESIGN.md` for the
//! claim → experiment index). `cargo run --release -p aims-bench --bin
//! experiments` prints the full table set that `EXPERIMENTS.md` records;
//! the Criterion benches under `benches/` cover the performance-shaped
//! claims.

pub mod exp_acquisition;
pub mod exp_adhd;
pub mod exp_chaos;
pub mod exp_durability;
pub mod exp_extensions;
pub mod exp_faults;
pub mod exp_ingest_faults;
pub mod exp_kernels;
pub mod exp_online;
pub mod exp_parallel;
pub mod exp_propolyne;
pub mod exp_service;
pub mod exp_storage;
pub mod exp_system;
pub mod exp_tier;
pub mod exp_trace;
pub mod workloads;

use std::time::{Duration, Instant};

use aims_telemetry::{global, Snapshot};

/// Prints a section header for one experiment.
pub fn header(id: &str, claim: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{id}: {claim}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as `x.xx×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Times `f` under a telemetry span, so the elapsed time lands in the
/// `<name>.ns` histogram of the global registry (with parent/child
/// nesting) *and* is returned for inline experiment output. This replaces
/// the hand-rolled `Instant::now()` pairs the experiment modules used to
/// carry.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let result = {
        let _span = aims_telemetry::span!(name);
        f()
    };
    (result, start.elapsed())
}

/// Scoped view of what an experiment recorded into the global telemetry
/// registry: construct with [`TelemetryReport::start`] before the work,
/// call [`TelemetryReport::finish`] after it to print the counters that
/// moved plus every histogram/gauge (cumulative), as an aligned table.
pub struct TelemetryReport {
    before: Snapshot,
}

impl TelemetryReport {
    /// Marks the starting point.
    pub fn start() -> Self {
        TelemetryReport { before: global().snapshot() }
    }

    /// Snapshot of the activity since [`TelemetryReport::start`].
    pub fn delta(&self) -> Snapshot {
        global().snapshot().delta_since(&self.before)
    }

    /// Prints the delta as a table under a `-- telemetry: <title> --`
    /// banner.
    pub fn finish(self, title: &str) {
        let delta = self.delta();
        if delta.is_empty() {
            return;
        }
        println!("\n-- telemetry: {title} --");
        print!("{}", delta.render_table());
    }
}
