//! Experiment harness for the AIMS reproduction.
//!
//! The CIDR 2003 paper is a system-design paper: its "evaluation" is a set
//! of quantitative claims rather than numbered result tables. Every claim
//! is reproduced by one experiment here (E1–E19, plus extension
//! experiments E20–E23; see `DESIGN.md` for the
//! claim → experiment index). `cargo run --release -p aims-bench --bin
//! experiments` prints the full table set that `EXPERIMENTS.md` records;
//! the Criterion benches under `benches/` cover the performance-shaped
//! claims.

pub mod exp_acquisition;
pub mod exp_adhd;
pub mod exp_extensions;
pub mod exp_online;
pub mod exp_propolyne;
pub mod exp_storage;
pub mod exp_system;
pub mod workloads;

/// Prints a section header for one experiment.
pub fn header(id: &str, claim: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{id}: {claim}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as `x.xx×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}
