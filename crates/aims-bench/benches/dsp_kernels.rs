//! Microbenchmarks of the DSP substrate: FFT, DWT, DWPT best-basis,
//! ADPCM and Huffman — the kernels every AIMS subsystem sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use aims_dsp::dwpt::{CostFunction, WaveletPacketTree};
use aims_dsp::dwt::{dwt_full, idwt_full};
use aims_dsp::fft::fft_real;
use aims_dsp::filters::FilterKind;
use aims_dsp::{adpcm, huffman, quantize};

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / 100.0;
            (t * 6.1).sin() * 20.0 + (t * 0.7).cos() * 8.0 + ((i * 2654435761) % 13) as f64 * 0.1
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for log_n in [10u32, 14] {
        let n = 1usize << log_n;
        let x = signal(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| fft_real(x));
        });
    }
    g.finish();
}

fn bench_dwt(c: &mut Criterion) {
    let mut g = c.benchmark_group("dwt_full");
    let n = 1usize << 14;
    let x = signal(n);
    for kind in [FilterKind::Haar, FilterKind::Db4, FilterKind::Db8] {
        let f = kind.filter();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(format!("{kind:?}")), &x, |b, x| {
            b.iter(|| dwt_full(x, &f));
        });
    }
    // Round trip.
    let f = FilterKind::Db4.filter();
    let coeffs = dwt_full(&x, &f);
    g.bench_function("idwt_db4", |b| b.iter(|| idwt_full(&coeffs, &f)));
    g.finish();
}

fn bench_dwpt_best_basis(c: &mut Criterion) {
    let x = signal(1 << 10);
    c.bench_function("dwpt_best_basis_1024x6", |b| {
        b.iter(|| {
            let tree = WaveletPacketTree::decompose(&x, &FilterKind::Db4.filter(), 6);
            tree.best_basis(CostFunction::ShannonEntropy)
        });
    });
}

fn bench_codecs(c: &mut Criterion) {
    let x = signal(1 << 14);
    let mut g = c.benchmark_group("codecs");
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("adpcm_encode", |b| b.iter(|| adpcm::encode_auto(&x)));
    let enc = adpcm::encode_auto(&x);
    g.bench_function("adpcm_decode", |b| b.iter(|| adpcm::decode(&enc)));
    let q = quantize::UniformQuantizer::fit(&x, 10);
    let codes = q.encode_signal(&x);
    g.bench_function("huffman_encode", |b| b.iter(|| huffman::encode(&codes, 1024)));
    let henc = huffman::encode(&codes, 1024);
    g.bench_function("huffman_decode", |b| b.iter(|| huffman::decode(&henc)));
    g.finish();
}

criterion_group!(benches, bench_fft, bench_dwt, bench_dwpt_best_basis, bench_codecs);
criterion_main!(benches);
