//! E4-adjacent performance bench: query I/O under the three allocation
//! strategies, measured as wall time through the full store + buffer-pool
//! stack (paper §3.2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aims_storage::buffer::BufferPool;
use aims_storage::store::{AllocKind, WaveletStore};

fn signal(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 + 11) % 101) as f64 - 50.0).collect()
}

fn bench_point_queries(c: &mut Criterion) {
    let n = 1 << 16;
    let x = signal(n);
    let mut g = c.benchmark_group("store_point_queries");
    for (name, kind) in [
        ("tiling", AllocKind::TreeTiling),
        ("sequential", AllocKind::Sequential),
        ("random", AllocKind::Random(7)),
    ] {
        let store = WaveletStore::from_signal(&x, 64, kind);
        g.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, store| {
            b.iter(|| {
                let mut pool = BufferPool::new(8);
                let mut acc = 0.0;
                for t in (0..n).step_by(701) {
                    acc += store.point_value(t, &mut pool);
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_range_sums(c: &mut Criterion) {
    let n = 1 << 16;
    let x = signal(n);
    let mut g = c.benchmark_group("store_range_sums");
    for (name, kind) in [("tiling", AllocKind::TreeTiling), ("sequential", AllocKind::Sequential)] {
        let store = WaveletStore::from_signal(&x, 64, kind);
        g.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, store| {
            b.iter(|| {
                let mut pool = BufferPool::new(8);
                let mut acc = 0.0;
                for k in 0..50 {
                    let a = (k * 997) % (n / 2);
                    acc += store.range_sum(a, a + n / 3, &mut pool);
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_load(c: &mut Criterion) {
    let x = signal(1 << 14);
    c.bench_function("store_load_16k_tiling", |b| {
        b.iter(|| WaveletStore::from_signal(&x, 64, AllocKind::TreeTiling));
    });
}

criterion_group!(benches, bench_point_queries, bench_range_sums, bench_load);
criterion_main!(benches);
