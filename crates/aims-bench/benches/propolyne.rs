//! E7/E9-adjacent performance benches: the lazy wavelet transform vs the
//! dense transform, and full ProPolyne query evaluation (paper §3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aims_dsp::dwt::dwt_full;
use aims_dsp::filters::FilterKind;
use aims_dsp::poly::Polynomial;
use aims_propolyne::cube::DataCube;
use aims_propolyne::engine::Propolyne;
use aims_propolyne::lazy::lazy_transform;
use aims_propolyne::query::RangeSumQuery;

fn bench_lazy_vs_dense(c: &mut Criterion) {
    let filter = FilterKind::Db4.filter();
    let poly = Polynomial::from_coeffs(vec![1.0, 0.5]);
    let mut g = c.benchmark_group("query_transform");
    for log_n in [12u32, 16, 20] {
        let n = 1usize << log_n;
        let (a, b) = (n / 7, n - n / 5);
        g.bench_with_input(BenchmarkId::new("lazy", n), &n, |bch, &n| {
            bch.iter(|| lazy_transform(n, a, b, &poly, &filter));
        });
        if log_n <= 16 {
            g.bench_with_input(BenchmarkId::new("dense", n), &n, |bch, &n| {
                let q: Vec<f64> = (0..n)
                    .map(|i| if i >= a && i <= b { poly.eval(i as f64) } else { 0.0 })
                    .collect();
                bch.iter(|| dwt_full(&q, &filter));
            });
        }
    }
    g.finish();
}

fn test_cube(n: usize) -> DataCube {
    let mut cube = DataCube::zeros(&[n, n]);
    let mut state = 17u64;
    for v in cube.values_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state % 9) as f64;
    }
    cube
}

fn bench_query_evaluation(c: &mut Criterion) {
    let cube = test_cube(256);
    let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
    let count = RangeSumQuery::count(vec![(31, 210), (17, 199)]);
    let sum = RangeSumQuery::sum_poly(vec![(31, 210), (17, 199)], 0, Polynomial::monomial(1));

    let mut g = c.benchmark_group("propolyne_eval_256x256");
    g.bench_function("count_exact", |b| b.iter(|| engine.evaluate(&count)));
    g.bench_function("sum_exact", |b| b.iter(|| engine.evaluate(&sum)));
    g.bench_function("count_progressive", |b| b.iter(|| engine.progressive(&count)));
    g.bench_function("count_scan_baseline", |b| b.iter(|| count.eval_scan(&cube)));
    g.finish();
}

fn bench_cube_population(c: &mut Criterion) {
    let cube = test_cube(256);
    let mut g = c.benchmark_group("cube_transform_256x256");
    g.sample_size(20);
    for kind in [FilterKind::Haar, FilterKind::Db4] {
        let f = kind.filter();
        g.bench_with_input(BenchmarkId::from_parameter(format!("{kind:?}")), &cube, |b, cube| {
            b.iter(|| cube.transform(&f));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lazy_vs_dense, bench_query_evaluation, bench_cube_population);
criterion_main!(benches);
