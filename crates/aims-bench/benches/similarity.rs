//! E15/E18-adjacent performance benches: the online similarity measures
//! and incremental SVD — these run inside the real-time loop (paper §3.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aims_linalg::{IncrementalSvd, Matrix, Svd, Vector};
use aims_sensors::asl::AslVocabulary;
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;
use aims_stream::baselines::SimilarityMeasure;
use aims_stream::signature::SvdSignature;

fn bench_similarity_measures(c: &mut Criterion) {
    let vocab = AslVocabulary::standard(CyberGloveRig::default());
    let mut noise = NoiseSource::seeded(9);
    let a = vocab.instance(0, &mut noise).stream;
    let b = vocab.instance(3, &mut noise).stream;

    let mut g = c.benchmark_group("similarity_pairwise");
    for measure in SimilarityMeasure::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(measure.name()),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| measure.similarity(a, b));
            },
        );
    }
    g.finish();
}

fn bench_signature_construction(c: &mut Criterion) {
    let window = Matrix::from_fn(28, 64, |r, t| ((r * 7 + t * 3) % 23) as f64 * 0.4);
    c.bench_function("svd_signature_28x64", |b| {
        b.iter(|| SvdSignature::from_matrix(&window, 5));
    });
}

fn bench_incremental_vs_batch_svd(c: &mut Criterion) {
    let sensors = 28usize;
    let frames = 128usize;
    let data = Matrix::from_fn(sensors, frames, |r, t| {
        ((r + 1) as f64 * (t as f64 * 0.07).sin()) + ((r * t) % 11) as f64 * 0.1
    });

    let mut g = c.benchmark_group("svd_28x128");
    g.bench_function("batch_jacobi", |b| b.iter(|| Svd::compute(&data)));
    g.bench_function("incremental_append_4", |b| {
        // Steady-state incremental: 4 rank updates on a primed tracker.
        let mut primed = IncrementalSvd::new(sensors, 8);
        for t in 0..frames - 4 {
            primed.append_column(&data.column(t));
        }
        b.iter(|| {
            let mut inc = primed.clone();
            for t in frames - 4..frames {
                let col: Vector = (0..sensors).map(|r| data[(r, t)]).collect();
                inc.append_column(&col);
            }
            inc.singular_values()[0]
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_similarity_measures,
    bench_signature_construction,
    bench_incremental_vs_batch_svd
);
criterion_main!(benches);
