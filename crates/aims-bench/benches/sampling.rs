//! E1-adjacent performance bench: cost of the four sampling strategies on
//! a 28-channel session (the acquisition subsystem must keep up with the
//! live stream, paper §3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use aims_acquisition::sampling::{sample_stream, SamplingParams, Strategy};
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;

fn bench_strategies(c: &mut Criterion) {
    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(1);
    let session = rig.record_session(10.0, 0.5, &mut noise);
    let params = SamplingParams::default();

    let mut g = c.benchmark_group("sampling_strategies");
    g.sample_size(10);
    g.throughput(Throughput::Elements((session.len() * session.channels()) as u64));
    for strategy in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(strategy.name()), &session, |b, s| {
            b.iter(|| sample_stream(s, strategy, &params));
        });
    }
    g.finish();
}

fn bench_nyquist_estimators(c: &mut Criterion) {
    use aims_dsp::spectrum::{estimate_nyquist_rate, FmaxEstimator};
    let signal: Vec<f64> =
        (0..4096).map(|i| (i as f64 * 0.05).sin() * 10.0 + (i as f64 * 0.4).sin()).collect();
    let mut g = c.benchmark_group("nyquist_estimators");
    for (name, est) in [
        ("dft", FmaxEstimator::Dft),
        ("autocorr", FmaxEstimator::Autocorrelation),
        ("mse", FmaxEstimator::MinSquareError),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &signal, |b, s| {
            b.iter(|| estimate_nyquist_rate(s, 100.0, est, 0.95));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_nyquist_estimators);
criterion_main!(benches);
