//! Acquisition → hot tier, end to end.
//!
//! Drives the real ingest pipelines — the double-buffered recorder and
//! the supervised faulty-rig path — into a [`TieredStore`] and checks
//! the feed invariants: every source position lands in the store exactly
//! once (stored frames bit-identical, dropped frames as counted
//! zero-filled holes), and a fed store compacts and queries just like
//! one built from the same samples directly.

use aims_acquisition::ingest::{IngestConfig, SupervisedIngest};
use aims_acquisition::recorder::{DoubleBufferRecorder, QueuePolicy, RecorderConfig};
use aims_dsp::filters::FilterKind;
use aims_exec::ThreadPool;
use aims_sensors::types::{MultiStream, StreamSpec};
use aims_sensors::{FaultySensorRig, SensorFaultPlan};
use aims_tier::{
    compact, feed_outcome, feed_recording, range_sum_on, record_into_store, TierConfig, TieredStore,
};

const SEG: usize = 64;
const FRAMES: usize = 5 * SEG + 13;

fn cfg() -> TierConfig {
    TierConfig { segment_len: SEG, block_size: 16, max_segments: 32, filter: FilterKind::Haar }
}

/// A strictly nonzero seeded source so a zero in the store can only be a
/// fill value, never a sample.
fn source() -> MultiStream {
    let mut state = 0xFEEDu64;
    let mut stream = MultiStream::new(StreamSpec::anonymous(2, 100.0));
    for _ in 0..FRAMES {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let a = (state % 997) as f64 / 5.0 + 1.0;
        stream.push(&[a, -a]);
    }
    stream
}

#[test]
fn record_into_store_is_lossless_with_ample_buffer() {
    let src = source();
    let store = TieredStore::new_mem(cfg());
    let recorder = DoubleBufferRecorder::new(RecorderConfig {
        buffer_frames: 4 * FRAMES,
        batch_size: 32,
        store_latency_us: 0,
    });
    let (stats, report) = record_into_store(&recorder, &src, QueuePolicy::DropNewest, 0, &store);
    assert_eq!(stats.dropped_frames, 0, "ample buffer must not drop");
    assert_eq!(report.samples, FRAMES);
    assert_eq!(report.holes, 0);
    assert_eq!(store.len(), FRAMES);
    let serial = ThreadPool::new(1);
    let snap = store.snapshot();
    for t in (0..FRAMES).step_by(17).chain([FRAMES - 1]) {
        let got = range_sum_on(&snap, t, t, &serial);
        assert_eq!(got.to_bits(), src.frame(t)[0].to_bits(), "point {t}");
    }
}

#[test]
fn record_into_store_zero_fills_dropped_frames() {
    let src = source();
    let store = TieredStore::new_mem(cfg());
    // A tiny buffer and slow storage thread invite interrupt-side drops;
    // whether any happen is scheduling-dependent, so assert the
    // invariants that must hold either way.
    let recorder = DoubleBufferRecorder::new(RecorderConfig {
        buffer_frames: 4,
        batch_size: 4,
        store_latency_us: 40,
    });
    let (stats, report) = record_into_store(&recorder, &src, QueuePolicy::DropNewest, 0, &store);
    assert_eq!(report.samples, FRAMES);
    assert_eq!(report.holes, stats.dropped_frames);
    assert_eq!(store.len(), FRAMES, "every source position occupied exactly once");
    let serial = ThreadPool::new(1);
    let snap = store.snapshot();
    let mut stored = 0usize;
    let mut holes = 0usize;
    for t in 0..FRAMES {
        let got = range_sum_on(&snap, t, t, &serial);
        if got == 0.0 {
            holes += 1;
        } else {
            assert_eq!(got.to_bits(), src.frame(t)[0].to_bits(), "point {t}");
            stored += 1;
        }
    }
    assert_eq!(stored, stats.stored_frames);
    assert_eq!(holes, stats.dropped_frames);
}

#[test]
fn feed_recording_places_frames_at_source_indices() {
    let src = source();
    let recorder = DoubleBufferRecorder::new(RecorderConfig {
        buffer_frames: 8,
        batch_size: 8,
        store_latency_us: 20,
    });
    let (stored, indices, _) = recorder.record_with(&src, QueuePolicy::DropOldest);
    let store = TieredStore::new_mem(cfg());
    let report = feed_recording(&store, &stored, &indices, FRAMES, 1);
    assert_eq!(report.samples, FRAMES);
    assert_eq!(report.holes, FRAMES - indices.len());
    assert_eq!(store.len(), FRAMES);
    let serial = ThreadPool::new(1);
    let snap = store.snapshot();
    for (k, &idx) in indices.iter().enumerate().step_by(7) {
        let got = range_sum_on(&snap, idx, idx, &serial);
        assert_eq!(got.to_bits(), stored.frame(k)[1].to_bits(), "stored frame {k} at {idx}");
    }
}

#[test]
fn supervised_rig_to_tiered_store_end_to_end() {
    // Clean signal → faulty wire → supervised repair → tiered store →
    // compaction → progressive query, the whole pipeline.
    let src = source();
    let rig = FaultySensorRig::new(SensorFaultPlan::dropout(0x51EA, 0.05));
    let wire = rig.transmit(&src);
    let ingest = SupervisedIngest::new(IngestConfig::default());
    let outcome = ingest.ingest(src.spec(), &wire);

    let store = TieredStore::new_mem(cfg());
    let report = feed_outcome(&store, &outcome, 0);
    assert_eq!(report.samples, outcome.stream.len());
    assert_eq!(store.len(), outcome.stream.len());

    // Compact everything; queries must stay bit-identical to a store fed
    // the same channel directly and compacted the same way.
    let direct = TieredStore::new_mem(cfg());
    direct.push_slice(&outcome.stream.channel(0));
    let serial = ThreadPool::new(1);
    store.seal_open();
    direct.seal_open();
    compact::drain(&store, &serial);
    compact::drain(&direct, &serial);
    let (snap, dsnap) = (store.snapshot(), direct.snapshot());
    assert!(snap.segments().iter().all(|s| s.historical));
    let n = store.len();
    for (a, b) in [(0, n - 1), (0, 0), (n / 3, 2 * n / 3), (SEG - 1, SEG)] {
        let got = range_sum_on(&snap, a, b, &serial);
        let want = range_sum_on(&dsnap, a, b, &serial);
        assert_eq!(got.to_bits(), want.to_bits(), "range [{a}, {b}]");
    }
}
