//! The concurrent ingest + compact + query drill.
//!
//! One thread ingests a seeded signal in ragged chunks, the background
//! [`Compactor`] swaps sealed segments into the wavelet tier the whole
//! time, and two query threads hammer progressive range sums against
//! live snapshots. The invariants:
//!
//! - every snapshot partitions the store: segment offsets are contiguous
//!   and each sample lives in exactly one tier (no double count, no loss
//!   across a swap);
//! - every progressive step's bound is monotone non-increasing and
//!   covers the true error *of that snapshot*;
//! - once ingest stops and compaction drains, the store answers
//!   bit-identically to a single-pass serial oracle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aims_dsp::filters::FilterKind;
use aims_exec::ThreadPool;
use aims_tier::{
    compact, range_sum_on, Compactor, CompactorConfig, TierConfig, TieredProgressive, TieredStore,
};

const SEG: usize = 128;
const TOTAL: usize = 40 * SEG + 37;

fn cfg() -> TierConfig {
    TierConfig { segment_len: SEG, block_size: 32, max_segments: 64, filter: FilterKind::Haar }
}

fn signal() -> Vec<f64> {
    let mut state = 0xC0FFEEu64;
    (0..TOTAL)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1999) as f64 / 7.0 - 140.0
        })
        .collect()
}

#[test]
fn concurrent_ingest_compact_query_drill() {
    let data = signal();
    let store = TieredStore::new_mem(cfg());
    let compactor = Compactor::spawn(
        store.clone(),
        CompactorConfig {
            max_per_cycle: 2,
            idle_sleep: Duration::from_micros(200),
            ..Default::default()
        },
    );
    let ingesting = Arc::new(AtomicBool::new(true));

    std::thread::scope(|scope| {
        // Ingest in ragged chunks.
        {
            let store = store.clone();
            let ingesting = Arc::clone(&ingesting);
            let data = &data;
            scope.spawn(move || {
                let mut fed = 0usize;
                let mut chunk = 13usize;
                while fed < data.len() {
                    let take = chunk.min(data.len() - fed);
                    store.push_slice(&data[fed..fed + take]);
                    fed += take;
                    chunk = chunk % 97 + 7;
                    std::thread::yield_now();
                }
                store.seal_open();
                ingesting.store(false, Ordering::Release);
            });
        }
        // Two query threads against live snapshots.
        for q in 0..2usize {
            let store = store.clone();
            let ingesting = Arc::clone(&ingesting);
            scope.spawn(move || {
                let pool = ThreadPool::new(1);
                let mut rounds = 0usize;
                while ingesting.load(Ordering::Acquire) || rounds < 5 {
                    let _guard = store.begin_query();
                    let snap = store.snapshot();
                    // Snapshot partition invariant.
                    let mut expect_start = 0usize;
                    for s in snap.segments() {
                        assert_eq!(s.start, expect_start, "segment offsets must be contiguous");
                        expect_start += s.len;
                    }
                    assert_eq!(expect_start, snap.len(), "tiers must cover every sample once");
                    if snap.is_empty() {
                        std::thread::yield_now();
                        continue;
                    }
                    let n = snap.len();
                    let (a, b) = if q == 0 { (0, n - 1) } else { (n / 3, 2 * n / 3 + 1) };
                    let exact = range_sum_on(&snap, a, b, &pool);
                    let mut prog = TieredProgressive::new(&snap, a, b, &pool);
                    let mut prev = f64::INFINITY;
                    loop {
                        let step = prog.current();
                        assert!(step.bound <= prev, "bound grew: {prev} -> {}", step.bound);
                        let scale = 1.0f64.max(exact.abs());
                        assert!(
                            (step.estimate - exact).abs() <= step.bound + 1e-9 * scale,
                            "estimate outside bound"
                        );
                        prev = step.bound;
                        if prog.done() {
                            break;
                        }
                        prog.step(4);
                    }
                    assert_eq!(prog.drain().estimate.to_bits(), exact.to_bits());
                    rounds += 1;
                }
            });
        }
    });

    // Drain the backlog and stop the compactor.
    let deadline = Instant::now() + Duration::from_secs(20);
    while store.stats().sealed_raw > 0 {
        assert!(Instant::now() < deadline, "compactor failed to drain backlog");
        std::thread::sleep(Duration::from_millis(1));
    }
    compactor.stop();
    assert_eq!(store.len(), TOTAL, "no sample lost");

    // Fully drained: bit-identical to the single-pass serial oracle.
    let serial = ThreadPool::new(1);
    let oracle = TieredStore::new_mem(cfg());
    oracle.push_slice(&data);
    oracle.seal_open();
    compact::drain(&oracle, &serial);
    let (snap, osnap) = (store.snapshot(), oracle.snapshot());
    assert!(snap.segments().iter().all(|s| s.historical));
    for (a, b) in [(0, TOTAL - 1), (0, 0), (TOTAL / 2, TOTAL - 1), (SEG - 1, 3 * SEG)] {
        let got = range_sum_on(&snap, a, b, &serial);
        let want = range_sum_on(&osnap, a, b, &serial);
        assert_eq!(got.to_bits(), want.to_bits(), "range [{a}, {b}]");
    }
}
