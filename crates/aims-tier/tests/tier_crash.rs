//! Crash-matrix extension for the tiered store (rides on PR 8's seeded
//! [`CrashPlan`] machinery).
//!
//! Two sweeps under pinned seeds:
//!
//! - **Crash mid-compaction** (historical device dies at step k, for a
//!   sweep of k): on reopen, every segment whose install missed its
//!   commit point is still served **raw** — acked ingest is never
//!   replaced by a half-written wavelet form — while committed installs
//!   survive. Either way the reopened store holds every sample, and
//!   after the backlog re-drains it answers bit-identically to a
//!   single-pass oracle.
//! - **Crash mid-ingest** (hot device dies at step k): on reopen the
//!   store holds at least every sample acknowledged by a completed
//!   `sync()`, and each recovered sample reads back bit-identical.

use std::path::PathBuf;

use aims_dsp::filters::FilterKind;
use aims_exec::ThreadPool;
use aims_storage::{CrashPlan, DurabilityMode, FileDeviceOptions};
use aims_tier::{compact, range_sum_on, TierConfig, TieredStore};

const SEG: usize = 64;
const BLOCK: usize = 16;
const TOTAL: usize = 4 * SEG + 21;
const SEED: u64 = 0x7153;

fn cfg() -> TierConfig {
    TierConfig { segment_len: SEG, block_size: BLOCK, max_segments: 8, filter: FilterKind::Haar }
}

fn opts(crash: CrashPlan) -> FileDeviceOptions {
    FileDeviceOptions {
        mode: DurabilityMode::Always,
        crash,
        checkpoint_bytes: 1 << 20,
        ..Default::default()
    }
}

fn signal() -> Vec<f64> {
    let mut state = SEED;
    (0..TOTAL)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1283) as f64 / 3.0 - 200.0
        })
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aims-tier-crash-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The serial single-pass oracle every recovered store must converge to.
fn oracle_snapshot() -> aims_tier::TierSnapshot {
    let oracle = TieredStore::new_mem(cfg());
    oracle.push_slice(&signal());
    oracle.seal_open();
    compact::drain(&oracle, &ThreadPool::new(1));
    oracle.snapshot()
}

#[test]
fn crash_mid_compaction_keeps_raw_segments() {
    let data = signal();
    let serial = ThreadPool::new(1);
    let osnap = oracle_snapshot();
    let mut kept_raw_cases = 0usize;
    let mut committed_cases = 0usize;

    for step in (0..60u64).step_by(3) {
        let dir = fresh_dir(&format!("hist-{step}"));
        // Phase 1: ingest cleanly (no crash armed), seal everything.
        {
            let store = TieredStore::create_durable(&dir, cfg(), opts(CrashPlan::none())).unwrap();
            store.push_slice(&data);
            store.seal_open();
            drop(store);
        }
        // Phase 2: reopen with the historical device armed; compact until
        // the device dies (or the backlog drains).
        {
            let store = TieredStore::open_durable_with(
                &dir,
                cfg(),
                opts(CrashPlan::none()),
                opts(CrashPlan::at(SEED, step)),
            )
            .unwrap();
            compact::drain(&store, &serial);
            drop(store);
        }
        // Phase 3: reopen clean; acked ingest must be intact.
        let store = TieredStore::open_durable(&dir, cfg(), opts(CrashPlan::none())).unwrap();
        assert_eq!(store.len(), TOTAL, "step {step}: samples lost across crash");
        let snap = store.snapshot();
        let raw = snap.segments().iter().filter(|s| !s.historical).count();
        let hist = snap.segments().len() - raw;
        if raw > 0 {
            kept_raw_cases += 1;
        }
        if hist > 0 {
            committed_cases += 1;
        }
        // Every recovered sample is still queryable and correct: raw
        // segments answer exactly, so spot-check points bit-identically.
        for &t in &[0usize, SEG - 1, SEG, TOTAL - 1] {
            let got = range_sum_on(&snap, t, t, &serial);
            if snap.segments().iter().any(|s| t >= s.start && t < s.start + s.len && !s.historical)
            {
                assert_eq!(got.to_bits(), data[t].to_bits(), "step {step}: raw point {t}");
            } else {
                let want = range_sum_on(&osnap, t, t, &serial);
                assert_eq!(got.to_bits(), want.to_bits(), "step {step}: hist point {t}");
            }
        }
        // Re-drain and demand oracle bit-identity.
        compact::drain(&store, &serial);
        let snap = store.snapshot();
        assert!(snap.segments().iter().all(|s| s.historical));
        for (a, b) in [(0, TOTAL - 1), (SEG / 2, 3 * SEG), (0, 0)] {
            let got = range_sum_on(&snap, a, b, &serial);
            let want = range_sum_on(&osnap, a, b, &serial);
            assert_eq!(got.to_bits(), want.to_bits(), "step {step}: range [{a}, {b}]");
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    // The sweep must exercise both sides of the commit point.
    assert!(kept_raw_cases > 0, "sweep never crashed before an install commit");
    assert!(committed_cases > 0, "sweep never let an install commit");
}

#[test]
fn crash_mid_ingest_preserves_acked_samples() {
    let data = signal();
    let serial = ThreadPool::new(1);

    for step in [5u64, 11, 23, 41, 67, 101] {
        let dir = fresh_dir(&format!("hot-{step}"));
        {
            let store = TieredStore::create_durable(&dir, cfg(), opts(CrashPlan::none())).unwrap();
            store.sync();
            drop(store);
        }
        // Reopen with the hot device armed; push with periodic syncs and
        // track the acknowledged frontier (samples covered by the last
        // sync that completed before the crash).
        let mut acked = 0usize;
        {
            let store = TieredStore::open_durable_with(
                &dir,
                cfg(),
                opts(CrashPlan::at(SEED ^ step, step)),
                opts(CrashPlan::none()),
            )
            .unwrap();
            let mut pushed = 0usize;
            for chunk in data.chunks(17) {
                store.push_slice(chunk);
                pushed += chunk.len();
                store.sync();
                if store.devices_crashed().0 {
                    break;
                }
                acked = pushed;
            }
            drop(store);
        }
        // Recovery: everything acked survives, bit-identical.
        let store = TieredStore::open_durable(&dir, cfg(), opts(CrashPlan::none())).unwrap();
        let recovered = store.len();
        assert!(recovered >= acked, "step {step}: recovered {recovered} samples < acked {acked}");
        let snap = store.snapshot();
        for t in (0..acked).step_by(29).chain(acked.checked_sub(1)) {
            let got = range_sum_on(&snap, t, t, &serial);
            assert_eq!(got.to_bits(), data[t].to_bits(), "step {step}: point {t}");
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
