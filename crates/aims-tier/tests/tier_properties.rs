//! The tiered store's core correctness claims, property-tested.
//!
//! - A store that ingested incrementally (arbitrary chunk sizes,
//!   compaction interleaved at arbitrary points, transform pools of
//!   1/2/8 threads) answers **bit-identically** to a store built from
//!   the same signal in one pass and compacted serially. Compaction
//!   changes where data lives, never what a query returns.
//! - A hot-only (uncompacted) store answers bit-identically to naive
//!   raw summation — the recent tier is exact, not approximate.
//! - Progressive evaluation delivers monotone non-increasing bounds,
//!   every intermediate estimate lands within its bound of the exact
//!   answer, and the drained estimate *is* the exact answer.

use proptest::prelude::*;

use aims_dsp::filters::FilterKind;
use aims_exec::ThreadPool;
use aims_storage::MemDevice;
use aims_tier::{compact, range_sum_on, TierConfig, TieredProgressive, TieredStore};

const SEG: usize = 64;
const BLOCK: usize = 16;

fn cfg() -> TierConfig {
    TierConfig { segment_len: SEG, block_size: BLOCK, max_segments: 32, filter: FilterKind::Haar }
}

/// The oracle: the whole signal in one pass, sealed, compacted serially.
fn oracle(signal: &[f64]) -> TieredStore<MemDevice> {
    let store = TieredStore::new_mem(cfg());
    store.push_slice(signal);
    store.seal_open();
    compact::drain(&store, &ThreadPool::new(1));
    store
}

fn signal_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..=(SEG * 6))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Incremental ingest + interleaved compaction on pools 1/2/8 ==
    /// single-pass build, bit for bit.
    #[test]
    fn compacted_store_bit_identical_to_single_pass_oracle(
        signal in signal_strategy(),
        chunks in prop::collection::vec(1usize..=96, 1..=24),
        compact_every in 1usize..=4,
    ) {
        let oracle = oracle(&signal);
        let oracle_snap = oracle.snapshot();
        let serial = ThreadPool::new(1);
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let store = TieredStore::new_mem(cfg());
            let mut fed = 0usize;
            for (i, chunk) in chunks.iter().cycle().enumerate() {
                if fed >= signal.len() {
                    break;
                }
                let take = (*chunk).min(signal.len() - fed);
                store.push_slice(&signal[fed..fed + take]);
                fed += take;
                if i % compact_every == 0 {
                    compact::run_once(&store, &pool, 2);
                }
            }
            store.seal_open();
            compact::drain(&store, &pool);
            let snap = store.snapshot();
            prop_assert_eq!(snap.len(), signal.len());
            // Every segment ended historical, and both stores agree on
            // every queried range to the last bit.
            prop_assert!(snap.segments().iter().all(|s| s.historical));
            for (a, b) in ranges(signal.len()) {
                let got = range_sum_on(&snap, a, b, &serial);
                let want = range_sum_on(&oracle_snap, a, b, &serial);
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "range [{}, {}]: {} vs {}", a, b, got, want
                );
            }
        }
    }

    /// The hot tier is exact: an uncompacted store matches raw summation
    /// bit for bit. (The reference groups by segment, matching the
    /// store's documented one-partial-per-segment fold order.)
    #[test]
    fn hot_tier_is_exact(signal in signal_strategy()) {
        let store = TieredStore::new_mem(cfg());
        store.push_slice(&signal);
        let snap = store.snapshot();
        let serial = ThreadPool::new(1);
        for (a, b) in ranges(signal.len()) {
            let naive = grouped_sum(&signal, a, b);
            let got = range_sum_on(&snap, a, b, &serial);
            prop_assert_eq!(got.to_bits(), naive.to_bits());
        }
    }

    /// Progressive merge: bounds shrink monotonically, cover the true
    /// error at every step, and converge to the exact answer.
    #[test]
    fn progressive_bounds_monotone_and_sound(
        signal in signal_strategy(),
        compacted in 0usize..=6,
    ) {
        let store = TieredStore::new_mem(cfg());
        store.push_slice(&signal);
        store.seal_open();
        let serial = ThreadPool::new(1);
        compact::run_once(&store, &serial, compacted);
        let snap = store.snapshot();
        for (a, b) in ranges(signal.len()) {
            let exact = range_sum_on(&snap, a, b, &serial);
            let mut prog = TieredProgressive::new(&snap, a, b, &serial);
            let mut prev = f64::INFINITY;
            let mut step = prog.current();
            loop {
                prop_assert!(step.bound <= prev, "bound grew: {} -> {}", prev, step.bound);
                let scale = 1.0f64.max(exact.abs());
                prop_assert!(
                    (step.estimate - exact).abs() <= step.bound + 1e-9 * scale,
                    "estimate {} vs exact {} outside bound {}",
                    step.estimate, exact, step.bound
                );
                prev = step.bound;
                if prog.done() {
                    break;
                }
                step = prog.step(3);
            }
            let last = prog.drain();
            prop_assert_eq!(last.estimate.to_bits(), exact.to_bits());
            prop_assert_eq!(last.bound.to_bits(), 0.0f64.to_bits());
        }
    }
}

/// Raw-sum reference with the store's fold order: one partial per
/// segment window, partials folded in ascending segment order.
fn grouped_sum(signal: &[f64], a: usize, b: usize) -> f64 {
    let mut acc = 0.0;
    let mut start = 0usize;
    while start < signal.len() {
        let end = (start + SEG).min(signal.len());
        if a < end && b >= start {
            let la = a.max(start);
            let lb = b.min(end - 1);
            let mut partial = 0.0;
            for &v in &signal[la..=lb] {
                partial += v;
            }
            acc += partial;
        }
        start = end;
    }
    acc
}

/// A deterministic fan of query ranges covering segment interiors,
/// boundaries, and the full span.
fn ranges(n: usize) -> Vec<(usize, usize)> {
    let last = n - 1;
    let mut out = vec![(0, last), (0, 0), (last, last), (last / 2, last), (0, last / 2)];
    if n > SEG {
        out.push((SEG - 1, SEG.min(last)));
        out.push((SEG / 2, (2 * SEG).min(last)));
    }
    out
}
