//! Tiered ingest engine: the missing middle between acquisition and the
//! queryable wavelet store (ROADMAP item 3).
//!
//! AIMS acquires immersidata continuously, but the paper's query side
//! (ProPolyne, §3.3) wants wavelet-transformed data. This crate closes
//! the loop with a two-tier design lifted from single-node high-velocity
//! ingest systems (PAPERS.md):
//!
//! - **Hot tier** ([`store`]): time-partitioned, append-only raw
//!   segments. Ingest appends samples; each completed device block is
//!   written through a WAL-backed [`aims_storage::FileDevice`] so acked
//!   ingest survives crashes; segments seal when full (or on demand for
//!   age-based policies). Queries over hot segments are **exact** — raw
//!   summation, zero error.
//! - **Background compactor** ([`compact`]): a dedicated thread claims
//!   sealed segments, full-depth wavelet-transforms them with the
//!   lifting kernels, and atomically swaps them into the historical
//!   store via a crash-ordered manifest protocol ([`layout`]) —
//!   coefficients → historical manifest → checkpoint → raw retirement.
//!   A crash mid-compaction keeps the raw segment authoritative.
//! - **Unified queries** ([`query`]): one range sum fans out across both
//!   tiers — recent-exact plus historical-progressive — and merges under
//!   a single monotone Cauchy–Schwarz bound. Queries run against
//!   [`store::TierSnapshot`]s, so a concurrent segment swap can never
//!   double- or zero-count a sample.
//! - **Acquisition wiring** ([`feed`]): the double-buffered recorder and
//!   supervised ingest stream straight into the hot tier, dropped-frame
//!   holes zero-filled and counted.
//!
//! The central correctness claim, property-tested in
//! `tests/tier_properties.rs`: a store that ingested incrementally and
//! compacted in the background answers **bit-identically** to one built
//! from the same signal in a single pass — compaction changes *where*
//! data lives, never *what* a query returns.

pub mod compact;
pub mod feed;
pub mod layout;
pub mod query;
pub mod store;

pub use compact::{drain, run_once, transform_segment, Compactor, CompactorConfig};
pub use feed::{feed_outcome, feed_recording, record_into_store, FeedReport};
pub use layout::TierConfig;
pub use query::{range_sum, range_sum_on, TierStep, TieredProgressive};
pub use store::{
    QueryGuard, SegCoeffs, SegmentView, TierMedia, TierSnapshot, TierStats, TieredStore,
};
