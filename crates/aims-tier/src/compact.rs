//! The background compactor: sealed raw segments → blocked wavelet form.
//!
//! A dedicated thread repeatedly claims sealed segments (oldest first),
//! wavelet-transforms them on an [`aims_exec::ThreadPool`] — the PR 7
//! lifting kernels, one segment per pool task — and installs the results
//! through the store's crash-ordered swap protocol. The loop is
//! rate-limited two ways: at most `max_per_cycle` segments per cycle, and
//! when foreground queries are in flight ([`TieredStore::queries_inflight`])
//! the cycle degrades to one segment, so compaction I/O never starves
//! interactive reads — the same degradation-over-starvation stance as the
//! QoS tier ladder.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aims_dsp::dwt::dwt_full_inplace;
use aims_dsp::kernel::DwtScratch;
use aims_exec::ThreadPool;
use aims_telemetry::global;

use crate::layout::TierConfig;
use crate::store::{SegCoeffs, TierMedia, TieredStore};

/// Compactor tuning.
#[derive(Clone, Copy, Debug)]
pub struct CompactorConfig {
    /// Segments compacted per cycle when the foreground is idle.
    pub max_per_cycle: usize,
    /// Sleep between cycles that found nothing to do.
    pub idle_sleep: Duration,
    /// Degrade to one segment per cycle while queries are in flight.
    pub yield_to_queries: bool,
    /// Transform pool width (0 = `aims_exec::configured_threads()`).
    pub threads: usize,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        CompactorConfig {
            max_per_cycle: 4,
            idle_sleep: Duration::from_millis(1),
            yield_to_queries: true,
            threads: 0,
        }
    }
}

/// Wavelet-transforms one sealed segment: zero-pad to `segment_len`,
/// full-depth DWT in place, per-block energy catalog.
pub fn transform_segment(data: &[f64], cfg: &TierConfig) -> SegCoeffs {
    let filter = cfg.filter.filter();
    let mut buf = data.to_vec();
    buf.resize(cfg.segment_len, 0.0);
    let mut scratch = DwtScratch::new();
    dwt_full_inplace(&mut buf, &filter, &mut scratch);
    SegCoeffs::from_coeffs(buf, data.len(), cfg.block_size)
}

/// One compaction cycle: claim → transform (on `pool`) → install,
/// ascending segment order. Returns how many segments were actually
/// installed — a refused install (historical device down) leaves its
/// segment raw and re-claimable, and stops the cycle so [`drain`]
/// terminates instead of spinning against a dead device.
pub fn run_once<D: TierMedia>(store: &TieredStore<D>, pool: &ThreadPool, max: usize) -> usize {
    let claimed = store.claim_sealed(max);
    if claimed.is_empty() {
        return 0;
    }
    let t = global();
    let start = Instant::now();
    let cfg = store.config();
    let transformed: Vec<SegCoeffs> =
        pool.par_map(&claimed, |(_, data)| transform_segment(data, &cfg));
    let mut bytes = 0u64;
    let mut installed = 0usize;
    let mut it = claimed.iter().zip(transformed);
    for ((seg, data), coeffs) in it.by_ref() {
        if !store.install(*seg, coeffs) {
            t.counter("tier.compaction.refused").inc();
            break;
        }
        bytes += (data.len() * 8) as u64;
        installed += 1;
    }
    // Release any claims left behind by an aborted cycle.
    for ((seg, _), _) in it {
        store.release_claim(*seg);
    }
    t.counter("tier.compaction.runs").inc();
    t.counter("tier.compaction.ns").add(start.elapsed().as_nanos() as u64);
    t.counter("tier.compaction.bytes").add(bytes);
    installed
}

/// Drains the whole raw backlog (tests, shutdown). Returns segments
/// compacted.
pub fn drain<D: TierMedia>(store: &TieredStore<D>, pool: &ThreadPool) -> usize {
    let mut n = 0;
    loop {
        let c = run_once(store, pool, usize::MAX / 2);
        if c == 0 {
            return n;
        }
        n += c;
    }
}

/// The background compaction thread. Dropping without [`Compactor::stop`]
/// also shuts the thread down (stop-flag + join).
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl Compactor {
    /// Spawns the compaction loop over a clone of `store`.
    pub fn spawn<D: TierMedia + Send + 'static>(
        store: TieredStore<D>,
        cfg: CompactorConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let threads = if cfg.threads == 0 { aims_exec::configured_threads() } else { cfg.threads };
        let handle = std::thread::Builder::new()
            .name("aims-tier-compactor".into())
            .spawn(move || {
                let pool = ThreadPool::new(threads);
                let mut compacted = 0u64;
                while !flag.load(Ordering::Acquire) {
                    let max = if cfg.yield_to_queries && store.queries_inflight() > 0 {
                        1
                    } else {
                        cfg.max_per_cycle.max(1)
                    };
                    let n = run_once(&store, &pool, max);
                    compacted += n as u64;
                    if n == 0 {
                        std::thread::sleep(cfg.idle_sleep);
                    }
                }
                compacted
            })
            .expect("spawn compactor thread");
        Compactor { stop, handle: Some(handle) }
    }

    /// Stops the loop and returns how many segments it compacted.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.handle.take().map(|h| h.join().expect("compactor panicked")).unwrap_or(0)
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}
