//! Unified query evaluation over a [`TierSnapshot`].
//!
//! A range sum `Σ f(t), t ∈ [a, b]` fans out across the snapshot's
//! segments. Hot segments answer **exactly** by summing raw samples.
//! Historical segments answer in the wavelet domain: orthonormal DWTs
//! preserve inner products, so the segment's contribution is
//! `⟨coeffs, W·1_[la,lb]⟩` where the weight vector is the DWT of the
//! local range indicator — computed in O(S) by the same lifting kernels
//! that built the coefficients.
//!
//! Determinism contract (the oracle bit-identity tests lean on this):
//! every evaluation computes one partial per segment — raw samples or
//! `w·c` products accumulated in ascending index order — and folds the
//! partials in ascending segment order into a single accumulator. Two
//! stores whose snapshots hold bit-identical payloads therefore return
//! bit-identical sums, whether the partials were computed serially or
//! fanned out on a pool.

use aims_dsp::dwt::dwt_full_inplace;
use aims_dsp::kernel::DwtScratch;
use aims_exec::ThreadPool;
use aims_telemetry::global;

use crate::store::{SnapKind, TierSnapshot};

/// The DWT of the indicator vector of local range `[la, lb]` within a
/// segment of `seg_len` slots.
pub(crate) fn segment_weights(
    seg_len: usize,
    la: usize,
    lb: usize,
    filter: &aims_dsp::filters::WaveletFilter,
    scratch: &mut DwtScratch,
) -> Vec<f64> {
    let mut w = vec![0.0; seg_len];
    w[la..=lb].fill(1.0);
    dwt_full_inplace(&mut w, filter, scratch);
    w
}

/// One segment's exact contribution to `Σ f(t), t ∈ [a, b]` (global
/// coordinates), or `None` when the segment doesn't overlap the range.
fn segment_partial(
    seg: &crate::store::SnapSeg,
    a: usize,
    b: usize,
    cfg: &crate::layout::TierConfig,
) -> Option<(f64, usize)> {
    let end = seg.start + seg.len;
    if b < seg.start || a >= end || seg.len == 0 {
        return None;
    }
    let la = a.max(seg.start) - seg.start;
    let lb = (b.min(end - 1)) - seg.start;
    match &seg.kind {
        SnapKind::Hot(data) => {
            let mut acc = 0.0;
            for &v in &data[la..=lb] {
                acc += v;
            }
            Some((acc, lb - la + 1))
        }
        SnapKind::Hist(coeffs) => {
            let filter = cfg.filter.filter();
            let mut scratch = DwtScratch::new();
            let w = segment_weights(cfg.segment_len, la, lb, &filter, &mut scratch);
            let mut acc = 0.0;
            for (wi, ci) in w.iter().zip(coeffs.coeffs.iter()) {
                if *wi != 0.0 {
                    acc += wi * ci;
                }
            }
            Some((acc, 0))
        }
    }
}

/// Exact range sum over `[a, b]` (inclusive, clamped to the snapshot),
/// fanning segment partials out on `pool`. Bit-identical for every pool
/// width, including serial.
pub fn range_sum_on(snap: &TierSnapshot, a: usize, b: usize, pool: &ThreadPool) -> f64 {
    if snap.is_empty() || a > b || a >= snap.len() {
        return 0.0;
    }
    let b = b.min(snap.len() - 1);
    let cfg = snap.cfg;
    let partials = pool.par_map(&snap.segs, |seg| segment_partial(seg, a, b, &cfg));
    let mut acc = 0.0;
    let mut hot_rows = 0usize;
    let mut hot_segs = 0usize;
    let mut hist_segs = 0usize;
    for (seg, p) in snap.segs.iter().zip(partials) {
        if let Some((v, rows)) = p {
            acc += v;
            hot_rows += rows;
            match seg.kind {
                SnapKind::Hot(_) => hot_segs += 1,
                SnapKind::Hist(_) => hist_segs += 1,
            }
        }
    }
    let t = global();
    t.counter("tier.query.hot_rows").add(hot_rows as u64);
    if hot_segs > 0 && hist_segs > 0 {
        t.counter("tier.query.merged").inc();
    }
    acc
}

/// [`range_sum_on`] with a throwaway serial pool.
pub fn range_sum(snap: &TierSnapshot, a: usize, b: usize) -> f64 {
    range_sum_on(snap, a, b, &ThreadPool::new(1))
}

/// One unconsumed historical block's stake in a progressive evaluation.
struct BlockTerm {
    /// Cauchy–Schwarz gain `sqrt(Σw²_block · Σc²_block)` — how much of
    /// the bound consuming this block removes.
    gain: f64,
    /// The block's exact contribution `Σ w·c` (ascending index order).
    partial: f64,
}

/// Progressive two-tier evaluation: the hot tier answers exactly up
/// front; historical blocks are consumed most-important-first, each step
/// tightening one monotone Cauchy–Schwarz bound over everything not yet
/// consumed. Once every block is consumed the estimate is replaced by the
/// canonical exact evaluation, so a drained progressive query converges
/// bit-identically to [`range_sum_on`].
pub struct TieredProgressive {
    /// Exact hot-tier contribution (zero-error from step 0).
    hot_part: f64,
    /// Raw samples the hot tier summed.
    pub hot_rows: usize,
    items: Vec<BlockTerm>,
    consumed: usize,
    hist_estimate: f64,
    bound: f64,
    exact: f64,
}

/// One delivered refinement step.
#[derive(Clone, Copy, Debug)]
pub struct TierStep {
    /// Estimate after this step (hot exact + consumed historical blocks).
    pub estimate: f64,
    /// Monotone Cauchy–Schwarz bound on `|estimate − exact|`.
    pub bound: f64,
    /// Historical blocks consumed so far.
    pub blocks_consumed: usize,
}

impl TieredProgressive {
    /// Plans a progressive evaluation of `Σ f(t), t ∈ [a, b]` against the
    /// snapshot.
    pub fn new(snap: &TierSnapshot, a: usize, b: usize, pool: &ThreadPool) -> Self {
        let exact = range_sum_on(snap, a, b, pool);
        if snap.is_empty() || a > b || a >= snap.len() {
            return TieredProgressive {
                hot_part: 0.0,
                hot_rows: 0,
                items: Vec::new(),
                consumed: 0,
                hist_estimate: 0.0,
                bound: 0.0,
                exact,
            };
        }
        let b = b.min(snap.len() - 1);
        let cfg = snap.cfg;
        let filter = cfg.filter.filter();
        let bs = cfg.block_size;
        let mut scratch = DwtScratch::new();
        let mut hot_part = 0.0;
        let mut hot_rows = 0usize;
        let mut items = Vec::new();
        for seg in &snap.segs {
            let end = seg.start + seg.len;
            if b < seg.start || a >= end || seg.len == 0 {
                continue;
            }
            let la = a.max(seg.start) - seg.start;
            let lb = (b.min(end - 1)) - seg.start;
            match &seg.kind {
                SnapKind::Hot(data) => {
                    for &v in &data[la..=lb] {
                        hot_part += v;
                    }
                    hot_rows += lb - la + 1;
                }
                SnapKind::Hist(coeffs) => {
                    let w = segment_weights(cfg.segment_len, la, lb, &filter, &mut scratch);
                    for (blk, wblk) in w.chunks(bs).enumerate() {
                        let wsq: f64 = wblk.iter().map(|x| x * x).sum();
                        if wsq == 0.0 {
                            continue;
                        }
                        let mut partial = 0.0;
                        for (wi, ci) in wblk.iter().zip(&coeffs.coeffs[blk * bs..(blk + 1) * bs]) {
                            if *wi != 0.0 {
                                partial += wi * ci;
                            }
                        }
                        let gain = (wsq * coeffs.block_energy[blk]).sqrt();
                        items.push(BlockTerm { gain, partial });
                    }
                }
            }
        }
        // Most-important-first; ties keep planning order (stable sort) so
        // the consumption sequence is deterministic.
        items.sort_by(|x, y| y.gain.partial_cmp(&x.gain).unwrap_or(std::cmp::Ordering::Equal));
        let bound = items.iter().map(|i| i.gain).sum();
        TieredProgressive {
            hot_part,
            hot_rows,
            items,
            consumed: 0,
            hist_estimate: 0.0,
            bound,
            exact,
        }
    }

    /// Historical blocks this evaluation will consume in total.
    pub fn total_blocks(&self) -> usize {
        self.items.len()
    }

    /// True when every historical block has been consumed.
    pub fn done(&self) -> bool {
        self.consumed >= self.items.len()
    }

    /// The current refinement.
    pub fn current(&self) -> TierStep {
        if self.done() {
            TierStep { estimate: self.exact, bound: 0.0, blocks_consumed: self.consumed }
        } else {
            TierStep {
                estimate: self.hot_part + self.hist_estimate,
                bound: self.bound.max(0.0),
                blocks_consumed: self.consumed,
            }
        }
    }

    /// Consumes up to `k` more historical blocks, most-important-first,
    /// and returns the refined step. The bound never increases.
    pub fn step(&mut self, k: usize) -> TierStep {
        let upto = (self.consumed + k.max(1)).min(self.items.len());
        while self.consumed < upto {
            let item = &self.items[self.consumed];
            self.hist_estimate += item.partial;
            // Subtracting a non-negative gain can't round upward, so the
            // bound is monotone non-increasing in floating point too.
            self.bound -= item.gain;
            self.consumed += 1;
        }
        self.current()
    }

    /// Runs the evaluation to completion and returns the exact answer.
    pub fn drain(&mut self) -> TierStep {
        while !self.done() {
            self.step(usize::MAX / 2);
        }
        self.current()
    }
}
