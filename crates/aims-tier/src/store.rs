//! The two-tier store: durable hot segments + installed wavelet segments.
//!
//! One [`TieredStore`] owns two block devices (hot raw, historical
//! coefficients) behind a single mutex, and hands out cheap clones of
//! itself — the ingest path, the background compactor and any number of
//! query threads all hold the same store. Queries never evaluate under
//! the lock: they take a [`TierSnapshot`] (Arc clones of every segment's
//! payload plus a copy of the open tail), so a compaction swap that
//! completes mid-query cannot move a sample between tiers underneath it —
//! each sample is seen in exactly the tier the snapshot captured.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use aims_storage::{BlockDevice, FileDevice, FileDeviceOptions, MemDevice};
use aims_telemetry::global;

use crate::layout::{
    Manifest, TierConfig, HIST_MAGIC, HOT_MAGIC, SLOT_EMPTY, SLOT_OPEN, SLOT_RAW, SLOT_RETIRED,
};

/// A sealed segment's wavelet form: the full-depth DWT of the (zero-padded)
/// segment, plus the per-device-block coefficient energies the progressive
/// bound consumes.
#[derive(Clone, Debug)]
pub struct SegCoeffs {
    /// `segment_len` coefficients in flat error-tree order.
    pub coeffs: Vec<f64>,
    /// Logical sample count (< `segment_len` only for a force-sealed tail).
    pub len: usize,
    /// Σ c² per device block, ascending block order.
    pub block_energy: Vec<f64>,
}

impl SegCoeffs {
    /// Builds the per-block energy catalog from a flat coefficient vector.
    pub fn from_coeffs(coeffs: Vec<f64>, len: usize, block_size: usize) -> Self {
        let block_energy =
            coeffs.chunks(block_size).map(|blk| blk.iter().map(|c| c * c).sum::<f64>()).collect();
        SegCoeffs { coeffs, len, block_energy }
    }
}

/// A sealed segment's in-memory residency.
enum Seg {
    /// Sealed raw samples, durable on the hot device. `compacting` marks a
    /// segment claimed by the compactor (still served raw until installed).
    Raw { data: Arc<Vec<f64>>, compacting: bool },
    /// Wavelet form installed on the historical device; raw slot retired.
    Hist { coeffs: Arc<SegCoeffs> },
}

impl Seg {
    fn len(&self) -> usize {
        match self {
            Seg::Raw { data, .. } => data.len(),
            Seg::Hist { coeffs } => coeffs.len,
        }
    }
}

struct Inner<D: BlockDevice> {
    hot: D,
    hist: D,
    hot_man: Manifest,
    hist_man: Manifest,
    segs: Vec<Seg>,
    /// The open (still-filling) tail segment; its slot is `segs.len()`.
    open_buf: Vec<f64>,
    /// Hot-device blocks of the open segment already written through.
    open_written: usize,
    /// Samples covered by sealed segments (the manifest's ack frontier,
    /// before adding any synced open tail).
    durable_sealed: usize,
}

/// Live counts for telemetry and drills.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Logical samples pushed (including the unsealed open tail).
    pub total_len: usize,
    /// Samples in the open tail segment.
    pub open_len: usize,
    /// Sealed segments still raw (compaction backlog).
    pub sealed_raw: usize,
    /// Segments installed in the historical tier.
    pub historical: usize,
}

/// Per-segment tier residency captured by a snapshot — drills use this to
/// assert every sample lives in exactly one tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentView {
    /// Global offset of the segment's first sample.
    pub start: usize,
    /// Logical samples in the segment.
    pub len: usize,
    /// True when the snapshot serves this segment from the wavelet tier.
    pub historical: bool,
}

pub(crate) enum SnapKind {
    Hot(Arc<Vec<f64>>),
    Hist(Arc<SegCoeffs>),
}

pub(crate) struct SnapSeg {
    pub(crate) start: usize,
    pub(crate) len: usize,
    pub(crate) kind: SnapKind,
}

/// An immutable, consistent view of the store at one instant. Queries
/// evaluate against a snapshot, never the live store, so concurrent
/// seals/compactions can't double- or zero-count a sample mid-query.
pub struct TierSnapshot {
    pub(crate) cfg: TierConfig,
    pub(crate) segs: Vec<SnapSeg>,
    total_len: usize,
}

impl TierSnapshot {
    /// Logical samples visible to this snapshot.
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// True when the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// The per-segment tier residency this snapshot captured.
    pub fn segments(&self) -> Vec<SegmentView> {
        self.segs
            .iter()
            .map(|s| SegmentView {
                start: s.start,
                len: s.len,
                historical: matches!(s.kind, SnapKind::Hist(_)),
            })
            .collect()
    }
}

/// Marks a query in flight for the compactor's rate limiter; dropped when
/// the query finishes.
pub struct QueryGuard {
    inflight: Arc<AtomicU64>,
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::Release);
    }
}

/// The tiered store handle. `Clone` is cheap (an `Arc` bump); all clones
/// share one store.
pub struct TieredStore<D: TierMedia> {
    inner: Arc<Mutex<Inner<D>>>,
    cfg: TierConfig,
    inflight: Arc<AtomicU64>,
}

impl<D: TierMedia> Clone for TieredStore<D> {
    fn clone(&self) -> Self {
        TieredStore {
            inner: Arc::clone(&self.inner),
            cfg: self.cfg,
            inflight: Arc::clone(&self.inflight),
        }
    }
}

impl TieredStore<MemDevice> {
    /// A fresh in-memory store (tests, drills without durability).
    pub fn new_mem(cfg: TierConfig) -> Self {
        cfg.validate();
        let blocks = cfg.device_blocks();
        let hot = MemDevice::new(cfg.block_size, blocks);
        let hist = MemDevice::new(cfg.block_size, blocks);
        Self::fresh(cfg, hot, hist)
    }
}

impl TieredStore<FileDevice> {
    /// Creates a durable store: `dir/hot` and `dir/hist` become two
    /// WAL-backed [`FileDevice`] directories.
    pub fn create_durable(
        dir: &std::path::Path,
        cfg: TierConfig,
        opts: FileDeviceOptions,
    ) -> std::io::Result<Self> {
        Self::create_durable_with(dir, cfg, opts.clone(), opts)
    }

    /// [`Self::create_durable`] with separate options per device — crash
    /// drills arm a [`aims_storage::CrashPlan`] on one tier at a time.
    pub fn create_durable_with(
        dir: &std::path::Path,
        cfg: TierConfig,
        hot_opts: FileDeviceOptions,
        hist_opts: FileDeviceOptions,
    ) -> std::io::Result<Self> {
        cfg.validate();
        std::fs::create_dir_all(dir)?;
        let blocks = cfg.device_blocks();
        let hot = FileDevice::create(dir.join("hot"), cfg.block_size, blocks, hot_opts)?;
        let hist = FileDevice::create(dir.join("hist"), cfg.block_size, blocks, hist_opts)?;
        Ok(Self::fresh(cfg, hot, hist))
    }

    /// Reopens a durable store, replaying both WALs and repairing any
    /// half-finished compaction swap (installed-but-not-retired segments
    /// finish retirement; uninstalled ones stay raw — acked ingest wins).
    pub fn open_durable(
        dir: &std::path::Path,
        cfg: TierConfig,
        opts: FileDeviceOptions,
    ) -> std::io::Result<Self> {
        Self::open_durable_with(dir, cfg, opts.clone(), opts)
    }

    /// [`Self::open_durable`] with separate options per device.
    pub fn open_durable_with(
        dir: &std::path::Path,
        cfg: TierConfig,
        hot_opts: FileDeviceOptions,
        hist_opts: FileDeviceOptions,
    ) -> std::io::Result<Self> {
        cfg.validate();
        let hot = FileDevice::open(dir.join("hot"), hot_opts)?;
        let hist = FileDevice::open(dir.join("hist"), hist_opts)?;
        Ok(Self::recover(cfg, hot, hist))
    }

    /// Checkpoints both devices (folds the WALs into the main files).
    pub fn checkpoint(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.hot.checkpoint();
        inner.hist.checkpoint();
    }

    /// Whether each device's seeded crash plan has fired: `(hot, hist)`.
    pub fn devices_crashed(&self) -> (bool, bool) {
        let inner = self.inner.lock().unwrap();
        (inner.hot.is_crashed(), inner.hist.is_crashed())
    }
}

impl<D: TierMedia> TieredStore<D> {
    fn fresh(cfg: TierConfig, mut hot: D, mut hist: D) -> Self {
        assert!(hot.num_blocks() >= cfg.device_blocks(), "hot device too small");
        assert!(hist.num_blocks() >= cfg.device_blocks(), "hist device too small");
        let mut hot_man = Manifest::fresh(HOT_MAGIC, &cfg);
        let mut hist_man = Manifest::fresh(HIST_MAGIC, &cfg);
        hot_man.flush(&mut hot);
        hist_man.flush(&mut hist);
        global().counter("tier.segments.open").inc();
        let inner = Inner {
            hot,
            hist,
            hot_man,
            hist_man,
            segs: Vec::new(),
            open_buf: Vec::with_capacity(cfg.segment_len),
            open_written: 0,
            durable_sealed: 0,
        };
        TieredStore {
            inner: Arc::new(Mutex::new(inner)),
            cfg,
            inflight: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Rebuilds in-memory state from the two manifests. The historical
    /// manifest is authoritative for any segment it has installed.
    fn recover(cfg: TierConfig, hot: D, hist: D) -> Self {
        let hot_man = Manifest::load(&hot, HOT_MAGIC, &cfg, "hot");
        let hist_man = Manifest::load(&hist, HIST_MAGIC, &cfg, "hist");
        let bs = cfg.block_size;
        let mut segs = Vec::new();
        let mut open_buf = Vec::with_capacity(cfg.segment_len);
        let mut open_written = 0usize;
        let mut durable_sealed = 0usize;
        let mut finish_retirement = Vec::new();

        let read_samples = |device: &D, first_block: usize, len: usize, what: &str| -> Vec<f64> {
            let mut out = Vec::with_capacity(len.div_ceil(bs) * bs);
            for b in 0..len.div_ceil(bs) {
                let blk = device
                    .read_block(first_block + b)
                    .unwrap_or_else(|e| panic!("{what} block {b} unreadable on recovery: {e:?}"));
                out.extend_from_slice(&blk);
            }
            out.truncate(len);
            out
        };

        for seg in 0..cfg.max_segments {
            let state = hot_man.slot_state(seg);
            if state == SLOT_EMPTY {
                break;
            }
            let len = hot_man.slot_len(seg);
            let installed = hist_man.installed(seg);
            if state == SLOT_OPEN {
                open_buf = read_samples(&hot, cfg.data_block(seg), len, "hot(open)");
                // A synced partial tail block gets rewritten when it fills.
                open_written = len / bs;
                break;
            }
            if installed {
                let coeffs = read_samples(&hist, cfg.data_block(seg), cfg.segment_len, "hist");
                segs.push(Seg::Hist { coeffs: Arc::new(SegCoeffs::from_coeffs(coeffs, len, bs)) });
                if state == SLOT_RAW {
                    // Crashed between hist commit and raw retirement.
                    finish_retirement.push((seg, len));
                }
            } else {
                assert!(
                    state == SLOT_RAW,
                    "segment {seg} retired on the hot device but never installed"
                );
                let data = read_samples(&hot, cfg.data_block(seg), len, "hot");
                segs.push(Seg::Raw { data: Arc::new(data), compacting: false });
            }
            durable_sealed += len;
        }

        let mut inner =
            Inner { hot, hist, hot_man, hist_man, segs, open_buf, open_written, durable_sealed };
        for (seg, len) in finish_retirement {
            inner.hot_man.set_slot(seg, SLOT_RETIRED, len);
        }
        inner.hot_man.flush(&mut inner.hot);
        TieredStore {
            inner: Arc::new(Mutex::new(inner)),
            cfg,
            inflight: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The store's static geometry.
    pub fn config(&self) -> TierConfig {
        self.cfg
    }

    /// Logical samples pushed so far.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.segs.iter().map(Seg::len).sum::<usize>() + inner.open_buf.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live tier counts.
    pub fn stats(&self) -> TierStats {
        let inner = self.inner.lock().unwrap();
        let sealed_raw = inner.segs.iter().filter(|s| matches!(s, Seg::Raw { .. })).count();
        let historical = inner.segs.len() - sealed_raw;
        TierStats {
            total_len: inner.segs.iter().map(Seg::len).sum::<usize>() + inner.open_buf.len(),
            open_len: inner.open_buf.len(),
            sealed_raw,
            historical,
        }
    }

    /// Queries currently holding a [`QueryGuard`] — the compactor's
    /// foreground-pressure signal.
    pub fn queries_inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// Marks a query in flight until the guard drops.
    pub fn begin_query(&self) -> QueryGuard {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        QueryGuard { inflight: Arc::clone(&self.inflight) }
    }

    /// Appends one sample.
    pub fn push(&self, x: f64) {
        self.push_slice(&[x]);
    }

    /// Appends a run of samples, writing each completed device block
    /// through the hot device (and its WAL) and sealing segments as they
    /// fill. Panics when both devices are out of segment slots.
    pub fn push_slice(&self, xs: &[f64]) {
        if xs.is_empty() {
            return;
        }
        let cfg = self.cfg;
        let bs = cfg.block_size;
        let mut inner = self.inner.lock().unwrap();
        let mut i = 0usize;
        while i < xs.len() {
            let seg = inner.segs.len();
            assert!(
                seg < cfg.max_segments,
                "tier capacity exhausted: {} segment slots full",
                cfg.max_segments
            );
            let room = cfg.segment_len - inner.open_buf.len();
            let take = room.min(xs.len() - i);
            inner.open_buf.extend_from_slice(&xs[i..i + take]);
            i += take;
            let complete = inner.open_buf.len() / bs;
            while inner.open_written < complete {
                let b = inner.open_written;
                let blk_id = cfg.data_block(seg) + b;
                // Split borrows: the block payload lives in open_buf.
                let Inner { hot, open_buf, .. } = &mut *inner;
                hot.write_block(blk_id, &open_buf[b * bs..(b + 1) * bs]);
                inner.open_written += 1;
            }
            if inner.open_buf.len() == cfg.segment_len {
                Self::seal_locked(&mut inner, &cfg);
            }
        }
    }

    /// Seals the open tail segment even if partial (its blocks are padded
    /// with zeros on device; the logical length is kept in the manifest).
    /// No-op on an empty tail.
    pub fn seal_open(&self) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.open_buf.is_empty() {
            Self::seal_locked(&mut inner, &self.cfg);
        }
    }

    fn seal_locked(inner: &mut Inner<D>, cfg: &TierConfig) {
        let bs = cfg.block_size;
        let seg = inner.segs.len();
        let len = inner.open_buf.len();
        // Flush the partial tail block, zero-padded, if any.
        if !len.is_multiple_of(bs) {
            let b = len / bs;
            let mut tail = inner.open_buf[b * bs..].to_vec();
            tail.resize(bs, 0.0);
            let blk_id = cfg.data_block(seg) + b;
            inner.hot.write_block(blk_id, &tail);
        }
        inner.durable_sealed += len;
        inner.hot_man.set_slot(seg, SLOT_RAW, len);
        let durable = inner.durable_sealed;
        inner.hot_man.set_total_len(durable);
        let Inner { hot, hot_man, .. } = &mut *inner;
        hot_man.flush(hot);
        let data = std::mem::replace(&mut inner.open_buf, Vec::with_capacity(cfg.segment_len));
        inner.open_written = 0;
        inner.segs.push(Seg::Raw { data: Arc::new(data), compacting: false });
        let t = global();
        t.counter("tier.segments.sealed").inc();
        t.counter("tier.segments.open").inc();
        t.gauge("tier.segments.raw_pending")
            .set(inner.segs.iter().filter(|s| matches!(s, Seg::Raw { .. })).count() as f64);
    }

    /// Makes the open tail durable up to the last pushed sample: writes
    /// the partial tail block (zero-padded), records the open length in
    /// the manifest, and flushes. After this, a reopened store recovers
    /// every pushed sample.
    pub fn sync(&self) {
        let cfg = self.cfg;
        let bs = cfg.block_size;
        let mut inner = self.inner.lock().unwrap();
        let seg = inner.segs.len();
        let len = inner.open_buf.len();
        if !len.is_multiple_of(bs) {
            let b = len / bs;
            let mut tail = inner.open_buf[b * bs..].to_vec();
            tail.resize(bs, 0.0);
            let blk_id = cfg.data_block(seg) + b;
            inner.hot.write_block(blk_id, &tail);
        }
        if len > 0 {
            inner.hot_man.set_slot(seg, SLOT_OPEN, len);
        }
        let durable = inner.durable_sealed + len;
        inner.hot_man.set_total_len(durable);
        let Inner { hot, hot_man, .. } = &mut *inner;
        hot_man.flush(hot);
    }

    /// A consistent view for query evaluation. The open tail is copied;
    /// sealed payloads are shared by `Arc`.
    pub fn snapshot(&self) -> TierSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut segs = Vec::with_capacity(inner.segs.len() + 1);
        let mut start = 0usize;
        for seg in &inner.segs {
            let (len, kind) = match seg {
                Seg::Raw { data, .. } => (data.len(), SnapKind::Hot(Arc::clone(data))),
                Seg::Hist { coeffs } => (coeffs.len, SnapKind::Hist(Arc::clone(coeffs))),
            };
            segs.push(SnapSeg { start, len, kind });
            start += len;
        }
        if !inner.open_buf.is_empty() {
            segs.push(SnapSeg {
                start,
                len: inner.open_buf.len(),
                kind: SnapKind::Hot(Arc::new(inner.open_buf.clone())),
            });
            start += inner.open_buf.len();
        }
        TierSnapshot { cfg: self.cfg, segs, total_len: start }
    }

    /// Claims up to `max` sealed raw segments for compaction (oldest
    /// first), marking them so concurrent calls don't double-claim.
    pub fn claim_sealed(&self, max: usize) -> Vec<(usize, Arc<Vec<f64>>)> {
        let mut inner = self.inner.lock().unwrap();
        let mut claimed = Vec::new();
        for (id, seg) in inner.segs.iter_mut().enumerate() {
            if claimed.len() >= max {
                break;
            }
            if let Seg::Raw { data, compacting } = seg {
                if !*compacting {
                    *compacting = true;
                    claimed.push((id, Arc::clone(data)));
                }
            }
        }
        claimed
    }

    /// Releases a claim without installing (compactor shutdown mid-cycle).
    pub fn release_claim(&self, seg: usize) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(Seg::Raw { compacting, .. }) = inner.segs.get_mut(seg) {
            *compacting = false;
        }
    }

    /// The compaction swap: writes `coeffs` to the historical device,
    /// commits it (manifest + checkpoint), then retires the raw slot and
    /// swaps the in-memory segment to the wavelet tier. Ordered so a crash
    /// at any point leaves exactly one manifest claiming the segment, with
    /// the raw slot winning until the historical commit completes. Returns
    /// `false` — leaving the segment raw and re-claimable — when the
    /// historical device refuses the commit; retiring the raw slot on a
    /// commit that didn't land would orphan the segment on both devices.
    pub fn install(&self, seg: usize, coeffs: SegCoeffs) -> bool {
        let cfg = self.cfg;
        let mut inner = self.inner.lock().unwrap();
        let len = coeffs.len;
        debug_assert_eq!(coeffs.coeffs.len(), cfg.segment_len);
        match &inner.segs[seg] {
            Seg::Raw { data, .. } => debug_assert_eq!(data.len(), len),
            Seg::Hist { .. } => panic!("segment {seg} installed twice"),
        }
        // (1) coefficient blocks through the hist WAL, ascending.
        for b in 0..cfg.blocks_per_segment() {
            let blk = &coeffs.coeffs[b * cfg.block_size..(b + 1) * cfg.block_size];
            let blk_id = cfg.data_block(seg) + b;
            inner.hist.write_block(blk_id, blk);
        }
        // (2) historical manifest claims the segment; (3) commit.
        inner.hist_man.set_installed(seg);
        {
            let Inner { hist, hist_man, .. } = &mut *inner;
            hist_man.flush(hist);
        }
        if !inner.hist.commit() {
            // Historical device is gone; the raw slot stays authoritative
            // (the WAL's ordering keeps any partial install harmless).
            if let Seg::Raw { compacting, .. } = &mut inner.segs[seg] {
                *compacting = false;
            }
            return false;
        }
        // (4) retire the raw slot and swap the in-memory tier.
        inner.hot_man.set_slot(seg, SLOT_RETIRED, len);
        {
            let Inner { hot, hot_man, .. } = &mut *inner;
            hot_man.flush(hot);
        }
        inner.segs[seg] = Seg::Hist { coeffs: Arc::new(coeffs) };
        let t = global();
        t.counter("tier.segments.compacted").inc();
        t.gauge("tier.segments.raw_pending")
            .set(inner.segs.iter().filter(|s| matches!(s, Seg::Raw { .. })).count() as f64);
        true
    }
}

/// The devices a tiered store can live on: a [`BlockDevice`] plus the
/// install commit point. A WAL-backed device checkpoints (fold + fsync)
/// to make the historical claim durable before the raw slot is retired;
/// the in-memory device needs nothing beyond the writes.
pub trait TierMedia: BlockDevice {
    /// Makes everything written so far durable (the historical install's
    /// commit point). Returns `false` when the device cannot honor the
    /// commit (e.g. a seeded crash fired) — the caller must then keep the
    /// raw segment authoritative.
    fn commit(&mut self) -> bool {
        true
    }
}

impl TierMedia for MemDevice {}

impl TierMedia for FileDevice {
    fn commit(&mut self) -> bool {
        self.checkpoint();
        !self.is_crashed()
    }
}
