//! Acquisition → hot tier wiring.
//!
//! The recorder and supervised-ingest pipelines end in a [`MultiStream`];
//! the hot tier wants a dense run of samples at their *source* positions
//! so segment offsets stay aligned with acquisition time. The feed places
//! each stored frame at its `record_with` source index, zero-filling the
//! holes left by dropped frames (counted, never silently skipped), and
//! appends through [`TieredStore::push_slice`] — every fed sample rides
//! the hot device's WAL.

use aims_acquisition::ingest::IngestOutcome;
use aims_acquisition::recorder::{DoubleBufferRecorder, QueuePolicy, RecordingStats};
use aims_sensors::types::MultiStream;
use aims_telemetry::global;

use crate::store::{TierMedia, TieredStore};

/// What a feed pass delivered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeedReport {
    /// Samples appended to the hot tier (frames + zero-filled holes).
    pub samples: usize,
    /// Holes zero-filled where the recorder dropped frames.
    pub holes: usize,
}

/// Feeds one channel of a recorded stream into the hot tier using the
/// stored-frame indices from
/// [`DoubleBufferRecorder::record_with`]: frame `indices[k]` lands at
/// source position `indices[k]`, dropped positions in `0..source_len`
/// become zero-filled holes.
pub fn feed_recording<D: TierMedia>(
    store: &TieredStore<D>,
    stream: &MultiStream,
    indices: &[usize],
    source_len: usize,
    channel: usize,
) -> FeedReport {
    let mut values = vec![0.0; source_len];
    let mut holes = source_len;
    for (k, &idx) in indices.iter().enumerate() {
        values[idx] = stream.frame(k)[channel];
        holes -= 1;
    }
    store.push_slice(&values);
    global().counter("tier.feed.holes").add(holes as u64);
    FeedReport { samples: source_len, holes }
}

/// Streams one channel of `source` through the double-buffered recorder
/// straight into the hot tier: each frame the storage thread drains is
/// appended (at its source position, holes zero-filled) *as it drains*,
/// not after the recording ends — including the trailing partial batch.
pub fn record_into_store<D: TierMedia + Send>(
    recorder: &DoubleBufferRecorder,
    source: &MultiStream,
    policy: QueuePolicy,
    channel: usize,
    store: &TieredStore<D>,
) -> (RecordingStats, FeedReport) {
    let mut next = 0usize;
    let mut holes = 0usize;
    let (_, _, stats) = recorder.record_with_sink(source, policy, |idx, frame| {
        // Stored indices arrive in ascending source order; anything
        // skipped between them was dropped at the interrupt side.
        debug_assert!(idx >= next, "stored frames out of source order");
        if idx > next {
            holes += idx - next;
            store.push_slice(&vec![0.0; idx - next]);
        }
        store.push(frame[channel]);
        next = idx + 1;
    });
    // Frames dropped off the tail still occupy source positions.
    if next < source.len() {
        holes += source.len() - next;
        store.push_slice(&vec![0.0; source.len() - next]);
    }
    global().counter("tier.feed.holes").add(holes as u64);
    (stats, FeedReport { samples: source.len(), holes })
}

/// Feeds one channel of a supervised-ingest outcome into the hot tier.
/// The outcome's stream is already a full uniform grid (gaps repaired),
/// so the feed is a straight append.
pub fn feed_outcome<D: TierMedia>(
    store: &TieredStore<D>,
    outcome: &IngestOutcome,
    channel: usize,
) -> FeedReport {
    let n = outcome.stream.len();
    let values: Vec<f64> = (0..n).map(|t| outcome.stream.frame(t)[channel]).collect();
    store.push_slice(&values);
    FeedReport { samples: n, holes: 0 }
}
