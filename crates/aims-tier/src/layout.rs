//! On-device layout of the two tiers.
//!
//! Both tiers live on ordinary [`aims_storage::BlockDevice`]s — the
//! in-memory device for tests, the WAL-backed [`aims_storage::FileDevice`]
//! for durability — so every write below rides the existing checksum /
//! write-ahead-log / crash-recovery machinery unchanged.
//!
//! Each device opens with a small **manifest** region at block 0..M
//! followed by fixed-size segment slots:
//!
//! ```text
//! hot device   [ manifest ][ seg 0 raw samples ][ seg 1 raw samples ] …
//! hist device  [ manifest ][ seg 0 coefficients ][ seg 1 coefficients ] …
//! ```
//!
//! The hot manifest records, per slot, a state (`empty` / `sealed raw` /
//! `retired` / `open`) and the slot's logical sample count; the historical
//! manifest records a single *installed* flag per slot. The compaction
//! swap protocol orders its writes so that, at every crash point, exactly
//! one manifest claims each segment:
//!
//! 1. coefficient blocks → hist WAL,
//! 2. hist manifest `installed = 1`,
//! 3. hist checkpoint (the commit point),
//! 4. hot manifest `retired` (raw slot released).
//!
//! A crash before (3) leaves the raw slot authoritative — the partial
//! coefficient writes are garbage that the redo overwrites. A crash
//! between (3) and (4) is repaired on reopen by finishing the retirement,
//! which is idempotent.

/// All values an f64 carries exactly: the manifest is stored through the
/// same checksummed f64-block pipeline as the payload data.
pub(crate) const HOT_MAGIC: u64 = 0x4149_4D53_484F_5431; // "AIMSHOT1"
pub(crate) const HIST_MAGIC: u64 = 0x4149_4D53_4853_5431; // "AIMSHST1"

/// Per-slot states in the hot manifest.
pub(crate) const SLOT_EMPTY: f64 = 0.0;
pub(crate) const SLOT_RAW: f64 = 1.0;
pub(crate) const SLOT_RETIRED: f64 = 2.0;
pub(crate) const SLOT_OPEN: f64 = 3.0;

/// Static geometry of a tiered store. Fixed at creation and persisted in
/// both manifests; `open_durable` validates a reopened directory against
/// the caller's config.
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// Samples per segment. Must be a power of two (each sealed segment
    /// is wavelet-transformed whole).
    pub segment_len: usize,
    /// f64 values per device block. Must divide `segment_len`.
    pub block_size: usize,
    /// Capacity of both devices, in segment slots.
    pub max_segments: usize,
    /// Wavelet filter the compactor applies to sealed segments.
    pub filter: aims_dsp::filters::FilterKind,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            segment_len: 4096,
            block_size: 256,
            max_segments: 64,
            filter: aims_dsp::filters::FilterKind::Haar,
        }
    }
}

impl TierConfig {
    /// Panics unless the geometry is self-consistent.
    pub fn validate(&self) {
        assert!(
            self.segment_len.is_power_of_two() && self.segment_len >= 2,
            "segment_len must be a power of two >= 2, got {}",
            self.segment_len
        );
        assert!(
            self.block_size >= 8 && self.segment_len.is_multiple_of(self.block_size),
            "block_size must be >= 8 and divide segment_len ({} / {})",
            self.segment_len,
            self.block_size
        );
        assert!(self.max_segments >= 1, "max_segments must be >= 1");
    }

    /// Device blocks per segment slot.
    pub fn blocks_per_segment(&self) -> usize {
        self.segment_len / self.block_size
    }

    /// Blocks the manifest region occupies (shared by both devices; the
    /// hot manifest is the larger of the two encodings).
    pub fn manifest_blocks(&self) -> usize {
        (4 + 2 * self.max_segments).div_ceil(self.block_size)
    }

    /// First device block of segment slot `seg`.
    pub fn data_block(&self, seg: usize) -> usize {
        self.manifest_blocks() + seg * self.blocks_per_segment()
    }

    /// Total blocks each device needs.
    pub fn device_blocks(&self) -> usize {
        self.manifest_blocks() + self.max_segments * self.blocks_per_segment()
    }
}

/// A manifest staged in memory as the flat f64 image of its device
/// blocks. Mutations mark the touched block dirty so a flush writes only
/// what changed (a seal touches two blocks, not the whole region).
pub(crate) struct Manifest {
    image: Vec<f64>,
    block_size: usize,
    dirty: Vec<bool>,
}

impl Manifest {
    pub(crate) fn fresh(magic: u64, cfg: &TierConfig) -> Self {
        let mut m = Manifest {
            image: vec![0.0; cfg.manifest_blocks() * cfg.block_size],
            block_size: cfg.block_size,
            dirty: vec![true; cfg.manifest_blocks()],
        };
        m.image[0] = f64::from_bits(magic);
        m.image[1] = cfg.segment_len as f64;
        m.image[2] = cfg.block_size as f64;
        m.image[3] = 0.0;
        m
    }

    /// Rebuilds the staged image from device blocks 0..M, validating the
    /// magic and geometry.
    pub(crate) fn load<D: aims_storage::BlockDevice>(
        device: &D,
        magic: u64,
        cfg: &TierConfig,
        what: &str,
    ) -> Self {
        let mut image = Vec::with_capacity(cfg.manifest_blocks() * cfg.block_size);
        for b in 0..cfg.manifest_blocks() {
            let blk = device
                .read_block(b)
                .unwrap_or_else(|e| panic!("{what} manifest block {b} unreadable: {e:?}"));
            image.extend_from_slice(&blk);
        }
        assert_eq!(image[0].to_bits(), f64::from_bits(magic).to_bits(), "{what} manifest magic");
        assert_eq!(image[1] as usize, cfg.segment_len, "{what} manifest segment_len");
        assert_eq!(image[2] as usize, cfg.block_size, "{what} manifest block_size");
        Manifest { image, block_size: cfg.block_size, dirty: vec![false; cfg.manifest_blocks()] }
    }

    fn set(&mut self, idx: usize, v: f64) {
        if self.image[idx].to_bits() != v.to_bits() {
            self.image[idx] = v;
            self.dirty[idx / self.block_size] = true;
        }
    }

    pub(crate) fn set_total_len(&mut self, n: usize) {
        self.set(3, n as f64);
    }

    /// Hot encoding: per-slot (state, logical length) pairs.
    pub(crate) fn slot_state(&self, seg: usize) -> f64 {
        self.image[4 + 2 * seg]
    }

    pub(crate) fn slot_len(&self, seg: usize) -> usize {
        self.image[5 + 2 * seg] as usize
    }

    pub(crate) fn set_slot(&mut self, seg: usize, state: f64, len: usize) {
        self.set(4 + 2 * seg, state);
        self.set(5 + 2 * seg, len as f64);
    }

    /// Hist encoding: one installed flag per slot (the length pairs keep
    /// the hot layout so both manifests share a block budget).
    pub(crate) fn installed(&self, seg: usize) -> bool {
        self.image[4 + 2 * seg] == 1.0
    }

    pub(crate) fn set_installed(&mut self, seg: usize) {
        self.set(4 + 2 * seg, 1.0);
    }

    /// Writes the dirty manifest blocks through the device (and its WAL).
    pub(crate) fn flush<D: aims_storage::BlockDevice>(&mut self, device: &mut D) {
        for b in 0..self.dirty.len() {
            if self.dirty[b] {
                device.write_block(b, &self.image[b * self.block_size..(b + 1) * self.block_size]);
                self.dirty[b] = false;
            }
        }
    }
}
