//! The wavelet data-approximation baseline.
//!
//! "Wavelets are often thought of as a data approximation tool, and have
//! been used this way for approximate range query answering. The efficacy
//! of this approach is highly data dependent; it only works when the data
//! have a concise wavelet approximation." (§3.3). ProPolyne instead
//! approximates the *query*. To reproduce that comparison we need the
//! baseline: keep the top-K data coefficients and answer queries exactly
//! against the truncated cube.

use crate::cube::WaveletCube;
use crate::engine::Propolyne;
use crate::query::RangeSumQuery;

/// A top-K data synopsis with its own evaluator.
#[derive(Clone, Debug)]
pub struct DataSynopsis {
    engine: Propolyne,
    kept: usize,
}

impl DataSynopsis {
    /// Builds the synopsis keeping the `k` largest-magnitude coefficients.
    pub fn new(cube: &WaveletCube, k: usize) -> Self {
        DataSynopsis { engine: Propolyne::new(cube.top_k_synopsis(k)), kept: k }
    }

    /// Coefficients retained.
    pub fn kept(&self) -> usize {
        self.kept
    }

    /// Query answer against the truncated data.
    pub fn evaluate(&self, query: &RangeSumQuery) -> f64 {
        self.engine.evaluate(query)
    }
}

/// Relative-error comparison of the two approximation philosophies at
/// equal budget: `budget` data coefficients for the synopsis vs `budget`
/// *query* coefficients for progressive ProPolyne. Returns
/// `(data_approx_rel_error, query_approx_rel_error)` averaged over the
/// workload.
pub fn compare_at_budget(full: &Propolyne, queries: &[RangeSumQuery], budget: usize) -> (f64, f64) {
    assert!(!queries.is_empty(), "need a workload");
    let synopsis = DataSynopsis::new(full.cube(), budget);
    let mut data_err = 0.0;
    let mut query_err = 0.0;
    for q in queries {
        let exact = full.evaluate(q);
        let scale = exact.abs().max(1e-9);

        let approx_data = synopsis.evaluate(q);
        data_err += (approx_data - exact).abs() / scale;

        let run = full.progressive(q);
        let step = run.steps.iter().take_while(|s| s.coefficients_used <= budget).last();
        let approx_query = step.map_or(0.0, |s| s.estimate);
        query_err += (approx_query - exact).abs() / scale;
    }
    (data_err / queries.len() as f64, query_err / queries.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::DataCube;
    use aims_dsp::filters::FilterKind;

    fn smooth_cube() -> DataCube {
        // Smooth data: compresses well, the favorable case for synopses.
        let mut cube = DataCube::zeros(&[64, 64]);
        for i in 0..64 {
            for j in 0..64 {
                *cube.at_mut(&[i, j]) =
                    50.0 + 20.0 * (i as f64 * 0.1).sin() + 10.0 * (j as f64 * 0.15).cos();
            }
        }
        cube
    }

    fn spiky_cube() -> DataCube {
        // High-frequency data: compresses badly, the unfavorable case.
        let mut cube = DataCube::zeros(&[64, 64]);
        let mut state = 77u64;
        for v in cube.values_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 100) as f64;
        }
        cube
    }

    fn workload() -> Vec<RangeSumQuery> {
        (0..10)
            .map(|k| {
                let a = (k * 5) % 30;
                RangeSumQuery::count(vec![(a, a + 30), (3 + k, 40 + k)])
            })
            .collect()
    }

    #[test]
    fn full_budget_synopsis_is_exact() {
        let cube = smooth_cube();
        let wc = cube.transform(&FilterKind::Db4.filter());
        let syn = DataSynopsis::new(&wc, 64 * 64);
        for q in workload() {
            let exact = q.eval_scan(&cube);
            assert!((syn.evaluate(&q) - exact).abs() < 1e-5 * exact.abs().max(1.0));
        }
    }

    #[test]
    fn synopsis_error_grows_as_budget_shrinks() {
        let cube = spiky_cube();
        let full = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let queries = workload();
        let (err_small, _) = compare_at_budget(&full, &queries, 16);
        let (err_large, _) = compare_at_budget(&full, &queries, 1024);
        assert!(err_large <= err_small + 1e-9, "{err_large} !<= {err_small}");
    }

    #[test]
    fn query_approximation_beats_data_approximation_on_spiky_data() {
        let cube = spiky_cube();
        let full = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let queries = workload();
        let (data_err, query_err) = compare_at_budget(&full, &queries, 64);
        assert!(
            query_err < data_err,
            "query approx {query_err} should beat data approx {data_err} on incompressible data"
        );
    }

    #[test]
    fn query_approximation_is_data_independent() {
        // The paper: data-approx error "varies wildly with the dataset",
        // query-approx error is consistent. Compare the spread across the
        // two cubes at the same budget.
        let queries = workload();
        let budget = 64;
        let mut data_errs = Vec::new();
        let mut query_errs = Vec::new();
        for cube in [smooth_cube(), spiky_cube()] {
            let full = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
            let (d, q) = compare_at_budget(&full, &queries, budget);
            data_errs.push(d);
            query_errs.push(q);
        }
        let spread = |v: &[f64]| -> f64 {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            spread(&query_errs) < spread(&data_errs),
            "query-approx spread {:?} should be tighter than data-approx {:?}",
            query_errs,
            data_errs
        );
    }
}
