//! The lazy wavelet transform of piecewise-polynomial query vectors.
//!
//! A polynomial range-sum query restricted to one dimension is the vector
//! `q[i] = p(i)` for `i ∈ [a, b]`, zero elsewhere. Filtering a polynomial
//! sequence with a wavelet filter and downsampling yields another
//! polynomial sequence (`q'(k) = Σₘ h[m]·p(2k+m)`), so at every level the
//! signal stays *piecewise polynomial with O(1) pieces*: a polynomial
//! interior, short explicit boundary zones (windows that straddle a piece
//! edge), and zero outside. The lazy transform tracks exactly that
//! structure symbolically, touching only O(filter · log N) values overall.
//!
//! The moment condition appears here concretely: when the highpass filter
//! has more vanishing moments than the polynomial degree, the interior
//! detail polynomial is identically zero and the detail band keeps only the
//! boundary explicits. With an inadequate filter (e.g. Haar against a
//! linear measure) the interior detail polynomial survives and the "sparse"
//! result honestly degrades to O(N) — exactly the behaviour the paper's
//! filter-choice discussion predicts.

use aims_dsp::filters::WaveletFilter;
use aims_dsp::poly::Polynomial;

/// Relative tolerance below which derived values are treated as exact
/// zeros (they arise from annihilated moments, at rounding scale relative
/// to the signal's magnitude).
pub const ZERO_TOL: f64 = 1e-10;

/// Estimated max |poly| over an index interval, by sampling endpoints and
/// interior points — a scale reference for relative-zero decisions.
fn poly_scale(poly: &Polynomial, lo: usize, hi: usize) -> f64 {
    if poly.is_zero() {
        return 0.0;
    }
    let lo = lo as f64;
    let hi = hi as f64;
    [lo, hi, (lo + hi) / 2.0, lo + (hi - lo) * 0.25, lo + (hi - lo) * 0.75]
        .iter()
        .map(|&x| poly.eval(x).abs())
        .fold(0.0_f64, f64::max)
}

/// One piece of a hybrid signal.
#[derive(Clone, Debug)]
pub enum Piece {
    /// `signal[i] = poly(i)` for `i ∈ [start, end)`.
    Poly {
        /// First index of the piece.
        start: usize,
        /// One past the last index.
        end: usize,
        /// The generating polynomial (in absolute index coordinates).
        poly: Polynomial,
    },
    /// Explicitly stored values for `start..start + values.len()`.
    Explicit {
        /// First index of the run.
        start: usize,
        /// The values.
        values: Vec<f64>,
    },
}

impl Piece {
    fn start(&self) -> usize {
        match self {
            Piece::Poly { start, .. } | Piece::Explicit { start, .. } => *start,
        }
    }

    fn end(&self) -> usize {
        match self {
            Piece::Poly { end, .. } => *end,
            Piece::Explicit { start, values } => start + values.len(),
        }
    }
}

/// A sparse-by-structure signal over `[0, n)`: disjoint pieces, zero
/// elsewhere.
#[derive(Clone, Debug)]
pub struct HybridSignal {
    n: usize,
    pieces: Vec<Piece>,
}

/// A sparse vector: sorted `(index, value)` pairs.
pub type SparseVector = Vec<(usize, f64)>;

impl HybridSignal {
    /// A range-restricted polynomial signal: `p(i)` on `[a, b]` inclusive,
    /// zero outside.
    ///
    /// # Panics
    /// If the range is invalid for length `n` (power of two required).
    pub fn range_polynomial(n: usize, a: usize, b: usize, poly: Polynomial) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "length must be a power of two ≥ 2");
        assert!(a <= b && b < n, "bad range [{a},{b}] for n={n}");
        HybridSignal { n, pieces: vec![Piece::Poly { start: a, end: b + 1, poly }] }
    }

    /// Signal length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Signals always have positive length.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Value at index `i` (zero outside all pieces).
    pub fn value_at(&self, i: usize) -> f64 {
        debug_assert!(i < self.n);
        for p in &self.pieces {
            if i >= p.start() && i < p.end() {
                return match p {
                    Piece::Poly { poly, .. } => poly.eval(i as f64),
                    Piece::Explicit { start, values } => values[i - start],
                };
            }
        }
        0.0
    }

    /// Materializes the full dense vector (test/verification path).
    pub fn to_dense(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.value_at(i)).collect()
    }

    /// Enumerates the (structurally) nonzero entries with |value| >
    /// `tol`. Polynomial pieces are walked index-by-index — cheap when the
    /// moment condition has zeroed them out (they were dropped), honest
    /// when it has not.
    pub fn nonzeros(&self, tol: f64) -> SparseVector {
        let mut out = Vec::new();
        for p in &self.pieces {
            match p {
                Piece::Poly { start, end, poly } => {
                    for i in *start..*end {
                        let v = poly.eval(i as f64);
                        if v.abs() > tol {
                            out.push((i, v));
                        }
                    }
                }
                Piece::Explicit { start, values } => {
                    for (off, &v) in values.iter().enumerate() {
                        if v.abs() > tol {
                            out.push((start + off, v));
                        }
                    }
                }
            }
        }
        out.sort_by_key(|&(i, _)| i);
        out
    }

    /// The work the lazy transform actually performed for this level:
    /// polynomial pieces are tracked symbolically (O(degree) each, counted
    /// as 1 + degree), explicit runs cost their length.
    pub fn structural_size(&self) -> usize {
        self.pieces
            .iter()
            .map(|p| match p {
                Piece::Poly { poly, .. } => 1 + poly.degree(),
                Piece::Explicit { values, .. } => values.len(),
            })
            .sum()
    }

    /// Number of indices covered by any piece (dense span).
    pub fn covered_len(&self) -> usize {
        self.pieces.iter().map(|p| p.end() - p.start()).sum()
    }

    /// One analysis step: returns `(approximation, detail)` hybrid signals
    /// of half the length.
    pub fn analysis_step(&self, filter: &WaveletFilter) -> (HybridSignal, HybridSignal) {
        let n = self.n;
        let half = n / 2;
        let l = filter.len();

        // Signals too short for symbolic treatment: go fully explicit.
        if n < 2 * l.max(2) {
            let mut approx = vec![0.0; half];
            let mut detail = vec![0.0; half];
            for k in 0..half {
                let mut a = 0.0;
                let mut d = 0.0;
                for m in 0..l {
                    let x = self.value_at((2 * k + m) % n);
                    a += filter.lowpass()[m] * x;
                    d += filter.highpass()[m] * x;
                }
                approx[k] = a;
                detail[k] = d;
            }
            return (
                HybridSignal::from_explicit(half, approx),
                HybridSignal::from_explicit(half, detail),
            );
        }

        let div_floor = |a: i64, b: i64| -> i64 { (a as f64 / b as f64).floor() as i64 };
        let div_ceil = |a: i64, b: i64| -> i64 { (a as f64 / b as f64).ceil() as i64 };

        // Clean polynomial output intervals and the set of dirty ks.
        let mut approx_polys: Vec<(usize, usize, Polynomial)> = Vec::new();
        let mut detail_polys: Vec<(usize, usize, Polynomial)> = Vec::new();
        let mut dirty: Vec<usize> = Vec::new();

        for piece in &self.pieces {
            let s = piece.start() as i64;
            let e = piece.end() as i64;
            let touch_lo = div_ceil(s - l as i64 + 1, 2);
            let touch_hi = div_floor(e - 1, 2);
            match piece {
                Piece::Poly { poly, .. } => {
                    let clean_lo = div_ceil(s, 2);
                    let clean_hi = div_floor(e - l as i64, 2);
                    if clean_lo <= clean_hi {
                        let qa = filter.filter_polynomial(false, poly);
                        let qd = filter.filter_polynomial(true, poly);
                        // Relative-zero test: a detail polynomial whose
                        // values over the clean interval are at rounding
                        // scale of the *input* polynomial was annihilated
                        // by the moment condition.
                        let scale_in = poly_scale(poly, s as usize, (e - 1) as usize).max(1.0);
                        let keep = |q: &Polynomial| {
                            poly_scale(q, clean_lo as usize, clean_hi as usize)
                                > ZERO_TOL * scale_in
                        };
                        if keep(&qa) {
                            approx_polys.push((clean_lo as usize, clean_hi as usize + 1, qa));
                        }
                        if keep(&qd) {
                            detail_polys.push((clean_lo as usize, clean_hi as usize + 1, qd));
                        }
                        for k in touch_lo..clean_lo {
                            dirty.push(k.rem_euclid(half as i64) as usize);
                        }
                        for k in clean_hi + 1..=touch_hi {
                            dirty.push(k.rem_euclid(half as i64) as usize);
                        }
                    } else {
                        for k in touch_lo..=touch_hi {
                            dirty.push(k.rem_euclid(half as i64) as usize);
                        }
                    }
                }
                Piece::Explicit { .. } => {
                    for k in touch_lo..=touch_hi {
                        dirty.push(k.rem_euclid(half as i64) as usize);
                    }
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        // Evaluate the dirty ks explicitly.
        let mut approx_explicit: Vec<(usize, f64)> = Vec::with_capacity(dirty.len());
        let mut detail_explicit: Vec<(usize, f64)> = Vec::with_capacity(dirty.len());
        let mut level_scale: f64 = 1.0;
        for &k in &dirty {
            let mut a = 0.0;
            let mut d = 0.0;
            for m in 0..l {
                let x = self.value_at((2 * k + m) % n);
                level_scale = level_scale.max(x.abs());
                a += filter.lowpass()[m] * x;
                d += filter.highpass()[m] * x;
            }
            approx_explicit.push((k, a));
            detail_explicit.push((k, d));
        }
        let tol = ZERO_TOL * level_scale;

        (
            HybridSignal::assemble(half, approx_polys, &approx_explicit, tol),
            HybridSignal::assemble(half, detail_polys, &detail_explicit, tol),
        )
    }

    fn from_explicit(n: usize, values: Vec<f64>) -> HybridSignal {
        HybridSignal { n, pieces: vec![Piece::Explicit { start: 0, values }] }
    }

    /// Builds a signal from clean polynomial intervals plus explicit
    /// points; drops near-zero explicits and merges runs.
    fn assemble(
        n: usize,
        polys: Vec<(usize, usize, Polynomial)>,
        explicit: &[(usize, f64)],
        tol: f64,
    ) -> HybridSignal {
        let mut pieces: Vec<Piece> =
            polys.into_iter().map(|(start, end, poly)| Piece::Poly { start, end, poly }).collect();

        // Merge consecutive explicit points into runs (keeping zeros that
        // sit between nonzeros is fine; isolated zeros are dropped).
        let mut run_start: Option<usize> = None;
        let mut run_vals: Vec<f64> = Vec::new();
        let flush = |start: &mut Option<usize>, vals: &mut Vec<f64>, pieces: &mut Vec<Piece>| {
            if let Some(s) = start.take() {
                if vals.iter().any(|v| v.abs() > tol) {
                    pieces.push(Piece::Explicit { start: s, values: std::mem::take(vals) });
                } else {
                    vals.clear();
                }
            }
        };
        let mut prev: Option<usize> = None;
        for &(k, v) in explicit {
            match (run_start, prev) {
                (Some(_), Some(p)) if k == p + 1 => run_vals.push(v),
                _ => {
                    flush(&mut run_start, &mut run_vals, &mut pieces);
                    run_start = Some(k);
                    run_vals = vec![v];
                }
            }
            prev = Some(k);
        }
        flush(&mut run_start, &mut run_vals, &mut pieces);

        pieces.sort_by_key(|p| p.start());
        // Sanity: disjointness (clean intervals and dirty points never
        // overlap by construction).
        debug_assert!(pieces.windows(2).all(|w| w[0].end() <= w[1].start()));
        HybridSignal { n, pieces }
    }
}

/// Result of the full lazy transform: the query vector in the flat
/// [`aims_dsp::dwt::dwt_full`] layout, kept as one hybrid signal per band.
#[derive(Clone, Debug)]
pub struct LazyTransform {
    /// Final approximation (length-1) value.
    pub approx: f64,
    /// Detail bands, coarsest first, as hybrid signals.
    pub details: Vec<HybridSignal>,
    /// Transform length.
    pub n: usize,
    /// Total structural work performed (entries touched symbolically or
    /// explicitly) — the lazy transform's cost measure.
    pub work: usize,
}

impl LazyTransform {
    /// Sparse flat-layout view: sorted `(flat index, value)` of all entries
    /// with magnitude above `tol`.
    pub fn nonzeros(&self, tol: f64) -> SparseVector {
        let mut out = Vec::new();
        if self.approx.abs() > tol {
            out.push((0usize, self.approx));
        }
        // details[0] is coarsest: flat offset of a band of length len is
        // exactly len (bands: [1,2), [2,4), [4,8), …).
        for band in &self.details {
            let offset = band.len();
            for (i, v) in band.nonzeros(tol) {
                out.push((offset + i, v));
            }
        }
        out.sort_by_key(|&(i, _)| i);
        out
    }

    /// Count of nonzeros above `tol`.
    pub fn nnz(&self, tol: f64) -> usize {
        self.nonzeros(tol).len()
    }
}

/// Runs the full lazy wavelet transform of the query vector
/// `q[i] = poly(i)·[a ≤ i ≤ b]` of length `n`.
///
/// ```
/// use aims_dsp::filters::FilterKind;
/// use aims_dsp::poly::Polynomial;
/// use aims_propolyne::lazy::lazy_transform;
///
/// // A COUNT query over [100, 900] of a 1024-point domain: only
/// // O(filter · log N) of the 1024 wavelet coefficients are nonzero.
/// let lt = lazy_transform(1024, 100, 900, &Polynomial::constant(1.0),
///                         &FilterKind::Db4.filter());
/// assert!(lt.nnz(1e-9) < 200);
/// ```
///
/// # Panics
/// Propagates the constructor's range/length checks.
pub fn lazy_transform(
    n: usize,
    a: usize,
    b: usize,
    poly: &Polynomial,
    filter: &WaveletFilter,
) -> LazyTransform {
    let mut current = HybridSignal::range_polynomial(n, a, b, poly.clone());
    let mut details_fine_first: Vec<HybridSignal> = Vec::new();
    let mut work = current.structural_size();
    while current.len() > 1 {
        let (approx, detail) = current.analysis_step(filter);
        work += approx.structural_size() + detail.structural_size();
        details_fine_first.push(detail);
        current = approx;
    }
    details_fine_first.reverse();
    LazyTransform { approx: current.value_at(0), details: details_fine_first, n, work }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aims_dsp::dwt::dwt_full;
    use aims_dsp::filters::FilterKind;

    /// Dense reference: transform the materialized query vector.
    fn dense_reference(
        n: usize,
        a: usize,
        b: usize,
        poly: &Polynomial,
        f: &WaveletFilter,
    ) -> Vec<f64> {
        let q: Vec<f64> =
            (0..n).map(|i| if i >= a && i <= b { poly.eval(i as f64) } else { 0.0 }).collect();
        dwt_full(&q, f)
    }

    fn check_against_dense(n: usize, a: usize, b: usize, poly: &Polynomial, kind: FilterKind) {
        let f = kind.filter();
        let lazy = lazy_transform(n, a, b, poly, &f);
        let dense = dense_reference(n, a, b, poly, &f);
        // Compare every coordinate.
        let sparse: std::collections::HashMap<usize, f64> =
            lazy.nonzeros(0.0).into_iter().collect();
        let scale = dense.iter().fold(1.0_f64, |m, x| m.max(x.abs()));
        for (i, &d) in dense.iter().enumerate() {
            let s = sparse.get(&i).copied().unwrap_or(0.0);
            assert!(
                (s - d).abs() < 1e-7 * scale,
                "{kind:?} n={n} [{a},{b}] deg={}: index {i}: lazy {s} vs dense {d}",
                poly.degree()
            );
        }
    }

    #[test]
    fn constant_query_matches_dense_all_filters() {
        for kind in FilterKind::ALL {
            check_against_dense(64, 10, 40, &Polynomial::constant(1.0), kind);
            check_against_dense(64, 0, 63, &Polynomial::constant(2.0), kind);
            check_against_dense(64, 31, 31, &Polynomial::constant(1.0), kind);
        }
    }

    #[test]
    fn linear_query_matches_dense() {
        let p = Polynomial::from_coeffs(vec![1.0, 0.5]);
        for kind in FilterKind::ALL {
            check_against_dense(128, 20, 90, &p, kind);
        }
    }

    #[test]
    fn quadratic_query_matches_dense() {
        let p = Polynomial::from_coeffs(vec![0.0, -1.0, 0.25]);
        for kind in [FilterKind::Db6, FilterKind::Db8, FilterKind::Haar] {
            check_against_dense(256, 5, 200, &p, kind);
        }
    }

    #[test]
    fn boundary_ranges_match_dense() {
        let p = Polynomial::constant(1.0);
        for kind in [FilterKind::Db4, FilterKind::Db6] {
            check_against_dense(64, 0, 5, &p, kind);
            check_against_dense(64, 60, 63, &p, kind);
            check_against_dense(64, 0, 0, &p, kind);
            check_against_dense(64, 63, 63, &p, kind);
        }
    }

    #[test]
    fn moment_condition_gives_polylog_nnz() {
        // Db4 has 2 vanishing moments → linear measures yield sparse
        // query vectors: O(filter·log n).
        let n = 1 << 14;
        let p = Polynomial::from_coeffs(vec![0.0, 1.0]);
        let lazy = lazy_transform(n, 100, 12000, &p, &FilterKind::Db4.filter());
        let nnz = lazy.nnz(1e-7);
        let logn = (n as f64).log2();
        assert!(
            (nnz as f64) < 6.0 * 4.0 * logn,
            "nnz {nnz} not polylog for n={n} (log n = {logn})"
        );
    }

    #[test]
    fn haar_on_linear_measure_is_dense() {
        // Haar has 1 vanishing moment → a linear measure's details do NOT
        // vanish; the honest nnz is O(range length).
        let n = 1 << 10;
        let p = Polynomial::from_coeffs(vec![0.0, 1.0]);
        let lazy = lazy_transform(n, 0, n - 1, &p, &FilterKind::Haar.filter());
        let nnz = lazy.nnz(1e-7);
        assert!(nnz > n / 4, "expected dense result for Haar/linear, got {nnz}");
    }

    #[test]
    fn haar_on_count_measure_is_sparse() {
        let n = 1 << 12;
        let lazy =
            lazy_transform(n, 77, 3000, &Polynomial::constant(1.0), &FilterKind::Haar.filter());
        let nnz = lazy.nnz(1e-9);
        assert!(nnz <= 2 * 13 + 2, "Haar count query should be ~2·log n, got {nnz}");
    }

    #[test]
    fn lazy_work_is_polylogarithmic() {
        // The structural work (entries tracked) should grow ~log n for a
        // fixed-degree query under an adequate filter, not ~n.
        let p = Polynomial::from_coeffs(vec![1.0, 1.0]);
        let f = FilterKind::Db4.filter();
        let work_small = lazy_transform(1 << 10, 3, (1 << 10) - 7, &p, &f).work;
        let work_large = lazy_transform(1 << 16, 3, (1 << 16) - 7, &p, &f).work;
        // 64× more data; structural work should grow far slower. The
        // initial piece itself is Θ(range), counted once as one symbolic
        // piece... structural_size counts indices, so compare *excluding*
        // the first level via a generous factor instead.
        assert!(
            (work_large as f64) < (work_small as f64) * 8.0,
            "work grew like n: {work_small} → {work_large}"
        );
    }

    #[test]
    fn inner_product_preserved() {
        // ⟨q, x⟩ in time domain == ⟨q̂, x̂⟩ with the sparse q̂.
        let n = 256;
        let f = FilterKind::Db4.filter();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 31) as f64 * 0.3 - 4.0).collect();
        let xh = dwt_full(&x, &f);
        let (a, b) = (19, 200);
        let p = Polynomial::from_coeffs(vec![2.0, 0.1]);
        let time: f64 = (a..=b).map(|i| p.eval(i as f64) * x[i]).sum();
        let lazy = lazy_transform(n, a, b, &p, &f);
        let freq: f64 = lazy.nonzeros(0.0).iter().map(|&(i, v)| v * xh[i]).sum();
        assert!((time - freq).abs() < 1e-6 * time.abs().max(1.0), "{time} vs {freq}");
    }

    #[test]
    fn structural_size_counts_work_not_span() {
        let s = HybridSignal::range_polynomial(64, 10, 20, Polynomial::constant(1.0));
        assert_eq!(s.structural_size(), 1); // one symbolic constant piece
        assert_eq!(s.covered_len(), 11);
        assert_eq!(s.to_dense().iter().filter(|&&v| v != 0.0).count(), 11);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn bad_range_panics() {
        HybridSignal::range_polynomial(64, 10, 5, Polynomial::constant(1.0));
    }
}
