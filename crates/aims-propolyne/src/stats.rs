//! Statistical aggregates via polynomial range-sums.
//!
//! ProPolyne supports "not only COUNT, SUM and AVERAGE, but also VARIANCE,
//! COVARIANCE and more" (§3.3), and §3.4.1 leans on Shao's observation that
//! "all second order statistical aggregation functions (including
//! hypothesis testing, principle component analysis or SVD, and ANOVA) can
//! be derived from SUM queries of second order polynomials in the measure
//! attributes". This module performs exactly that reduction: every
//! statistic below is assembled from plain polynomial range-sums against
//! the frequency cube, evaluated in the wavelet domain.

use aims_linalg::Matrix;

use crate::cube::AttributeSpace;
use crate::engine::Propolyne;
use crate::query::RangeSumQuery;

/// Statistics engine over one cube + attribute space.
#[derive(Clone, Debug)]
pub struct CubeStats<'a> {
    engine: &'a Propolyne,
    space: &'a AttributeSpace,
}

impl<'a> CubeStats<'a> {
    /// Binds an evaluator and its attribute space.
    ///
    /// # Panics
    /// If the space's dimensions disagree with the cube's.
    pub fn new(engine: &'a Propolyne, space: &'a AttributeSpace) -> Self {
        assert_eq!(engine.cube().dims(), &space.dims[..], "space/cube shape mismatch");
        CubeStats { engine, space }
    }

    /// Tuple count in the bin rectangle.
    pub fn count(&self, ranges: &[(usize, usize)]) -> f64 {
        self.engine.evaluate(&RangeSumQuery::count(ranges.to_vec()))
    }

    /// `Σ x_dim` (in attribute-value units).
    pub fn sum(&self, dim: usize, ranges: &[(usize, usize)]) -> f64 {
        let q = RangeSumQuery::sum_poly(ranges.to_vec(), dim, self.space.value_poly(dim));
        self.engine.evaluate(&q)
    }

    /// `Σ x_dim²`.
    pub fn sum_squares(&self, dim: usize, ranges: &[(usize, usize)]) -> f64 {
        let v = self.space.value_poly(dim);
        let q = RangeSumQuery::sum_poly(ranges.to_vec(), dim, v.mul(&v));
        self.engine.evaluate(&q)
    }

    /// `Σ x_d1 · x_d2` for distinct dimensions.
    pub fn sum_cross(&self, d1: usize, d2: usize, ranges: &[(usize, usize)]) -> f64 {
        let q = RangeSumQuery::sum_product(
            ranges.to_vec(),
            d1,
            self.space.value_poly(d1),
            d2,
            self.space.value_poly(d2),
        );
        self.engine.evaluate(&q)
    }

    /// AVERAGE of `x_dim`; `None` over an empty selection.
    pub fn average(&self, dim: usize, ranges: &[(usize, usize)]) -> Option<f64> {
        let n = self.count(ranges);
        if n <= 0.0 {
            None
        } else {
            Some(self.sum(dim, ranges) / n)
        }
    }

    /// Population VARIANCE of `x_dim`; `None` over an empty selection.
    pub fn variance(&self, dim: usize, ranges: &[(usize, usize)]) -> Option<f64> {
        let n = self.count(ranges);
        if n <= 0.0 {
            return None;
        }
        let mean = self.sum(dim, ranges) / n;
        Some((self.sum_squares(dim, ranges) / n - mean * mean).max(0.0))
    }

    /// Population COVARIANCE of two distinct dimensions; `None` over an
    /// empty selection.
    pub fn covariance(&self, d1: usize, d2: usize, ranges: &[(usize, usize)]) -> Option<f64> {
        let n = self.count(ranges);
        if n <= 0.0 {
            return None;
        }
        let m1 = self.sum(d1, ranges) / n;
        let m2 = self.sum(d2, ranges) / n;
        Some(self.sum_cross(d1, d2, ranges) / n - m1 * m2)
    }

    /// The full covariance matrix over a subset of dimensions — the input
    /// the online component's SVD/PCA needs (§3.4.1), assembled purely
    /// from second-order range-sums.
    ///
    /// Returns `None` over an empty selection.
    pub fn covariance_matrix(&self, dims: &[usize], ranges: &[(usize, usize)]) -> Option<Matrix> {
        let n = self.count(ranges);
        if n <= 0.0 {
            return None;
        }
        let means: Vec<f64> = dims.iter().map(|&d| self.sum(d, ranges) / n).collect();
        let mut cov = Matrix::zeros(dims.len(), dims.len());
        for (a, &da) in dims.iter().enumerate() {
            for (b, &db) in dims.iter().enumerate().skip(a) {
                let second = if da == db {
                    self.sum_squares(da, ranges) / n
                } else {
                    self.sum_cross(da, db, ranges) / n
                };
                let c = second - means[a] * means[b];
                cov[(a, b)] = c;
                cov[(b, a)] = c;
            }
        }
        Some(cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::DataCube;
    use aims_dsp::filters::FilterKind;

    /// Tuples with known statistics, plus the scan-side reference.
    fn setup() -> (Vec<Vec<f64>>, AttributeSpace) {
        let space = AttributeSpace::new(vec![(0.0, 64.0), (0.0, 64.0)], vec![64, 64]);
        let tuples: Vec<Vec<f64>> = (0..800)
            .map(|i| {
                let x = (i * 7 % 64) as f64 + 0.5; // exactly at bin centers
                let y = ((i * 7 % 64) as f64 * 0.5 + (i % 13) as f64) % 64.0;
                let y = y.floor() + 0.5;
                vec![x, y]
            })
            .collect();
        (tuples, space)
    }

    fn reference_stats(
        tuples: &[Vec<f64>],
        space: &AttributeSpace,
        ranges: &[(usize, usize)],
    ) -> (f64, f64, f64, f64, f64) {
        // Compare against bin-center values (the cube's resolution).
        let selected: Vec<(f64, f64)> = tuples
            .iter()
            .filter(|t| {
                (0..2).all(|k| {
                    let b = space.bin(k, t[k]);
                    b >= ranges[k].0 && b <= ranges[k].1
                })
            })
            .map(|t| {
                (space.bin_center(0, space.bin(0, t[0])), space.bin_center(1, space.bin(1, t[1])))
            })
            .collect();
        let n = selected.len() as f64;
        let sum_x: f64 = selected.iter().map(|p| p.0).sum();
        let mean_x = sum_x / n;
        let var_x = selected.iter().map(|p| (p.0 - mean_x) * (p.0 - mean_x)).sum::<f64>() / n;
        let mean_y = selected.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = selected.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum::<f64>() / n;
        (n, sum_x, mean_x, var_x, cov)
    }

    #[test]
    fn all_five_aggregates_match_reference() {
        let (tuples, space) = setup();
        let cube = DataCube::from_tuples(&space, tuples.clone());
        let engine = Propolyne::new(cube.transform(&FilterKind::Db6.filter()));
        let stats = CubeStats::new(&engine, &space);
        let ranges = [(5usize, 55usize), (0usize, 63usize)];
        let (n, sum_x, mean_x, var_x, cov) = reference_stats(&tuples, &space, &ranges);

        let tol = |x: f64| 1e-5 * x.abs().max(1.0);
        assert!((stats.count(&ranges) - n).abs() < tol(n));
        assert!((stats.sum(0, &ranges) - sum_x).abs() < tol(sum_x));
        assert!((stats.average(0, &ranges).unwrap() - mean_x).abs() < tol(mean_x));
        assert!(
            (stats.variance(0, &ranges).unwrap() - var_x).abs() < tol(var_x),
            "var {} vs {}",
            stats.variance(0, &ranges).unwrap(),
            var_x
        );
        assert!(
            (stats.covariance(0, 1, &ranges).unwrap() - cov).abs() < tol(cov).max(1e-3),
            "cov {} vs {}",
            stats.covariance(0, 1, &ranges).unwrap(),
            cov
        );
    }

    #[test]
    fn empty_selection_returns_none() {
        let space = AttributeSpace::new(vec![(0.0, 8.0), (0.0, 8.0)], vec![8, 8]);
        let cube = DataCube::from_tuples(&space, vec![vec![0.1, 0.1]]);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let stats = CubeStats::new(&engine, &space);
        let far = [(7usize, 7usize), (7usize, 7usize)];
        assert!(stats.average(0, &far).is_none());
        assert!(stats.variance(0, &far).is_none());
        assert!(stats.covariance(0, 1, &far).is_none());
        assert!(stats.covariance_matrix(&[0, 1], &far).is_none());
    }

    #[test]
    fn covariance_matrix_is_symmetric_psd_diag() {
        let (tuples, space) = setup();
        let cube = DataCube::from_tuples(&space, tuples);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db6.filter()));
        let stats = CubeStats::new(&engine, &space);
        let ranges = [(0usize, 63usize), (0usize, 63usize)];
        let cov = stats.covariance_matrix(&[0, 1], &ranges).unwrap();
        assert_eq!(cov.shape(), (2, 2));
        assert!((cov[(0, 1)] - cov[(1, 0)]).abs() < 1e-9);
        assert!(cov[(0, 0)] >= 0.0 && cov[(1, 1)] >= 0.0);
        // Diagonal equals the scalar variances.
        assert!((cov[(0, 0)] - stats.variance(0, &ranges).unwrap()).abs() < 1e-6);
        assert!((cov[(1, 1)] - stats.variance(1, &ranges).unwrap()).abs() < 1e-6);
    }

    #[test]
    fn variance_of_constant_column_is_zero() {
        let space = AttributeSpace::new(vec![(0.0, 16.0), (0.0, 16.0)], vec![16, 16]);
        let tuples: Vec<Vec<f64>> = (0..50).map(|i| vec![8.5, (i % 16) as f64 + 0.5]).collect();
        let cube = DataCube::from_tuples(&space, tuples);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db6.filter()));
        let stats = CubeStats::new(&engine, &space);
        let ranges = [(0usize, 15usize), (0usize, 15usize)];
        let v = stats.variance(0, &ranges).unwrap();
        assert!(v.abs() < 1e-6, "variance {v}");
        // Covariance with anything is 0 too.
        let c = stats.covariance(0, 1, &ranges).unwrap();
        assert!(c.abs() < 1e-6, "covariance {c}");
    }
}
