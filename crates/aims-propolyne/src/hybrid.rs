//! Hybrid standard-basis / wavelet-basis ProPolyne (§3.3.1).
//!
//! "We propose to develop a hybrid version of ProPolyne which uses the
//! standard basis in a subset of the dimensions (the standard dimensions)
//! and uses wavelets in all other dimensions. … relational selection and
//! aggregation operators can be used in the standard dimensions to
//! accumulate the results of ProPolyne queries in the other dimensions.
//! Clearly the best choice of hybridization will perform at least as well
//! as a pure relational algorithm or pure ProPolyne."
//!
//! Implementation: the relation is grouped by the (binned) values of the
//! standard dimensions; each group's remaining attributes form a wavelet
//! cube. A query selects matching groups relationally and runs ProPolyne
//! inside each. The cost model counts *touched coefficients* (wavelet
//! side) and *touched tuples* (relational side), so the three plans are
//! comparable; the decomposition chooser of the paper is
//! [`choose_standard_dims`], run at population time.

use std::collections::BTreeMap;

use crate::cube::{AttributeSpace, DataCube};
use crate::engine::Propolyne;
use crate::query::{Monomial, RangeSumQuery};

/// Cost + answer of one evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridAnswer {
    /// The query result.
    pub value: f64,
    /// Wavelet coefficients touched.
    pub coefficients_touched: usize,
    /// Groups (standard-dimension cells) visited.
    pub groups_visited: usize,
}

/// A relation decomposed into standard dimensions + per-group wavelet
/// cubes.
pub struct HybridEngine {
    /// Indices (into the full attribute list) kept in the standard basis.
    standard_dims: Vec<usize>,
    /// Indices transformed with wavelets.
    wavelet_dims: Vec<usize>,
    /// Attribute space of the full relation.
    space: AttributeSpace,
    /// Group key (standard-dim bins) → evaluator over the wavelet dims.
    groups: BTreeMap<Vec<usize>, Propolyne>,
}

impl HybridEngine {
    /// Builds the hybrid decomposition from raw tuples.
    ///
    /// # Panics
    /// If `standard_dims` contains duplicates or out-of-range indices.
    pub fn build(
        space: &AttributeSpace,
        tuples: &[Vec<f64>],
        standard_dims: &[usize],
        filter: &aims_dsp::filters::WaveletFilter,
    ) -> Self {
        let arity = space.arity();
        let mut seen = vec![false; arity];
        for &d in standard_dims {
            assert!(d < arity, "standard dim {d} out of range");
            assert!(!seen[d], "duplicate standard dim {d}");
            seen[d] = true;
        }
        let wavelet_dims: Vec<usize> = (0..arity).filter(|&d| !seen[d]).collect();
        assert!(!wavelet_dims.is_empty(), "at least one wavelet dimension required");

        // Partition tuples by standard-dim bin key.
        let mut buckets: BTreeMap<Vec<usize>, Vec<Vec<f64>>> = BTreeMap::new();
        for t in tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
            let key: Vec<usize> = standard_dims.iter().map(|&d| space.bin(d, t[d])).collect();
            let sub: Vec<f64> = wavelet_dims.iter().map(|&d| t[d]).collect();
            buckets.entry(key).or_default().push(sub);
        }

        let sub_space = AttributeSpace::new(
            wavelet_dims.iter().map(|&d| space.bounds[d]).collect(),
            wavelet_dims.iter().map(|&d| space.dims[d]).collect(),
        );
        let groups = buckets
            .into_iter()
            .map(|(key, rows)| {
                let cube = DataCube::from_tuples(&sub_space, rows);
                (key, Propolyne::new(cube.transform(filter)))
            })
            .collect();

        HybridEngine {
            standard_dims: standard_dims.to_vec(),
            wavelet_dims,
            space: space.clone(),
            groups,
        }
    }

    /// Number of groups materialized.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The standard dimensions.
    pub fn standard_dims(&self) -> &[usize] {
        &self.standard_dims
    }

    /// Evaluates a full-arity range-sum query: relational selection over
    /// the standard dimensions, ProPolyne within each surviving group.
    ///
    /// # Panics
    /// If the query does not match the full attribute space.
    pub fn evaluate(&self, query: &RangeSumQuery) -> HybridAnswer {
        query.validate(&(0..self.space.arity()).map(|k| self.space.dims[k]).collect::<Vec<_>>());
        // Project the query onto the wavelet dims.
        let sub_ranges: Vec<(usize, usize)> =
            self.wavelet_dims.iter().map(|&d| query.ranges[d]).collect();

        let mut value = 0.0;
        let mut coefficients = 0usize;
        let mut groups = 0usize;
        'group: for (key, engine) in &self.groups {
            // Relational selection on the standard dims.
            for (pos, &d) in self.standard_dims.iter().enumerate() {
                let (a, b) = query.ranges[d];
                if key[pos] < a || key[pos] > b {
                    continue 'group;
                }
            }
            groups += 1;

            // Each term: standard-dim factors evaluate at the group key;
            // wavelet-dim factors stay polynomial.
            let sub_terms: Vec<Monomial> = query
                .terms
                .iter()
                .map(|t| {
                    let mut coef = t.coef;
                    for (pos, &d) in self.standard_dims.iter().enumerate() {
                        coef *= t.factors[d].eval(key[pos] as f64);
                    }
                    Monomial {
                        coef,
                        factors: self.wavelet_dims.iter().map(|&d| t.factors[d].clone()).collect(),
                    }
                })
                .collect();
            let sub_query = RangeSumQuery { ranges: sub_ranges.clone(), terms: sub_terms };
            let prepared = engine.prepare(&sub_query);
            coefficients += prepared.nnz();
            value += engine.evaluate_prepared(&prepared);
        }
        HybridAnswer { value, coefficients_touched: coefficients, groups_visited: groups }
    }
}

/// Population-time chooser: dimensions whose distinct-bin count is at most
/// `max_cardinality` become standard dimensions (the paper's "algorithm
/// which efficiently identifies good dimension decompositions as part of
/// the database population process"). At least one dimension always stays
/// on the wavelet side.
pub fn choose_standard_dims(
    space: &AttributeSpace,
    tuples: &[Vec<f64>],
    max_cardinality: usize,
) -> Vec<usize> {
    let arity = space.arity();
    let mut distinct: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); arity];
    for t in tuples {
        for (k, set) in distinct.iter_mut().enumerate() {
            set.insert(space.bin(k, t[k]));
        }
    }
    let mut chosen: Vec<usize> =
        (0..arity).filter(|&k| distinct[k].len() <= max_cardinality).collect();
    if chosen.len() == arity {
        // Keep the highest-cardinality dimension on the wavelet side.
        let keep = (0..arity).max_by_key(|&k| distinct[k].len()).unwrap();
        chosen.retain(|&k| k != keep);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use aims_dsp::filters::FilterKind;
    use aims_dsp::poly::Polynomial;

    /// Sensor-style relation: (sensor_id, time, value) with few sensors.
    fn relation() -> (AttributeSpace, Vec<Vec<f64>>) {
        let space =
            AttributeSpace::new(vec![(0.0, 4.0), (0.0, 256.0), (0.0, 64.0)], vec![4, 256, 64]);
        let tuples: Vec<Vec<f64>> = (0..2000)
            .map(|i| {
                let sensor = (i % 4) as f64 + 0.5;
                let time = (i / 4) as f64 % 256.0 + 0.5;
                let value = (32.0 + 20.0 * ((i as f64) * 0.01).sin()).floor() + 0.5;
                vec![sensor, time, value]
            })
            .collect();
        (space, tuples)
    }

    #[test]
    fn hybrid_matches_scan() {
        let (space, tuples) = relation();
        let hybrid = HybridEngine::build(&space, &tuples, &[0], &FilterKind::Db4.filter());
        let cube = DataCube::from_tuples(&space, tuples.clone());
        let q = RangeSumQuery::count(vec![(1, 2), (10, 200), (0, 63)]);
        let ans = hybrid.evaluate(&q);
        assert!((ans.value - q.eval_scan(&cube)).abs() < 1e-6 * ans.value.abs().max(1.0));
        assert_eq!(ans.groups_visited, 2);
    }

    #[test]
    fn hybrid_polynomial_terms_match_scan() {
        let (space, tuples) = relation();
        let hybrid = HybridEngine::build(&space, &tuples, &[0], &FilterKind::Db6.filter());
        let cube = DataCube::from_tuples(&space, tuples.clone());
        // Σ sensor_id · value over a sub-rectangle: involves a standard dim
        // factor and a wavelet dim factor.
        let q = RangeSumQuery::sum_product(
            vec![(0, 3), (0, 255), (5, 60)],
            0,
            Polynomial::monomial(1),
            2,
            Polynomial::monomial(1),
        );
        let ans = hybrid.evaluate(&q);
        let expect = q.eval_scan(&cube);
        assert!(
            (ans.value - expect).abs() < 1e-5 * expect.abs().max(1.0),
            "{} vs {expect}",
            ans.value
        );
    }

    #[test]
    fn selective_standard_predicate_prunes_groups() {
        let (space, tuples) = relation();
        let hybrid = HybridEngine::build(&space, &tuples, &[0], &FilterKind::Db4.filter());
        let narrow = RangeSumQuery::count(vec![(1, 1), (0, 255), (0, 63)]);
        let wide = RangeSumQuery::count(vec![(0, 3), (0, 255), (0, 63)]);
        let a_narrow = hybrid.evaluate(&narrow);
        let a_wide = hybrid.evaluate(&wide);
        assert_eq!(a_narrow.groups_visited, 1);
        assert_eq!(a_wide.groups_visited, 4);
        assert!(a_narrow.coefficients_touched < a_wide.coefficients_touched);
    }

    #[test]
    fn hybrid_touches_fewer_coefficients_than_pure_propolyne() {
        // Pure ProPolyne over (sensor, time, value) pays a per-dimension
        // factor for the 4-bin sensor dimension; the hybrid removes it
        // entirely for single-sensor queries.
        let (space, tuples) = relation();
        let hybrid = HybridEngine::build(&space, &tuples, &[0], &FilterKind::Db4.filter());
        let cube = DataCube::from_tuples(&space, tuples);
        let pure = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let q = RangeSumQuery::count(vec![(1, 1), (10, 200), (5, 60)]);
        let hybrid_cost = hybrid.evaluate(&q).coefficients_touched;
        let pure_cost = pure.prepare(&q).nnz();
        assert!(
            hybrid_cost < pure_cost,
            "hybrid {hybrid_cost} !< pure {pure_cost} for a selective sensor query"
        );
    }

    #[test]
    fn chooser_picks_low_cardinality_dims() {
        let (space, tuples) = relation();
        let chosen = choose_standard_dims(&space, &tuples, 16);
        assert_eq!(chosen, vec![0]);
        // With a huge threshold everything qualifies, but one wavelet dim
        // must remain.
        let all = choose_standard_dims(&space, &tuples, usize::MAX);
        assert_eq!(all.len(), 2);
        assert!(!all.contains(&1)); // time has the highest cardinality
    }

    #[test]
    #[should_panic(expected = "at least one wavelet dimension")]
    fn all_standard_dims_panics() {
        let (space, tuples) = relation();
        HybridEngine::build(&space, &tuples, &[0, 1, 2], &FilterKind::Haar.filter());
    }
}
