//! Multidimensional data cubes and their wavelet transforms.
//!
//! ProPolyne "treats all dimensions, including measure dimensions,
//! symmetrically" (§3.3): the dataset is modeled as a *frequency
//! distribution* `f` over a d-dimensional grid — `f(x)` counts the tuples
//! whose (binned) attribute values are `x` — and every aggregate becomes a
//! polynomial range-sum against `f`. The cube is transformed once, per
//! dimension, with an orthonormal wavelet filter (the tensor-product
//! "standard decomposition"), and queries are answered in that domain.

use aims_dsp::dwt::{dwt_standard_md, idwt_standard_md, is_power_of_two};
use aims_dsp::filters::WaveletFilter;
use aims_dsp::poly::Polynomial;

/// Maps real attribute values onto the cube's bin grid and back.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributeSpace {
    /// Per-dimension `[lo, hi)` value bounds.
    pub bounds: Vec<(f64, f64)>,
    /// Per-dimension bin counts (powers of two).
    pub dims: Vec<usize>,
}

impl AttributeSpace {
    /// Creates a space; validates shapes.
    ///
    /// # Panics
    /// If arities differ, any dimension is not a power of two, or any
    /// bound is empty.
    pub fn new(bounds: Vec<(f64, f64)>, dims: Vec<usize>) -> Self {
        assert_eq!(bounds.len(), dims.len(), "bounds/dims arity mismatch");
        for (k, (&(lo, hi), &n)) in bounds.iter().zip(&dims).enumerate() {
            assert!(lo < hi, "dimension {k}: empty bound [{lo},{hi})");
            assert!(is_power_of_two(n), "dimension {k}: {n} bins is not a power of two");
        }
        AttributeSpace { bounds, dims }
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Bin index of a value along dimension `k` (clamped to range).
    pub fn bin(&self, k: usize, value: f64) -> usize {
        let (lo, hi) = self.bounds[k];
        let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * self.dims[k] as f64) as usize).min(self.dims[k] - 1)
    }

    /// Center value of bin `i` along dimension `k`.
    pub fn bin_center(&self, k: usize, i: usize) -> f64 {
        let (lo, hi) = self.bounds[k];
        lo + (i as f64 + 0.5) * (hi - lo) / self.dims[k] as f64
    }

    /// The affine polynomial mapping a bin index to its center value along
    /// dimension `k` — feed this to polynomial range-sums over *values*.
    pub fn value_poly(&self, k: usize) -> Polynomial {
        let (lo, hi) = self.bounds[k];
        let step = (hi - lo) / self.dims[k] as f64;
        Polynomial::from_coeffs(vec![lo + 0.5 * step, step])
    }

    /// The inclusive bin range covering the value interval `[lo, hi]`
    /// along dimension `k`.
    pub fn bin_range(&self, k: usize, lo: f64, hi: f64) -> (usize, usize) {
        assert!(lo <= hi, "empty value range");
        (self.bin(k, lo), self.bin(k, hi))
    }
}

/// A dense d-dimensional cube (row-major).
#[derive(Clone, Debug, PartialEq)]
pub struct DataCube {
    dims: Vec<usize>,
    values: Vec<f64>,
    strides: Vec<usize>,
}

impl DataCube {
    /// A zero cube with the given power-of-two dimensions.
    ///
    /// # Panics
    /// If any dimension is not a power of two or there are none.
    pub fn zeros(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "cube needs at least one dimension");
        for &d in dims {
            assert!(is_power_of_two(d), "dimension {d} not a power of two");
        }
        let total: usize = dims.iter().product();
        let mut strides = vec![1usize; dims.len()];
        for a in (0..dims.len() - 1).rev() {
            strides[a] = strides[a + 1] * dims[a + 1];
        }
        DataCube { dims: dims.to_vec(), values: vec![0.0; total], strides }
    }

    /// Builds a frequency cube from tuples: each tuple is binned per
    /// dimension and its cell incremented.
    pub fn from_tuples(space: &AttributeSpace, tuples: impl IntoIterator<Item = Vec<f64>>) -> Self {
        let mut cube = DataCube::zeros(&space.dims);
        for t in tuples {
            assert_eq!(t.len(), space.arity(), "tuple arity mismatch");
            let idx: Vec<usize> = t.iter().enumerate().map(|(k, &v)| space.bin(k, v)).collect();
            *cube.at_mut(&idx) += 1.0;
        }
        cube
    }

    /// Dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Cubes are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat row-major offset of a multi-index.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index arity mismatch");
        idx.iter()
            .zip(&self.dims)
            .zip(&self.strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bound {d}");
                i * s
            })
            .sum()
    }

    /// Cell value.
    pub fn at(&self, idx: &[usize]) -> f64 {
        self.values[self.offset(idx)]
    }

    /// Mutable cell access.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f64 {
        let o = self.offset(idx);
        &mut self.values[o]
    }

    /// Raw flat values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable flat values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sum of all cells (for a frequency cube: the tuple count).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sum of squared cells.
    pub fn energy(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Tensor-product (standard-decomposition) wavelet transform.
    pub fn transform(&self, filter: &WaveletFilter) -> WaveletCube {
        WaveletCube {
            dims: self.dims.clone(),
            coeffs: dwt_standard_md(&self.values, &self.dims, filter),
            strides: self.strides.clone(),
            filter: filter.clone(),
        }
    }
}

/// A wavelet-transformed cube.
#[derive(Clone, Debug)]
pub struct WaveletCube {
    dims: Vec<usize>,
    coeffs: Vec<f64>,
    strides: Vec<usize>,
    filter: WaveletFilter,
}

impl WaveletCube {
    /// Rebuilds a cube from its flat coefficient array — the reopen path
    /// for coefficients read back from durable storage. The strides are
    /// recomputed from `dims` (row-major, as [`DataCube::zeros`] lays
    /// them out), so a cube round-tripped through a device is
    /// indistinguishable from the original transform.
    ///
    /// # Panics
    /// If `dims` is empty, any dimension is not a power of two, or the
    /// coefficient count does not match the cube volume.
    pub fn from_coeffs(dims: &[usize], coeffs: Vec<f64>, filter: WaveletFilter) -> Self {
        assert!(!dims.is_empty(), "cube needs at least one dimension");
        for &d in dims {
            assert!(is_power_of_two(d), "dimension {d} not a power of two");
        }
        let total: usize = dims.iter().product();
        assert_eq!(coeffs.len(), total, "coefficient count does not match cube volume");
        let mut strides = vec![1usize; dims.len()];
        for a in (0..dims.len() - 1).rev() {
            strides[a] = strides[a + 1] * dims[a + 1];
        }
        WaveletCube { dims: dims.to_vec(), coeffs, strides, filter }
    }

    /// Dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The filter that produced (and inverts) this transform.
    pub fn filter(&self) -> &WaveletFilter {
        &self.filter
    }

    /// Flat coefficient array (row-major over per-dimension flat DWT
    /// layouts).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Flat offset of a per-dimension coefficient multi-index.
    pub fn offset(&self, idx: &[usize]) -> usize {
        idx.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum()
    }

    /// Inverse transform back to the data cube.
    pub fn inverse(&self) -> DataCube {
        DataCube {
            dims: self.dims.clone(),
            values: idwt_standard_md(&self.coeffs, &self.dims, &self.filter),
            strides: self.strides.clone(),
        }
    }

    /// Total coefficient energy (equals the data energy — Parseval).
    pub fn energy(&self) -> f64 {
        self.coeffs.iter().map(|c| c * c).sum()
    }

    /// Zeroes all but the `k` largest-magnitude coefficients, returning a
    /// synopsis cube (the data-approximation baseline of §3.3).
    pub fn top_k_synopsis(&self, k: usize) -> WaveletCube {
        let mut mags: Vec<f64> = self.coeffs.iter().map(|c| c.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = if k == 0 {
            f64::INFINITY
        } else if k >= mags.len() {
            0.0
        } else {
            mags[k - 1]
        };
        let mut kept = 0usize;
        let coeffs = self
            .coeffs
            .iter()
            .map(|&c| {
                if c.abs() >= threshold && kept < k {
                    kept += 1;
                    c
                } else {
                    0.0
                }
            })
            .collect();
        WaveletCube {
            dims: self.dims.clone(),
            coeffs,
            strides: self.strides.clone(),
            filter: self.filter.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aims_dsp::filters::FilterKind;

    fn space2() -> AttributeSpace {
        AttributeSpace::new(vec![(0.0, 10.0), (-1.0, 1.0)], vec![8, 4])
    }

    #[test]
    fn binning_roundtrip() {
        let s = space2();
        assert_eq!(s.bin(0, 0.0), 0);
        assert_eq!(s.bin(0, 9.999), 7);
        assert_eq!(s.bin(0, 100.0), 7); // clamp
        assert_eq!(s.bin(1, -1.0), 0);
        assert_eq!(s.bin(1, 0.99), 3);
        // Bin center maps back into the same bin.
        for k in 0..2 {
            for i in 0..s.dims[k] {
                assert_eq!(s.bin(k, s.bin_center(k, i)), i, "dim {k} bin {i}");
            }
        }
    }

    #[test]
    fn value_poly_matches_bin_center() {
        let s = space2();
        for k in 0..2 {
            let p = s.value_poly(k);
            for i in 0..s.dims[k] {
                assert!((p.eval(i as f64) - s.bin_center(k, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn from_tuples_counts() {
        let s = space2();
        let cube = DataCube::from_tuples(&s, vec![vec![1.0, 0.0], vec![1.2, 0.1], vec![9.0, -0.9]]);
        assert_eq!(cube.total(), 3.0);
        assert_eq!(cube.at(&[s.bin(0, 1.0), s.bin(1, 0.0)]), 2.0);
        assert_eq!(cube.at(&[7, 0]), 1.0);
    }

    #[test]
    fn transform_roundtrip_and_parseval() {
        let s = space2();
        let mut cube = DataCube::zeros(&s.dims);
        for (i, v) in cube.values_mut().iter_mut().enumerate() {
            *v = ((i * 17 + 3) % 11) as f64 - 5.0;
        }
        for kind in [FilterKind::Haar, FilterKind::Db4] {
            let wc = cube.transform(&kind.filter());
            assert!((wc.energy() - cube.energy()).abs() < 1e-8, "{kind:?}");
            let back = wc.inverse();
            for (a, b) in cube.values().iter().zip(back.values()) {
                assert!((a - b).abs() < 1e-9, "{kind:?}");
            }
        }
    }

    #[test]
    fn synopsis_keeps_top_coefficients() {
        let s = space2();
        let mut cube = DataCube::zeros(&s.dims);
        cube.values_mut()[5] = 100.0;
        cube.values_mut()[20] = 1.0;
        let wc = cube.transform(&FilterKind::Haar.filter());
        let syn = wc.top_k_synopsis(4);
        let kept = syn.coeffs().iter().filter(|c| **c != 0.0).count();
        assert!(kept <= 4);
        // Zero-coefficient synopsis is all zeros; full synopsis is exact.
        assert!(wc.top_k_synopsis(0).coeffs().iter().all(|&c| c == 0.0));
        let full = wc.top_k_synopsis(1000);
        assert_eq!(full.coeffs(), wc.coeffs());
    }

    #[test]
    fn offsets_are_row_major() {
        let cube = DataCube::zeros(&[4, 8]);
        assert_eq!(cube.offset(&[0, 0]), 0);
        assert_eq!(cube.offset(&[0, 7]), 7);
        assert_eq!(cube.offset(&[1, 0]), 8);
        assert_eq!(cube.offset(&[3, 7]), 31);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn bad_dims_panic() {
        DataCube::zeros(&[3]);
    }

    #[test]
    #[should_panic(expected = "out of bound")]
    fn bad_index_panics() {
        DataCube::zeros(&[4, 4]).at(&[4, 0]);
    }
}
