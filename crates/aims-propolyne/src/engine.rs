//! The ProPolyne evaluator: exact, approximate and progressive polynomial
//! range-sums entirely in the wavelet domain.
//!
//! For each product term the per-dimension query vectors go through the
//! lazy wavelet transform; the multidimensional query coefficient at a
//! tensor index is the product of the per-dimension coefficients. The
//! answer is the inner product with the stored cube coefficients. For
//! progressive evaluation, terms are consumed in decreasing |query
//! coefficient| order — "using the most important query wavelet
//! coefficients first provides excellent approximate results and
//! guaranteed error bounds with very little I/O" (§3.3); the error bound
//! is Cauchy–Schwarz against the cube's (precomputable) energy.

use std::collections::HashMap;

use aims_telemetry::{global, span};

use crate::cube::WaveletCube;
use crate::lazy::lazy_transform;
use crate::query::RangeSumQuery;

/// A prepared (transformed) query: sparse coefficients in the cube's flat
/// layout, stored structure-of-arrays so the inner-product kernels stream
/// offsets and weights from separate contiguous slices (the offset scan of
/// a sorted merge touches no weight cache lines, and the multiply-add loop
/// reads `weights` sequentially).
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    /// Flat coefficient offsets, strictly ascending.
    pub indices: Vec<usize>,
    /// Weights; `weights[k]` pairs with `indices[k]`.
    pub weights: Vec<f64>,
    /// Total lazy-transform work across dimensions and terms.
    pub transform_work: usize,
}

impl PreparedQuery {
    /// Number of nonzero query coefficients.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Energy of the query vector (squared L2 norm).
    pub fn energy(&self) -> f64 {
        self.weights.iter().map(|w| w * w).sum()
    }

    /// The `(offset, weight)` pairs in ascending offset order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices.iter().copied().zip(self.weights.iter().copied())
    }
}

/// One step of a progressive evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressStep {
    /// Query coefficients consumed so far.
    pub coefficients_used: usize,
    /// Running estimate.
    pub estimate: f64,
    /// Absolute error against the exact answer (available in experiments;
    /// a deployed system would expose only the bound).
    pub abs_error: f64,
    /// Cauchy–Schwarz guaranteed bound on the remaining error.
    pub guaranteed_bound: f64,
}

/// A full progressive run.
#[derive(Clone, Debug)]
pub struct ProgressiveEvaluation {
    /// The exact answer (the final estimate).
    pub exact: f64,
    /// One step per consumed coefficient (ordered most-important-first).
    pub steps: Vec<ProgressStep>,
}

impl ProgressiveEvaluation {
    /// Smallest number of coefficients after which the *relative* error
    /// stays below `rel`; `None` if never.
    pub fn coefficients_for_relative_error(&self, rel: f64) -> Option<usize> {
        let scale = self.exact.abs().max(1e-12);
        // Find the last step that violates the target; the answer is the
        // step after it (error is not monotone in general).
        let mut satisfied_from = None;
        for (i, s) in self.steps.iter().enumerate().rev() {
            if s.abs_error / scale > rel {
                break;
            }
            satisfied_from = Some(i);
        }
        satisfied_from.map(|i| self.steps[i].coefficients_used)
    }
}

/// The evaluator bound to one wavelet cube.
///
/// ```
/// use aims_dsp::filters::FilterKind;
/// use aims_propolyne::cube::{AttributeSpace, DataCube};
/// use aims_propolyne::engine::Propolyne;
/// use aims_propolyne::query::RangeSumQuery;
///
/// let space = AttributeSpace::new(vec![(0.0, 8.0), (0.0, 8.0)], vec![8, 8]);
/// let cube = DataCube::from_tuples(&space, vec![
///     vec![1.5, 2.5], vec![1.5, 2.5], vec![6.5, 7.5],
/// ]);
/// let engine = Propolyne::new(cube.transform(&FilterKind::Haar.filter()));
/// let q = RangeSumQuery::count(vec![(0, 3), (0, 3)]);
/// assert!((engine.evaluate(&q) - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Propolyne {
    cube: WaveletCube,
    data_energy: f64,
}

impl Propolyne {
    /// Wraps a transformed cube (precomputing its energy for the error
    /// bounds).
    pub fn new(cube: WaveletCube) -> Self {
        let data_energy = cube.energy();
        Propolyne { cube, data_energy }
    }

    /// The underlying cube.
    pub fn cube(&self) -> &WaveletCube {
        &self.cube
    }

    /// Transforms a query into its sparse wavelet-domain form via the lazy
    /// wavelet transform (per dimension, per term).
    ///
    /// # Panics
    /// If the query does not validate against the cube.
    pub fn prepare(&self, query: &RangeSumQuery) -> PreparedQuery {
        let _span = span!("propolyne.query.prepare");
        query.validate(self.cube.dims());
        let dims = self.cube.dims();
        let filter = self.cube.filter();
        let mut combined: HashMap<usize, f64> = HashMap::new();
        let mut work = 0usize;

        for term in &query.terms {
            // Lazy-transform each dimension's factor restricted to its
            // range.
            let per_dim: Vec<Vec<(usize, f64)>> = (0..dims.len())
                .map(|k| {
                    let (a, b) = query.ranges[k];
                    let lt = lazy_transform(dims[k], a, b, &term.factors[k], filter);
                    work += lt.work;
                    lt.nonzeros(0.0)
                })
                .collect();

            // Tensor-product expansion (odometer over per-dim nonzeros).
            if per_dim.iter().any(|v| v.is_empty()) {
                continue;
            }
            let mut pos = vec![0usize; dims.len()];
            loop {
                let mut offset = 0usize;
                let mut weight = term.coef;
                for (k, &p) in pos.iter().enumerate() {
                    let (i, w) = per_dim[k][p];
                    offset += i * stride(dims, k);
                    weight *= w;
                }
                if weight != 0.0 {
                    *combined.entry(offset).or_insert(0.0) += weight;
                }
                // Increment.
                let mut k = dims.len();
                loop {
                    if k == 0 {
                        pos.clear();
                        break;
                    }
                    k -= 1;
                    if pos[k] + 1 < per_dim[k].len() {
                        pos[k] += 1;
                        for p in pos.iter_mut().skip(k + 1) {
                            *p = 0;
                        }
                        break;
                    }
                }
                if pos.is_empty() {
                    break;
                }
            }
        }

        let mut entries: Vec<(usize, f64)> =
            combined.into_iter().filter(|(_, w)| *w != 0.0).collect();
        entries.sort_by_key(|&(i, _)| i);
        let telemetry = global();
        telemetry.counter("propolyne.query.prepared").inc();
        telemetry.counter("propolyne.query.transform_work").add(work as u64);
        telemetry.histogram("propolyne.query.nnz").record(entries.len() as u64);
        let (indices, weights) = entries.into_iter().unzip();
        PreparedQuery { indices, weights, transform_work: work }
    }

    /// Exact evaluation.
    pub fn evaluate(&self, query: &RangeSumQuery) -> f64 {
        let _span = span!("propolyne.query.evaluate");
        let prepared = self.prepare(query);
        self.evaluate_prepared(&prepared)
    }

    /// Exact evaluation of a prepared query.
    pub fn evaluate_prepared(&self, prepared: &PreparedQuery) -> f64 {
        global().counter("propolyne.query.coefficients_retrieved").add(prepared.nnz() as u64);
        let coeffs = self.cube.coeffs();
        // Single accumulator, ascending offset order — the bit-for-bit
        // reference every other evaluation path reproduces.
        prepared.indices.iter().zip(&prepared.weights).map(|(&i, &w)| w * coeffs[i]).sum()
    }

    /// Progressive evaluation: consume query coefficients in decreasing
    /// magnitude, recording the estimate, true error and guaranteed bound
    /// after each.
    pub fn progressive(&self, query: &RangeSumQuery) -> ProgressiveEvaluation {
        let _span = span!("propolyne.query.progressive");
        let prepared = self.prepare(query);
        let coeffs = self.cube.coeffs();
        let exact = self.evaluate_prepared(&prepared);

        let mut order: Vec<(usize, f64)> = prepared.entries().collect();
        order.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());

        // Suffix query energy for the Cauchy–Schwarz bound.
        let mut suffix_energy = vec![0.0; order.len() + 1];
        for (i, &(_, w)) in order.iter().enumerate().rev() {
            suffix_energy[i] = suffix_energy[i + 1] + w * w;
        }

        let mut estimate = 0.0;
        let mut steps = Vec::with_capacity(order.len());
        let scale = exact.abs().max(1e-12);
        let step_error = global().histogram_f64("propolyne.progressive.step_rel_error");
        for (i, &(idx, w)) in order.iter().enumerate() {
            estimate += w * coeffs[idx];
            let abs_error = (estimate - exact).abs();
            step_error.record_f64(abs_error / scale);
            steps.push(ProgressStep {
                coefficients_used: i + 1,
                estimate,
                abs_error,
                guaranteed_bound: (suffix_energy[i + 1] * self.data_energy).sqrt(),
            });
        }
        global().counter("propolyne.progressive.steps").add(steps.len() as u64);
        ProgressiveEvaluation { exact, steps }
    }
}

fn stride(dims: &[usize], k: usize) -> usize {
    dims[k + 1..].iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{AttributeSpace, DataCube};
    use crate::query::{Monomial, RangeSumQuery};
    use aims_dsp::filters::FilterKind;
    use aims_dsp::poly::Polynomial;

    /// A deterministic pseudo-random 2-D frequency cube.
    fn cube_2d(nx: usize, ny: usize, seed: u64) -> DataCube {
        let mut cube = DataCube::zeros(&[nx, ny]);
        let mut state = seed.max(1);
        for v in cube.values_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 7) as f64;
        }
        cube
    }

    #[test]
    fn exact_count_matches_scan_all_filters() {
        let cube = cube_2d(32, 16, 3);
        for kind in FilterKind::ALL {
            let engine = Propolyne::new(cube.transform(&kind.filter()));
            let q = RangeSumQuery::count(vec![(3, 25), (2, 13)]);
            let got = engine.evaluate(&q);
            let expect = q.eval_scan(&cube);
            assert!(
                (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "{kind:?}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn exact_linear_and_quadratic_sums_match_scan() {
        let cube = cube_2d(64, 32, 9);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db6.filter()));
        for q in [
            RangeSumQuery::sum_poly(vec![(5, 60), (0, 31)], 0, Polynomial::monomial(1)),
            RangeSumQuery::sum_poly(vec![(0, 63), (7, 20)], 1, Polynomial::monomial(2)),
            RangeSumQuery::sum_product(
                vec![(10, 50), (3, 28)],
                0,
                Polynomial::monomial(1),
                1,
                Polynomial::monomial(1),
            ),
        ] {
            let got = engine.evaluate(&q);
            let expect = q.eval_scan(&cube);
            assert!((got - expect).abs() < 1e-5 * expect.abs().max(1.0), "{got} vs {expect}");
        }
    }

    #[test]
    fn multi_term_queries_combine() {
        let cube = cube_2d(16, 16, 5);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let mut q = RangeSumQuery::count(vec![(0, 15), (0, 15)]);
        q.terms.push(Monomial::single(2, 0, Polynomial::from_coeffs(vec![0.0, 2.0])));
        let got = engine.evaluate(&q);
        let expect = q.eval_scan(&cube);
        assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }

    #[test]
    fn prepared_query_is_sparse_under_moment_condition() {
        let cube = cube_2d(256, 256, 11);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let q = RangeSumQuery::sum_poly(vec![(17, 200), (30, 222)], 0, Polynomial::monomial(1));
        let prepared = engine.prepare(&q);
        // Per dim O(filter · log n) → product ~ (4·9)² ≈ 1300 max; the
        // dense vector would be 65 536.
        assert!(prepared.nnz() < 4000, "nnz {}", prepared.nnz());
    }

    #[test]
    fn progressive_converges_and_bound_holds() {
        let cube = cube_2d(64, 64, 7);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let q = RangeSumQuery::count(vec![(5, 50), (10, 60)]);
        let run = engine.progressive(&q);
        let exact = q.eval_scan(&cube);
        assert!((run.exact - exact).abs() < 1e-6 * exact.max(1.0));
        // Final step is exact; bound dominates the true error everywhere.
        let last = run.steps.last().unwrap();
        assert!(last.abs_error < 1e-6 * exact.max(1.0));
        for s in &run.steps {
            assert!(
                s.abs_error <= s.guaranteed_bound + 1e-6 * exact.max(1.0),
                "bound violated at {}: err {} bound {}",
                s.coefficients_used,
                s.abs_error,
                s.guaranteed_bound
            );
        }
    }

    #[test]
    fn progressive_front_loads_accuracy() {
        let cube = cube_2d(128, 64, 13);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let q = RangeSumQuery::count(vec![(9, 100), (5, 55)]);
        let run = engine.progressive(&q);
        let n = run.steps.len();
        // Error after 25% of coefficients should be well under the initial
        // magnitude (the "accurate long before complete" claim).
        let early = &run.steps[n / 4];
        assert!(
            early.abs_error < 0.1 * run.exact.abs().max(1.0),
            "early error {} vs exact {}",
            early.abs_error,
            run.exact
        );
        let k = run.coefficients_for_relative_error(0.01);
        assert!(k.is_some() && k.unwrap() < n, "k={k:?} of {n}");
    }

    #[test]
    fn full_domain_count_uses_single_coefficient() {
        // COUNT over the whole domain = total, needs only the root
        // coefficient per dimension.
        let cube = cube_2d(32, 32, 21);
        let engine = Propolyne::new(cube.transform(&FilterKind::Haar.filter()));
        let q = RangeSumQuery::count(vec![(0, 31), (0, 31)]);
        let prepared = engine.prepare(&q);
        assert_eq!(prepared.nnz(), 1, "offsets: {:?}", prepared.indices);
        assert!((engine.evaluate(&q) - cube.total()).abs() < 1e-8);
    }

    #[test]
    fn one_dimensional_cube_works() {
        let mut cube = DataCube::zeros(&[128]);
        for (i, v) in cube.values_mut().iter_mut().enumerate() {
            *v = (i % 5) as f64;
        }
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let q = RangeSumQuery::sum_poly(vec![(10, 90)], 0, Polynomial::monomial(1));
        let got = engine.evaluate(&q);
        let expect = q.eval_scan(&cube);
        assert!((got - expect).abs() < 1e-6 * expect.abs());
    }

    #[test]
    fn tuple_loaded_cube_end_to_end() {
        let space = AttributeSpace::new(vec![(0.0, 100.0), (0.0, 1.0)], vec![64, 16]);
        let tuples: Vec<Vec<f64>> =
            (0..500).map(|i| vec![(i * 7 % 100) as f64, ((i * 13) % 16) as f64 / 16.0]).collect();
        let cube = DataCube::from_tuples(&space, tuples);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let q = RangeSumQuery::count(vec![space.bin_range(0, 20.0, 80.0), (0, 15)]);
        let got = engine.evaluate(&q);
        let expect = q.eval_scan(&cube);
        assert!((got - expect).abs() < 1e-6 * expect);
    }
}
