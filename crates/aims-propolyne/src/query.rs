//! Polynomial range-sum queries.
//!
//! A query asks for `Σ_{x ∈ R} p(x) · f(x)` where `R` is a hyper-rectangle
//! of bins and `p` is a polynomial in the bin coordinates. Following the
//! tensor structure ProPolyne exploits, `p` is kept as a sum of *product
//! terms* `coef · Π_k p_k(x_k)` — every multivariate polynomial decomposes
//! this way, and each term's query vector is a tensor product of
//! one-dimensional piecewise polynomials.

use aims_dsp::poly::Polynomial;

use crate::cube::DataCube;

/// One product term `coef · Π_k factors[k](x_k)`.
#[derive(Clone, Debug)]
pub struct Monomial {
    /// Scalar multiplier.
    pub coef: f64,
    /// One polynomial factor per dimension (constant 1 for uninvolved
    /// dimensions).
    pub factors: Vec<Polynomial>,
}

impl Monomial {
    /// The all-ones term (COUNT).
    pub fn ones(arity: usize) -> Self {
        Monomial { coef: 1.0, factors: vec![Polynomial::constant(1.0); arity] }
    }

    /// A term with one non-trivial factor.
    pub fn single(arity: usize, dim: usize, poly: Polynomial) -> Self {
        assert!(dim < arity, "dimension {dim} out of arity {arity}");
        let mut m = Monomial::ones(arity);
        m.factors[dim] = poly;
        m
    }

    /// A term with two non-trivial factors (e.g. for covariances).
    pub fn pair(arity: usize, d1: usize, p1: Polynomial, d2: usize, p2: Polynomial) -> Self {
        assert!(d1 != d2, "pair term needs distinct dimensions");
        let mut m = Monomial::single(arity, d1, p1);
        m.factors[d2] = p2;
        m
    }

    /// Highest factor degree — drives the filter's required vanishing
    /// moments.
    pub fn max_degree(&self) -> usize {
        self.factors.iter().map(|p| p.degree()).max().unwrap_or(0)
    }

    /// Evaluates the term at a bin multi-index.
    pub fn eval(&self, idx: &[usize]) -> f64 {
        self.coef * self.factors.iter().zip(idx).map(|(p, &i)| p.eval(i as f64)).product::<f64>()
    }
}

/// A polynomial range-sum query: a bin hyper-rectangle and a polynomial
/// measure in product-term form.
#[derive(Clone, Debug)]
pub struct RangeSumQuery {
    /// Inclusive bin ranges, one per dimension.
    pub ranges: Vec<(usize, usize)>,
    /// The measure polynomial as a sum of product terms.
    pub terms: Vec<Monomial>,
}

impl RangeSumQuery {
    /// COUNT over a bin hyper-rectangle.
    pub fn count(ranges: Vec<(usize, usize)>) -> Self {
        let arity = ranges.len();
        RangeSumQuery { ranges, terms: vec![Monomial::ones(arity)] }
    }

    /// `Σ p(x_dim)` over the rectangle.
    pub fn sum_poly(ranges: Vec<(usize, usize)>, dim: usize, poly: Polynomial) -> Self {
        let arity = ranges.len();
        RangeSumQuery { ranges, terms: vec![Monomial::single(arity, dim, poly)] }
    }

    /// `Σ p(x_d1)·q(x_d2)` over the rectangle.
    pub fn sum_product(
        ranges: Vec<(usize, usize)>,
        d1: usize,
        p1: Polynomial,
        d2: usize,
        p2: Polynomial,
    ) -> Self {
        let arity = ranges.len();
        RangeSumQuery { ranges, terms: vec![Monomial::pair(arity, d1, p1, d2, p2)] }
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.ranges.len()
    }

    /// Highest polynomial degree across terms.
    pub fn max_degree(&self) -> usize {
        self.terms.iter().map(|t| t.max_degree()).max().unwrap_or(0)
    }

    /// Validates against a cube's dimensions.
    ///
    /// # Panics
    /// On arity mismatch, reversed or out-of-bounds ranges, or factor
    /// arity mismatch.
    pub fn validate(&self, dims: &[usize]) {
        assert_eq!(self.ranges.len(), dims.len(), "query arity mismatch");
        for (k, (&(a, b), &d)) in self.ranges.iter().zip(dims).enumerate() {
            assert!(a <= b && b < d, "dimension {k}: bad range [{a},{b}] for {d} bins");
        }
        for t in &self.terms {
            assert_eq!(t.factors.len(), dims.len(), "term arity mismatch");
        }
    }

    /// Reference evaluation by scanning the data cube (exact, O(|R|)).
    pub fn eval_scan(&self, cube: &DataCube) -> f64 {
        self.validate(cube.dims());
        let mut idx: Vec<usize> = self.ranges.iter().map(|&(a, _)| a).collect();
        let mut total = 0.0;
        loop {
            let f = cube.at(&idx);
            if f != 0.0 {
                for t in &self.terms {
                    total += t.eval(&idx) * f;
                }
            }
            // Odometer increment over the rectangle.
            let mut k = self.ranges.len();
            loop {
                if k == 0 {
                    return total;
                }
                k -= 1;
                if idx[k] < self.ranges[k].1 {
                    idx[k] += 1;
                    for (j, &(a, _)) in self.ranges.iter().enumerate().skip(k + 1) {
                        idx[j] = a;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::AttributeSpace;

    fn small_cube() -> DataCube {
        let space = AttributeSpace::new(vec![(0.0, 4.0), (0.0, 4.0)], vec![4, 4]);
        DataCube::from_tuples(
            &space,
            vec![vec![0.5, 0.5], vec![1.5, 0.5], vec![1.5, 2.5], vec![3.5, 3.5], vec![3.5, 3.5]],
        )
    }

    #[test]
    fn count_query_scan() {
        let cube = small_cube();
        let all = RangeSumQuery::count(vec![(0, 3), (0, 3)]);
        assert_eq!(all.eval_scan(&cube), 5.0);
        let corner = RangeSumQuery::count(vec![(0, 1), (0, 1)]);
        assert_eq!(corner.eval_scan(&cube), 2.0);
        let empty_region = RangeSumQuery::count(vec![(2, 2), (0, 0)]);
        assert_eq!(empty_region.eval_scan(&cube), 0.0);
    }

    #[test]
    fn sum_query_scan() {
        let cube = small_cube();
        // Σ x_0 over everything: 0 + 1 + 1 + 3 + 3 = 8 (bin indices).
        let q = RangeSumQuery::sum_poly(vec![(0, 3), (0, 3)], 0, Polynomial::monomial(1));
        assert_eq!(q.eval_scan(&cube), 8.0);
    }

    #[test]
    fn product_query_scan() {
        let cube = small_cube();
        // Σ x_0·x_1 = 0·0 + 1·0 + 1·2 + 3·3 + 3·3 = 20.
        let q = RangeSumQuery::sum_product(
            vec![(0, 3), (0, 3)],
            0,
            Polynomial::monomial(1),
            1,
            Polynomial::monomial(1),
        );
        assert_eq!(q.eval_scan(&cube), 20.0);
    }

    #[test]
    fn multi_term_query() {
        let cube = small_cube();
        // COUNT + Σ x_0 = 5 + 8.
        let mut q = RangeSumQuery::count(vec![(0, 3), (0, 3)]);
        q.terms.push(Monomial::single(2, 0, Polynomial::monomial(1)));
        assert_eq!(q.eval_scan(&cube), 13.0);
    }

    #[test]
    fn degrees() {
        let q = RangeSumQuery::sum_product(
            vec![(0, 3), (0, 3)],
            0,
            Polynomial::monomial(2),
            1,
            Polynomial::monomial(1),
        );
        assert_eq!(q.max_degree(), 2);
        assert_eq!(RangeSumQuery::count(vec![(0, 1)]).max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn validate_rejects_out_of_bounds() {
        RangeSumQuery::count(vec![(0, 4), (0, 3)]).validate(&[4, 4]);
    }
}
