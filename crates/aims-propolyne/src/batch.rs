//! Batch evaluation of related range-sums with shared retrieval.
//!
//! §3.3.1: group-by, drill-down and MDX-style queries "require the
//! simultaneous evaluation of multiple related range aggregates … these
//! queries act as linear maps where range queries act as linear
//! functionals", and the paper's PODS'02 work "developed query evaluation
//! algorithms which share I/O maximally and retrieve the most important
//! data first". Related ranges share most of their wavelet-domain support
//! (drill-down buckets share every coarse coefficient), so fetching the
//! union once is much cheaper than fetching per query.

use std::collections::{HashMap, HashSet};

use aims_exec::{global_pool, ThreadPool};
use aims_telemetry::global as telemetry;

use crate::engine::{PreparedQuery, Propolyne};
use crate::query::RangeSumQuery;

/// Result of a batch evaluation.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-query answers, in input order.
    pub answers: Vec<f64>,
    /// Distinct data coefficients fetched (shared plan).
    pub shared_fetches: usize,
    /// Total coefficient fetches had each query run alone.
    pub independent_fetches: usize,
}

impl BatchResult {
    /// I/O sharing factor (≥ 1; higher = more reuse across queries).
    pub fn sharing_factor(&self) -> f64 {
        if self.shared_fetches == 0 {
            1.0
        } else {
            self.independent_fetches as f64 / self.shared_fetches as f64
        }
    }
}

/// Evaluates a set of related queries with one shared coefficient fetch
/// plan, on the process-wide [`aims_exec`] pool.
pub fn evaluate_batch(engine: &Propolyne, queries: &[RangeSumQuery]) -> BatchResult {
    evaluate_batch_with(global_pool(), engine, queries)
}

/// [`evaluate_batch`] on an explicit thread pool. Three parallel stages:
/// per-query `prepare` fans out across the pool, the fetch-set union is
/// built from per-shard `HashSet`s merged once, and the per-query inner
/// products evaluate concurrently against the shared sorted fetch plan.
/// Each query is prepared and evaluated by exactly one task, so answers
/// are bit-identical to the serial path for every pool size.
pub fn evaluate_batch_with(
    pool: &ThreadPool,
    engine: &Propolyne,
    queries: &[RangeSumQuery],
) -> BatchResult {
    assert!(!queries.is_empty(), "empty batch");
    let _span = aims_telemetry::span!("propolyne.batch.evaluate");
    let prepared: Vec<PreparedQuery> = pool.par_map(queries, |q| engine.prepare(q));
    let independent: usize = prepared.iter().map(|p| p.nnz()).sum();

    // Union of needed coefficients = the shared fetch set: sharded
    // per-chunk sets, merged once (the merge order cannot matter for a
    // set union, and the plan below is sorted, so the result is
    // deterministic regardless of sharding).
    let shard = prepared.len().div_ceil(pool.threads() * 2).max(1);
    let shards: Vec<HashSet<usize>> = pool.par_map_blocks(prepared.len(), shard, |range| {
        let mut set = HashSet::new();
        for p in &prepared[range] {
            set.extend(p.indices.iter().copied());
        }
        set
    });
    let mut shards = shards.into_iter();
    let mut needed = shards.next().unwrap_or_default();
    for s in shards {
        needed.extend(s);
    }

    // "Fetch" the union once, as a structure-of-arrays plan sorted by
    // coefficient index: the merge's offset scan walks a dense `usize`
    // slice (no interleaved f64 halving its cache density), and the
    // multiply-add loop reads values from its own contiguous slice.
    let coeffs = engine.cube().coeffs();
    let mut plan_idx: Vec<usize> = needed.into_iter().collect();
    plan_idx.sort_unstable();
    let plan_vals: Vec<f64> = plan_idx.iter().map(|&i| coeffs[i]).collect();

    let answers: Vec<f64> =
        pool.par_map(&prepared, |p| dot_sorted(&p.indices, &p.weights, &plan_idx, &plan_vals));
    telemetry().counter("propolyne.batch.queries").add(queries.len() as u64);
    telemetry().counter("propolyne.batch.shared_fetches").add(plan_idx.len() as u64);
    BatchResult { answers, shared_fetches: plan_idx.len(), independent_fetches: independent }
}

/// Inner product of a prepared query against the shared fetch plan. Both
/// sides are strictly increasing in coefficient index and the plan is a
/// superset of the query's support, so a single two-pointer merge replaces
/// the per-entry hash lookup — no allocation, no hashing, accumulation in
/// the same entry order as independent evaluation (bit-identical to
/// `Propolyne::evaluate_prepared`). All four operands are separate
/// contiguous slices; when the query's support is a dense run of the plan
/// the merge degenerates to a straight `w[k]·v[cursor+k]` stream.
fn dot_sorted(indices: &[usize], weights: &[f64], plan_idx: &[usize], plan_vals: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut cursor = 0usize;
    for (&i, &w) in indices.iter().zip(weights) {
        while plan_idx[cursor] < i {
            cursor += 1;
        }
        debug_assert_eq!(plan_idx[cursor], i, "fetch plan missing coefficient {i}");
        acc += w * plan_vals[cursor];
        cursor += 1;
    }
    acc
}

/// Which error measure a progressive batch run optimizes (§3.3.1: "for
/// some applications it is important to minimize the standard deviation
/// (i.e., the standard L² norm) of the errors. For other applications it
/// may be more important to ensure that any large differences between
/// results for related ranges are captured early").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchErrorNorm {
    /// Minimize the total (L²) error across the batch.
    L2Total,
    /// Minimize the worst single query's error (L∞ across the batch).
    MaxQuery,
}

/// One step of a progressive batch evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchProgressStep {
    /// Distinct coefficients fetched so far.
    pub fetches: usize,
    /// √(Σ_q error_q²) at this point.
    pub l2_error: f64,
    /// max_q |error_q| at this point.
    pub max_error: f64,
}

/// A progressive batch run.
#[derive(Clone, Debug)]
pub struct BatchProgressive {
    /// Exact per-query answers.
    pub exact: Vec<f64>,
    /// Error trajectory, one step per fetched coefficient.
    pub steps: Vec<BatchProgressStep>,
}

impl BatchProgressive {
    /// Area under the chosen error curve (lower = faster convergence).
    pub fn auc(&self, norm: BatchErrorNorm) -> f64 {
        self.steps
            .iter()
            .map(|s| match norm {
                BatchErrorNorm::L2Total => s.l2_error,
                BatchErrorNorm::MaxQuery => s.max_error,
            })
            .sum()
    }
}

/// Progressive shared evaluation of a query batch: coefficients are
/// fetched one at a time in an order chosen for the given error norm, and
/// every query's estimate advances with each shared fetch.
pub fn progressive_batch(
    engine: &Propolyne,
    queries: &[RangeSumQuery],
    norm: BatchErrorNorm,
) -> BatchProgressive {
    assert!(!queries.is_empty(), "empty batch");
    let _span = aims_telemetry::span!("propolyne.batch.progressive");
    // The fetch-order search below is inherently sequential, but the
    // per-query transforms still fan out.
    let prepared: Vec<PreparedQuery> = global_pool().par_map(queries, |q| engine.prepare(q));
    let coeffs = engine.cube().coeffs();

    // Per-coefficient contribution to each query.
    let mut contribution: HashMap<usize, Vec<(usize, f64)>> = HashMap::new();
    for (qi, p) in prepared.iter().enumerate() {
        for (i, w) in p.entries() {
            contribution.entry(i).or_default().push((qi, w * coeffs[i]));
        }
    }
    let exact: Vec<f64> =
        prepared.iter().map(|p| p.entries().map(|(i, w)| w * coeffs[i]).sum()).collect();

    // Fetch order for the chosen norm.
    let mut order: Vec<usize> = contribution.keys().copied().collect();
    match norm {
        BatchErrorNorm::L2Total => {
            // Static score: a coefficient's total squared contribution.
            order.sort_by(|&a, &b| {
                let score =
                    |i: usize| -> f64 { contribution[&i].iter().map(|&(_, c)| c * c).sum() };
                score(b).partial_cmp(&score(a)).unwrap().then(a.cmp(&b))
            });
        }
        BatchErrorNorm::MaxQuery => {
            // Greedy: always fetch the coefficient with the largest
            // contribution to the currently-worst query.
            let mut remaining: Vec<f64> = exact.clone();
            let mut pool: Vec<usize> = order.clone();
            order.clear();
            while !pool.is_empty() {
                let worst_q = remaining
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                    .map(|(q, _)| q)
                    .unwrap();
                let (pos, &best) = pool
                    .iter()
                    .enumerate()
                    .max_by(|(_, &a), (_, &b)| {
                        let ca = contribution[&a]
                            .iter()
                            .find(|&&(q, _)| q == worst_q)
                            .map_or(0.0, |&(_, c)| c.abs());
                        let cb = contribution[&b]
                            .iter()
                            .find(|&&(q, _)| q == worst_q)
                            .map_or(0.0, |&(_, c)| c.abs());
                        ca.partial_cmp(&cb).unwrap()
                    })
                    .unwrap();
                for &(q, c) in &contribution[&best] {
                    remaining[q] -= c;
                }
                order.push(best);
                pool.swap_remove(pos);
            }
        }
    }

    // Walk the order, recording errors.
    let mut estimates = vec![0.0; queries.len()];
    let mut steps = Vec::with_capacity(order.len());
    for (k, &i) in order.iter().enumerate() {
        for &(q, c) in &contribution[&i] {
            estimates[q] += c;
        }
        let mut l2 = 0.0;
        let mut mx: f64 = 0.0;
        for (e, x) in estimates.iter().zip(&exact) {
            let err = (e - x).abs();
            l2 += err * err;
            mx = mx.max(err);
        }
        steps.push(BatchProgressStep { fetches: k + 1, l2_error: l2.sqrt(), max_error: mx });
    }
    BatchProgressive { exact, steps }
}

/// Builds the drill-down workload over one dimension: the base rectangle
/// split into `buckets` equal bins along `dim` (a SQL GROUP BY in range
/// form).
///
/// # Panics
/// If the bucket count doesn't divide the range length.
pub fn drill_down_queries(base: &RangeSumQuery, dim: usize, buckets: usize) -> Vec<RangeSumQuery> {
    assert!(dim < base.arity(), "dimension out of range");
    let (a, b) = base.ranges[dim];
    let len = b - a + 1;
    assert!(buckets > 0 && len % buckets == 0, "{buckets} buckets must divide range {len}");
    let w = len / buckets;
    (0..buckets)
        .map(|k| {
            let mut q = base.clone();
            q.ranges[dim] = (a + k * w, a + (k + 1) * w - 1);
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::DataCube;
    use aims_dsp::filters::FilterKind;

    fn engine() -> (DataCube, Propolyne) {
        let mut cube = DataCube::zeros(&[64, 64]);
        let mut state = 31u64;
        for v in cube.values_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 5) as f64;
        }
        let e = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        (cube, e)
    }

    #[test]
    fn batch_answers_match_individual() {
        let (cube, engine) = engine();
        let base = RangeSumQuery::count(vec![(0, 63), (8, 55)]);
        let queries = drill_down_queries(&base, 0, 8);
        let batch = evaluate_batch(&engine, &queries);
        for (q, &a) in queries.iter().zip(&batch.answers) {
            let expect = q.eval_scan(&cube);
            assert!((a - expect).abs() < 1e-6 * expect.abs().max(1.0), "{a} vs {expect}");
        }
    }

    #[test]
    fn drill_down_buckets_partition_the_base() {
        let (cube, engine) = engine();
        let base = RangeSumQuery::count(vec![(0, 63), (0, 63)]);
        let queries = drill_down_queries(&base, 1, 16);
        let batch = evaluate_batch(&engine, &queries);
        let total: f64 = batch.answers.iter().sum();
        assert!((total - cube.total()).abs() < 1e-6 * cube.total());
    }

    #[test]
    fn sharing_factor_exceeds_one_for_related_ranges() {
        let (_, engine) = engine();
        let base = RangeSumQuery::count(vec![(0, 63), (4, 59)]);
        let queries = drill_down_queries(&base, 0, 8);
        let batch = evaluate_batch(&engine, &queries);
        assert!(
            batch.sharing_factor() > 1.3,
            "drill-down should share coefficients: factor {}",
            batch.sharing_factor()
        );
        assert!(batch.shared_fetches < batch.independent_fetches);
    }

    #[test]
    fn single_query_batch_degenerates() {
        let (_, engine) = engine();
        let q = RangeSumQuery::count(vec![(3, 40), (3, 40)]);
        let batch = evaluate_batch(&engine, std::slice::from_ref(&q));
        assert_eq!(batch.answers.len(), 1);
        assert_eq!(batch.shared_fetches, batch.independent_fetches);
        assert!((batch.sharing_factor() - 1.0).abs() < 1e-12);
        assert!((batch.answers[0] - engine.evaluate(&q)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn uneven_buckets_panic() {
        let base = RangeSumQuery::count(vec![(0, 62), (0, 63)]);
        drill_down_queries(&base, 0, 8);
    }
}

#[cfg(test)]
mod progressive_tests {
    use super::*;
    use crate::cube::DataCube;
    use aims_dsp::filters::FilterKind;

    fn engine() -> Propolyne {
        let mut cube = DataCube::zeros(&[32, 32]);
        let mut state = 5u64;
        for v in cube.values_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 8) as f64;
        }
        Propolyne::new(cube.transform(&FilterKind::Db4.filter()))
    }

    #[test]
    fn both_norms_end_exact() {
        let engine = engine();
        let base = RangeSumQuery::count(vec![(0, 31), (4, 27)]);
        let queries = drill_down_queries(&base, 0, 8);
        for norm in [BatchErrorNorm::L2Total, BatchErrorNorm::MaxQuery] {
            let run = progressive_batch(&engine, &queries, norm);
            let last = run.steps.last().unwrap();
            assert!(last.l2_error < 1e-8, "{norm:?}: l2 {}", last.l2_error);
            assert!(last.max_error < 1e-8, "{norm:?}");
            // Exact answers match independent evaluation.
            for (q, &x) in queries.iter().zip(&run.exact) {
                assert!((engine.evaluate(q) - x).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn each_norm_wins_its_own_metric() {
        let engine = engine();
        let base = RangeSumQuery::count(vec![(0, 31), (0, 31)]);
        let queries = drill_down_queries(&base, 0, 16);
        let l2_run = progressive_batch(&engine, &queries, BatchErrorNorm::L2Total);
        let max_run = progressive_batch(&engine, &queries, BatchErrorNorm::MaxQuery);
        assert!(
            max_run.auc(BatchErrorNorm::MaxQuery) <= l2_run.auc(BatchErrorNorm::MaxQuery) * 1.05,
            "max-norm ordering should win (or tie) its own metric: {} vs {}",
            max_run.auc(BatchErrorNorm::MaxQuery),
            l2_run.auc(BatchErrorNorm::MaxQuery)
        );
    }

    #[test]
    fn errors_reach_zero_monotone_at_the_tail() {
        let engine = engine();
        let base = RangeSumQuery::count(vec![(2, 29), (2, 29)]);
        let queries = drill_down_queries(&base, 1, 4);
        let run = progressive_batch(&engine, &queries, BatchErrorNorm::L2Total);
        // The last step has strictly the smallest error of the run's tail.
        let n = run.steps.len();
        assert!(run.steps[n - 1].l2_error <= run.steps[n / 2].l2_error + 1e-9);
    }
}
