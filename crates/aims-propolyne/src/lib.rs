//! ProPolyne: progressive polynomial range-sum evaluation in the wavelet
//! domain (paper §3.3; Schmidt & Shahabi, EDBT'02/PODS'02).
//!
//! The core idea the AIMS paper builds on: a polynomial range-sum
//! `Σ_{x∈R} p(x)·f(x)` over a data cube `f` is the inner product of `f`
//! with a *query vector* that is a piecewise polynomial. Orthonormal
//! wavelet transforms preserve inner products, so the sum can be evaluated
//! entirely in the wavelet domain — and "when the wavelet filter is chosen
//! to satisfy an appropriate moment condition, most of the query wavelet
//! coefficients vanish", leaving only O(filter·log N) nonzeros per
//! dimension, computed by the **lazy wavelet transform** in polylogarithmic
//! time.
//!
//! - [`lazy`]: the lazy wavelet transform of piecewise-polynomial query
//!   vectors (the paper's central algorithm).
//! - [`cube`]: multidimensional frequency/data cubes and their
//!   tensor-product wavelet transform.
//! - [`query`]: polynomial range-sum queries (ranges × monomials).
//! - [`engine`]: exact, approximate and progressive evaluation.
//! - [`stats`]: COUNT/SUM/AVERAGE/VARIANCE/COVARIANCE via the Shao
//!   reduction to second-order polynomial range-sums (§3.4.1).
//! - [`synopsis`]: the wavelet *data approximation* baseline ProPolyne is
//!   compared against.
//! - [`hybrid`]: the standard-basis/wavelet-basis hybrid of §3.3.1.
//! - [`batch`]: multi-query (group-by / drill-down) evaluation with shared
//!   coefficient retrieval (§3.3.1).
//! - [`blockstore`]: device-backed coefficient retrieval — cube
//!   coefficients on a checksummed block device with retry and graceful
//!   degradation under storage faults.
//! - [`packet`]: the wavelet-packet generalization — per-dimension best
//!   bases from the DWPT library (§3.3.1).

pub mod batch;
pub mod blockstore;
pub mod cube;
pub mod engine;
pub mod hybrid;
pub mod lazy;
pub mod packet;
pub mod query;
pub mod stats;
pub mod synopsis;

pub use blockstore::{BlockedCoefficients, DegradedAnswer, DegradedStep};
pub use cube::{DataCube, WaveletCube};
pub use engine::{ProgressiveEvaluation, Propolyne};
pub use lazy::{lazy_transform, HybridSignal, SparseVector};
pub use query::{Monomial, RangeSumQuery};
