//! ProPolyne over wavelet-*packet* bases — the §3.3.1 generalization.
//!
//! "We intend to generalize the mechanism underlying ProPolyne by looking
//! beyond pure wavelets to find another basis which may be more effective
//! on a particular dataset … there is also a need for best-basis (or at
//! least good-basis) algorithms that efficiently select an appropriate
//! basis from a library of possibilities. … the basis library used by this
//! hybrid algorithm is a subset of the full wavelet packet basis library."
//!
//! A packet basis is still orthonormal, so the ProPolyne identity
//! `Σ q(x)·f(x) = ⟨q̂, f̂⟩` holds verbatim; what changes is *which* basis
//! the coefficients live in. A best-basis search per dimension (run at
//! population time on the cube's axis profiles) concentrates the *data*
//! energy better than the fixed DWT cascade on oscillatory data — which is
//! exactly what data synopses need. The price is query translation: packet
//! query vectors are computed by a dense per-dimension transform
//! (O(n·depth)) rather than the lazy transform's polylog path. This module
//! makes that trade measurable.

use aims_dsp::dwpt::{best_basis_from_costs, CostFunction, PacketBasis, WaveletPacketTree};
use aims_dsp::filters::WaveletFilter;

use crate::cube::DataCube;
use crate::query::RangeSumQuery;

/// A data cube transformed per dimension with chosen packet bases.
#[derive(Clone, Debug)]
pub struct PacketCube {
    dims: Vec<usize>,
    strides: Vec<usize>,
    coeffs: Vec<f64>,
    /// Chosen basis per dimension (node sets of the packet tree).
    bases: Vec<PacketBasis>,
    depth: usize,
    filter: WaveletFilter,
}

/// Transforms one line with a fixed packet basis.
fn transform_line(
    line: &[f64],
    filter: &WaveletFilter,
    depth: usize,
    basis: &PacketBasis,
) -> Vec<f64> {
    let tree = WaveletPacketTree::decompose(line, filter, depth);
    tree.coefficients(basis)
}

/// Inverts one line from a fixed packet basis.
fn invert_line(
    coeffs: &[f64],
    filter: &WaveletFilter,
    depth: usize,
    basis: &PacketBasis,
) -> Vec<f64> {
    // The tree's shape depends only on the length; decompose zeros to get
    // a shape-compatible tree and reconstruct from the provided basis
    // coefficients.
    let shape_tree = WaveletPacketTree::decompose(&vec![0.0; coeffs.len()], filter, depth);
    shape_tree.reconstruct(basis, coeffs)
}

fn line_apply(
    data: &mut [f64],
    dims: &[usize],
    strides: &[usize],
    axis: usize,
    mut op: impl FnMut(&[f64]) -> Vec<f64>,
) {
    let total: usize = dims.iter().product();
    let len = dims[axis];
    let stride = strides[axis];
    let lines = total / len;
    let mut line = vec![0.0; len];
    for l in 0..lines {
        let outer = l / stride;
        let inner = l % stride;
        let base = outer * stride * len + inner;
        for (j, slot) in line.iter_mut().enumerate() {
            *slot = data[base + j * stride];
        }
        let t = op(&line);
        for (j, v) in t.into_iter().enumerate() {
            data[base + j * stride] = v;
        }
    }
}

impl PacketCube {
    /// Builds the packet-transformed cube: for each dimension, the
    /// Shannon-entropy node costs of *every line* along that axis are
    /// accumulated, and the Coifman–Wickerhauser dynamic program picks the
    /// jointly best basis for them all — the population-time best-basis
    /// search §3.3.1 calls for.
    ///
    /// # Panics
    /// If `2^depth` exceeds any dimension.
    pub fn build(cube: &DataCube, filter: &WaveletFilter, depth: usize) -> Self {
        let dims = cube.dims().to_vec();
        let mut strides = vec![1usize; dims.len()];
        for a in (0..dims.len().saturating_sub(1)).rev() {
            strides[a] = strides[a + 1] * dims[a + 1];
        }

        let mut bases = Vec::with_capacity(dims.len());
        for axis in 0..dims.len() {
            let len = dims[axis];
            assert!((1usize << depth) <= len, "depth {depth} too deep for axis {axis} ({len})");
            // Accumulate per-node costs over every line along this axis.
            let mut agg: Vec<Vec<f64>> = (0..=depth).map(|l| vec![0.0; 1 << l]).collect();
            let mut scratch = cube.values().to_vec();
            line_apply(&mut scratch, &dims, &strides, axis, |line| {
                let tree = WaveletPacketTree::decompose(line, filter, depth);
                for (level, row) in tree.node_costs(CostFunction::ShannonEntropy).iter().enumerate()
                {
                    for (index, &c) in row.iter().enumerate() {
                        agg[level][index] += c;
                    }
                }
                line.to_vec() // unchanged; line_apply doubles as a traversal
            });
            bases.push(best_basis_from_costs(depth, &agg));
        }

        let mut coeffs = cube.values().to_vec();
        for (axis, basis) in bases.iter().enumerate() {
            let basis = basis.clone();
            let f = filter.clone();
            line_apply(&mut coeffs, &dims, &strides, axis, |line| {
                transform_line(line, &f, depth, &basis)
            });
        }

        PacketCube { dims, strides, coeffs, bases, depth, filter: filter.clone() }
    }

    /// Dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The chosen per-dimension bases.
    pub fn bases(&self) -> &[PacketBasis] {
        &self.bases
    }

    /// Coefficient array (row-major over per-dimension basis orders).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Total coefficient energy (orthonormality: equals the data energy).
    pub fn energy(&self) -> f64 {
        self.coeffs.iter().map(|c| c * c).sum()
    }

    /// Inverse transform back to the data cube.
    pub fn inverse(&self) -> DataCube {
        let mut values = self.coeffs.clone();
        for axis in (0..self.dims.len()).rev() {
            let basis = self.bases[axis].clone();
            let f = self.filter.clone();
            let depth = self.depth;
            line_apply(&mut values, &self.dims, &self.strides, axis, |line| {
                invert_line(line, &f, depth, &basis)
            });
        }
        let mut cube = DataCube::zeros(&self.dims);
        cube.values_mut().copy_from_slice(&values);
        cube
    }

    /// Evaluates a polynomial range-sum exactly in the packet domain: each
    /// dimension's query factor is materialized densely and transformed
    /// with that dimension's basis (O(n·depth) per dimension), then the
    /// tensor inner product is taken against the stored coefficients.
    pub fn evaluate(&self, query: &RangeSumQuery) -> f64 {
        query.validate(&self.dims);
        let mut total = 0.0;
        for term in &query.terms {
            // Dense per-dimension query vectors in the packet domain.
            let per_dim: Vec<Vec<(usize, f64)>> = (0..self.dims.len())
                .map(|k| {
                    let (a, b) = query.ranges[k];
                    let dense: Vec<f64> =
                        (0..self.dims[k])
                            .map(|i| {
                                if i >= a && i <= b {
                                    term.factors[k].eval(i as f64)
                                } else {
                                    0.0
                                }
                            })
                            .collect();
                    transform_line(&dense, &self.filter, self.depth, &self.bases[k])
                        .into_iter()
                        .enumerate()
                        .filter(|(_, v)| v.abs() > 1e-12)
                        .collect()
                })
                .collect();
            if per_dim.iter().any(|v| v.is_empty()) {
                continue;
            }
            // Tensor product accumulation.
            let mut pos = vec![0usize; self.dims.len()];
            loop {
                let mut offset = 0usize;
                let mut weight = term.coef;
                for (k, &p) in pos.iter().enumerate() {
                    let (i, w) = per_dim[k][p];
                    offset += i * self.strides[k];
                    weight *= w;
                }
                total += weight * self.coeffs[offset];
                let mut k = self.dims.len();
                loop {
                    if k == 0 {
                        pos.clear();
                        break;
                    }
                    k -= 1;
                    if pos[k] + 1 < per_dim[k].len() {
                        pos[k] += 1;
                        for p in pos.iter_mut().skip(k + 1) {
                            *p = 0;
                        }
                        break;
                    }
                }
                if pos.is_empty() {
                    break;
                }
            }
        }
        total
    }

    /// Keeps the `k` largest-magnitude coefficients (data synopsis in the
    /// packet basis).
    pub fn top_k_synopsis(&self, k: usize) -> PacketCube {
        let mut mags: Vec<f64> = self.coeffs.iter().map(|c| c.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = if k == 0 {
            f64::INFINITY
        } else if k >= mags.len() {
            0.0
        } else {
            mags[k - 1]
        };
        let mut kept = 0usize;
        let coeffs = self
            .coeffs
            .iter()
            .map(|&c| {
                if c.abs() >= threshold && kept < k {
                    kept += 1;
                    c
                } else {
                    0.0
                }
            })
            .collect();
        PacketCube { coeffs, ..self.clone() }
    }

    /// Fraction of total energy captured by the top `k` coefficients — the
    /// compaction score a basis competes on.
    pub fn compaction(&self, k: usize) -> f64 {
        let total = self.energy();
        if total <= 0.0 {
            return 1.0;
        }
        let mut mags: Vec<f64> = self.coeffs.iter().map(|c| c * c).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        mags.iter().take(k).sum::<f64>() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aims_dsp::filters::FilterKind;
    use aims_dsp::poly::Polynomial;

    fn oscillatory_cube(n: usize) -> DataCube {
        // High-frequency tone along axis 0: packets isolate the band, the
        // plain DWT cascade smears it across detail levels.
        let mut cube = DataCube::zeros(&[n, n]);
        for i in 0..n {
            for j in 0..n {
                *cube.at_mut(&[i, j]) =
                    (std::f64::consts::PI * 0.93 * i as f64).sin() * (1.0 + 0.1 * j as f64);
            }
        }
        cube
    }

    fn random_cube(n: usize, seed: u64) -> DataCube {
        let mut cube = DataCube::zeros(&[n, n]);
        let mut state = seed.max(1);
        for v in cube.values_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 7) as f64;
        }
        cube
    }

    #[test]
    fn roundtrip_and_parseval() {
        let cube = random_cube(32, 3);
        for kind in [FilterKind::Haar, FilterKind::Db4] {
            let pc = PacketCube::build(&cube, &kind.filter(), 4);
            assert!((pc.energy() - cube.energy()).abs() < 1e-7 * cube.energy());
            let back = pc.inverse();
            for (a, b) in cube.values().iter().zip(back.values()) {
                assert!((a - b).abs() < 1e-8, "{kind:?}");
            }
        }
    }

    #[test]
    fn evaluate_matches_scan() {
        let cube = random_cube(32, 9);
        let pc = PacketCube::build(&cube, &FilterKind::Db4.filter(), 4);
        for q in [
            RangeSumQuery::count(vec![(3, 28), (5, 20)]),
            RangeSumQuery::sum_poly(vec![(0, 31), (10, 25)], 0, Polynomial::monomial(1)),
            RangeSumQuery::sum_product(
                vec![(4, 27), (2, 29)],
                0,
                Polynomial::monomial(1),
                1,
                Polynomial::monomial(1),
            ),
        ] {
            let got = pc.evaluate(&q);
            let expect = q.eval_scan(&cube);
            assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0), "{got} vs {expect}");
        }
    }

    #[test]
    fn packet_basis_compacts_oscillatory_data_better_than_dwt() {
        let cube = oscillatory_cube(64);
        let filter = FilterKind::Db4.filter();
        let pc = PacketCube::build(&cube, &filter, 5);
        let wc = cube.transform(&filter);
        let budget = 64;
        let dwt_compaction = {
            let mut mags: Vec<f64> = wc.coeffs().iter().map(|c| c * c).collect();
            let total: f64 = mags.iter().sum();
            mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
            mags.iter().take(budget).sum::<f64>() / total
        };
        let packet_compaction = pc.compaction(budget);
        assert!(
            packet_compaction > dwt_compaction,
            "packet {packet_compaction} !> dwt {dwt_compaction} on oscillatory data"
        );
    }

    #[test]
    fn synopsis_answers_converge_with_budget() {
        let cube = oscillatory_cube(32);
        let pc = PacketCube::build(&cube, &FilterKind::Db4.filter(), 4);
        let q = RangeSumQuery::count(vec![(2, 29), (3, 27)]);
        let exact = q.eval_scan(&cube);
        let err_at = |k: usize| (pc.top_k_synopsis(k).evaluate(&q) - exact).abs();
        let full = pc.coeffs().len();
        assert!(err_at(full) < 1e-6 * exact.abs().max(1.0));
        assert!(err_at(full) <= err_at(full / 8) + 1e-9);
    }

    #[test]
    fn bases_differ_across_dissimilar_axes() {
        // Oscillatory along axis 0, smooth along axis 1: the chosen bases
        // should not be identical node sets.
        let cube = oscillatory_cube(64);
        let pc = PacketCube::build(&cube, &FilterKind::Db4.filter(), 5);
        assert_eq!(pc.bases().len(), 2);
        // (They may coincide for degenerate data; for this cube they
        // should not.)
        assert_ne!(pc.bases()[0].nodes, pc.bases()[1].nodes);
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn excessive_depth_panics() {
        PacketCube::build(&random_cube(8, 1), &FilterKind::Haar.filter(), 4);
    }
}
