//! Device-backed coefficient retrieval for ProPolyne queries.
//!
//! The in-memory engine ([`crate::engine::Propolyne`]) evaluates prepared
//! queries against a dense coefficient slice. This module is the fetch
//! path the AIMS storage design implies: cube coefficients live on a
//! [`BlockDevice`] in checksummed blocks, queries pull only the blocks
//! their sparse entries touch through a [`BufferPool`], and storage
//! faults degrade the answer instead of failing it — missing
//! coefficients contribute zero and the answer carries a guaranteed
//! error bound (Cauchy–Schwarz against the lost blocks' load-time
//! energy).
//!
//! With a healthy device, [`BlockedCoefficients::evaluate_degraded`]
//! accumulates the same entries in the same order as
//! [`crate::engine::Propolyne::evaluate_prepared`], so the result is
//! bit-identical to the in-memory path.

use aims_storage::buffer::BufferPool;
use aims_storage::device::{BlockDevice, MemDevice, RetryPolicy};
use aims_telemetry::global;

use crate::engine::PreparedQuery;

/// Cube coefficients stored sequentially on a block device
/// (`coefficient i → block i / B, offset i % B`), with a load-time
/// per-block energy catalog for degraded error bounds.
#[derive(Debug)]
pub struct BlockedCoefficients<D: BlockDevice = MemDevice> {
    device: D,
    block_size: usize,
    n: usize,
    /// `Σ c²` per block, captured at load time.
    block_energy: Vec<f64>,
}

/// A query answer served from (possibly faulty) blocked storage.
#[derive(Clone, Debug)]
pub struct DegradedAnswer {
    /// The (possibly partial) inner product.
    pub estimate: f64,
    /// Guaranteed bound on `|estimate − exact|`; `0.0` when nothing was
    /// lost.
    pub error_bound: f64,
    /// Distinct blocks that stayed unreadable after retries.
    pub lost_blocks: Vec<usize>,
    /// Query entries whose coefficient could not be retrieved.
    pub missing_coefficients: usize,
}

impl DegradedAnswer {
    /// Whether any block was lost.
    pub fn degraded(&self) -> bool {
        !self.lost_blocks.is_empty()
    }
}

/// One step of a progressive evaluation over blocked storage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradedStep {
    /// Query coefficients consumed so far (including missing ones).
    pub coefficients_used: usize,
    /// Running estimate.
    pub estimate: f64,
    /// Guaranteed bound: unseen-suffix term plus lost-block term.
    pub guaranteed_bound: f64,
}

impl BlockedCoefficients<MemDevice> {
    /// Loads a coefficient vector onto a fresh in-memory device.
    pub fn new(coeffs: &[f64], block_size: usize) -> Self {
        BlockedCoefficients::on_device(coeffs, block_size, MemDevice::new)
    }
}

impl<D: BlockDevice> BlockedCoefficients<D> {
    /// Loads a coefficient vector onto a device built by
    /// `make(block_size, num_blocks)` — the hook for fault-injected
    /// devices. The vector is padded with zeros to a whole number of
    /// blocks.
    pub fn on_device(
        coeffs: &[f64],
        block_size: usize,
        make: impl FnOnce(usize, usize) -> D,
    ) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(!coeffs.is_empty(), "cannot store an empty coefficient vector");
        let num_blocks = coeffs.len().div_ceil(block_size);
        let mut device = make(block_size, num_blocks);
        assert!(device.block_size() == block_size, "device block size mismatch");
        assert!(device.num_blocks() >= num_blocks, "device too small");
        let mut block_energy = Vec::with_capacity(num_blocks);
        let mut staged = vec![0.0; block_size];
        for b in 0..num_blocks {
            staged.iter_mut().for_each(|v| *v = 0.0);
            let start = b * block_size;
            let end = (start + block_size).min(coeffs.len());
            staged[..end - start].copy_from_slice(&coeffs[start..end]);
            block_energy.push(staged.iter().map(|c| c * c).sum());
            device.write_block(b, &staged);
        }
        device.reset_stats();
        BlockedCoefficients { device, block_size, n: coeffs.len(), block_energy }
    }

    /// Rebuilds over an already-populated device — the reopen path for a
    /// recovered durable device. The sequential layout
    /// (`coefficient i → block i / B, offset i % B`) is implicit, so only
    /// the unpadded coefficient count `len` is needed; the per-block
    /// energy catalog is re-read from the device (raw reads — an
    /// unreadable block contributes zero energy).
    ///
    /// # Panics
    /// If the device is too small for `len` coefficients.
    pub fn from_device(device: D, len: usize) -> Self {
        assert!(len > 0, "cannot reopen an empty coefficient vector");
        let block_size = device.block_size();
        let num_blocks = len.div_ceil(block_size);
        assert!(device.num_blocks() >= num_blocks, "device too small");
        let mut buf = vec![0.0; block_size];
        let block_energy: Vec<f64> = (0..num_blocks)
            .map(|b| match device.read_raw_into(b, &mut buf) {
                Ok(()) => buf.iter().map(|c| c * c).sum(),
                Err(_) => 0.0,
            })
            .collect();
        device.reset_stats();
        BlockedCoefficients { device, block_size, n: len, block_energy }
    }

    /// Mutable access to the backing device (checkpoint / close hooks on
    /// durable devices).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Coefficient count (unpadded).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Blocked stores are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The backing device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Total stored energy `Σ c²` (from the load-time catalog).
    pub fn data_energy(&self) -> f64 {
        self.block_energy.iter().sum()
    }

    /// Coefficients per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks the coefficient vector occupies.
    pub fn num_blocks(&self) -> usize {
        self.block_energy.len()
    }

    /// Load-time energy `Σ c²` of block `b`.
    pub fn block_energy(&self, b: usize) -> f64 {
        self.block_energy[b]
    }

    /// The whole block-energy catalog, indexed by block id. The adaptive
    /// QoS scheduler reads this to price each plan block's expected
    /// error-bound reduction without touching the device.
    pub fn block_energies(&self) -> &[f64] {
        &self.block_energy
    }

    /// The distinct device blocks a prepared query will touch, ascending.
    ///
    /// This is the plan-observation hook the serving layer's shared-scan
    /// batcher needs: overlap between concurrent queries is detected by
    /// intersecting these sets *before* any fetch happens. Useful
    /// standalone too — `plan_blocks(q).len()` is the exact device read
    /// cost of a cold-cache evaluation.
    pub fn plan_blocks(&self, prepared: &PreparedQuery) -> Vec<usize> {
        let mut blocks: Vec<usize> = prepared
            .indices
            .iter()
            .map(|&i| {
                assert!(i < self.n, "query offset {i} out of range");
                i / self.block_size
            })
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }

    /// Evaluates a prepared query against the device, retrying transient
    /// faults under `policy` and degrading when blocks stay unreadable.
    ///
    /// Entries are accumulated in the prepared order (ascending offset),
    /// exactly like `Propolyne::evaluate_prepared`, so a fault-free run
    /// is bit-identical to the in-memory engine.
    pub fn evaluate_degraded(
        &self,
        prepared: &PreparedQuery,
        pool: &mut BufferPool,
        policy: &RetryPolicy,
    ) -> DegradedAnswer {
        let mut lost_blocks: Vec<usize> = Vec::new();
        let mut missing = 0usize;
        let mut lost_w2 = 0.0;
        let mut estimate = 0.0;
        for (i, w) in prepared.entries() {
            assert!(i < self.n, "query offset {i} out of range");
            let b = i / self.block_size;
            if lost_blocks.contains(&b) {
                missing += 1;
                lost_w2 += w * w;
                continue;
            }
            match pool.get_with_retry(&self.device, b, policy) {
                Ok(data) => estimate += w * data[i % self.block_size],
                Err(_) => {
                    global().counter("storage.degraded").inc();
                    lost_blocks.push(b);
                    missing += 1;
                    lost_w2 += w * w;
                }
            }
        }
        let lost_e2: f64 = lost_blocks.iter().map(|&b| self.block_energy[b]).sum();
        lost_blocks.sort_unstable();
        DegradedAnswer {
            estimate,
            error_bound: (lost_w2 * lost_e2).sqrt(),
            lost_blocks,
            missing_coefficients: missing,
        }
    }

    /// Progressive evaluation over blocked storage: query coefficients
    /// are consumed most-important-first; each step's guaranteed bound is
    /// the unseen-suffix Cauchy–Schwarz term plus the lost-block term.
    pub fn progressive_degraded(
        &self,
        prepared: &PreparedQuery,
        pool: &mut BufferPool,
        policy: &RetryPolicy,
    ) -> Vec<DegradedStep> {
        let mut order: Vec<(usize, f64)> = prepared.entries().collect();
        order.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());

        let mut suffix_energy = vec![0.0; order.len() + 1];
        for (i, &(_, w)) in order.iter().enumerate().rev() {
            suffix_energy[i] = suffix_energy[i + 1] + w * w;
        }
        let data_energy = self.data_energy();

        let mut lost_blocks: Vec<usize> = Vec::new();
        let mut lost_w2 = 0.0;
        let mut lost_e2 = 0.0;
        let mut estimate = 0.0;
        let mut steps = Vec::with_capacity(order.len());
        for (k, &(i, w)) in order.iter().enumerate() {
            assert!(i < self.n, "query offset {i} out of range");
            let b = i / self.block_size;
            let mut lost = lost_blocks.contains(&b);
            if !lost {
                match pool.get_with_retry(&self.device, b, policy) {
                    Ok(data) => estimate += w * data[i % self.block_size],
                    Err(_) => {
                        global().counter("storage.degraded").inc();
                        lost_blocks.push(b);
                        lost_e2 += self.block_energy[b];
                        lost = true;
                    }
                }
            }
            if lost {
                lost_w2 += w * w;
            }
            steps.push(DegradedStep {
                coefficients_used: k + 1,
                estimate,
                guaranteed_bound: (suffix_energy[k + 1] * data_energy).sqrt()
                    + (lost_w2 * lost_e2).sqrt(),
            });
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::DataCube;
    use crate::engine::Propolyne;
    use crate::query::RangeSumQuery;
    use aims_dsp::filters::FilterKind;
    use aims_storage::faults::{FaultKind, FaultPlan, FaultyDevice};

    fn engine_and_store() -> (Propolyne, BlockedCoefficients) {
        let mut cube = DataCube::zeros(&[32, 32]);
        let mut state = 41u64;
        for v in cube.values_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 9) as f64;
        }
        let wc = cube.transform(&FilterKind::Db4.filter());
        let blocked = BlockedCoefficients::new(wc.coeffs(), 16);
        (Propolyne::new(wc), blocked)
    }

    #[test]
    fn clean_device_is_bit_identical_to_in_memory_engine() {
        let (engine, blocked) = engine_and_store();
        let mut pool = BufferPool::new(64);
        for q in [
            RangeSumQuery::count(vec![(0, 31), (0, 31)]),
            RangeSumQuery::count(vec![(3, 25), (7, 19)]),
            RangeSumQuery::count(vec![(16, 16), (0, 30)]),
        ] {
            let prepared = engine.prepare(&q);
            let expect = engine.evaluate_prepared(&prepared);
            let got = blocked.evaluate_degraded(&prepared, &mut pool, &RetryPolicy::none());
            assert_eq!(got.estimate.to_bits(), expect.to_bits());
            assert_eq!(got.error_bound, 0.0);
            assert!(!got.degraded());
        }
    }

    #[test]
    fn lost_blocks_degrade_with_honored_bound() {
        let (engine, reference) = engine_and_store();
        let coeffs: Vec<f64> = {
            let mut pool = BufferPool::new(256);
            (0..reference.len())
                .map(|i| pool.get(reference.device(), i / 16).unwrap()[i % 16])
                .collect()
        };
        let blocked = BlockedCoefficients::on_device(&coeffs, 16, |bs, nb| {
            FaultyDevice::with_plan(bs, nb, FaultPlan::uniform(19, FaultKind::DeadBlock, 0.2))
        });
        let mut degraded_seen = 0;
        for q in [
            RangeSumQuery::count(vec![(0, 31), (0, 31)]),
            RangeSumQuery::count(vec![(1, 30), (2, 29)]),
            RangeSumQuery::count(vec![(5, 28), (0, 15)]),
            RangeSumQuery::count(vec![(0, 20), (10, 31)]),
        ] {
            let prepared = engine.prepare(&q);
            let exact = engine.evaluate_prepared(&prepared);
            let mut pool = BufferPool::new(256);
            let got = blocked.evaluate_degraded(&prepared, &mut pool, &RetryPolicy::none());
            assert!(
                (got.estimate - exact).abs() <= got.error_bound + 1e-9,
                "|{} − {exact}| > {}",
                got.estimate,
                got.error_bound
            );
            if got.degraded() {
                degraded_seen += 1;
                assert!(got.missing_coefficients > 0);
            }
        }
        assert!(degraded_seen > 0, "20% dead blocks should degrade something");
    }

    #[test]
    fn progressive_bound_holds_at_every_step() {
        let (engine, _) = engine_and_store();
        let coeffs: Vec<f64> = engine.cube().coeffs().to_vec();
        let blocked = BlockedCoefficients::on_device(&coeffs, 16, |bs, nb| {
            FaultyDevice::with_plan(bs, nb, FaultPlan::uniform(23, FaultKind::DeadBlock, 0.15))
        });
        let q = RangeSumQuery::count(vec![(2, 29), (4, 27)]);
        let prepared = engine.prepare(&q);
        let exact = engine.evaluate_prepared(&prepared);
        let mut pool = BufferPool::new(256);
        let steps = blocked.progressive_degraded(&prepared, &mut pool, &RetryPolicy::none());
        assert_eq!(steps.len(), prepared.nnz());
        for s in &steps {
            assert!(
                (s.estimate - exact).abs() <= s.guaranteed_bound + 1e-6 * exact.abs().max(1.0),
                "step {}: |{} − {exact}| > {}",
                s.coefficients_used,
                s.estimate,
                s.guaranteed_bound
            );
        }
    }

    #[test]
    fn plan_blocks_predicts_exact_cold_read_cost() {
        let (engine, blocked) = engine_and_store();
        for q in [
            RangeSumQuery::count(vec![(0, 31), (0, 31)]),
            RangeSumQuery::count(vec![(3, 25), (7, 19)]),
            RangeSumQuery::count(vec![(16, 16), (0, 30)]),
        ] {
            let prepared = engine.prepare(&q);
            let plan = blocked.plan_blocks(&prepared);
            // Sorted, deduplicated, in range.
            assert!(plan.windows(2).all(|w| w[0] < w[1]));
            assert!(plan.iter().all(|&b| b < blocked.num_blocks()));
            // The plan IS the cold-cache device read cost.
            blocked.device().reset_stats();
            let mut pool = BufferPool::new(blocked.num_blocks());
            blocked.evaluate_degraded(&prepared, &mut pool, &RetryPolicy::none());
            assert_eq!(blocked.device().stats().reads as usize, plan.len());
        }
        assert_eq!(blocked.block_size(), 16);
        assert_eq!(blocked.num_blocks(), blocked.len().div_ceil(16));
        let total: f64 = (0..blocked.num_blocks()).map(|b| blocked.block_energy(b)).sum();
        assert!((total - blocked.data_energy()).abs() < 1e-9);
    }

    #[test]
    fn progressive_clean_final_step_matches_exact() {
        let (engine, blocked) = engine_and_store();
        let q = RangeSumQuery::count(vec![(0, 31), (5, 20)]);
        let prepared = engine.prepare(&q);
        let exact = engine.evaluate_prepared(&prepared);
        let mut pool = BufferPool::new(256);
        let steps = blocked.progressive_degraded(&prepared, &mut pool, &RetryPolicy::none());
        let last = steps.last().unwrap();
        assert!((last.estimate - exact).abs() < 1e-9);
        assert!(last.guaranteed_bound < 1e-9);
    }
}
