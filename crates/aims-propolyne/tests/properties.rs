//! Property-based tests of ProPolyne's core identities.

use proptest::prelude::*;

use aims_dsp::dwt::dwt_full;
use aims_dsp::filters::FilterKind;
use aims_dsp::poly::Polynomial;
use aims_propolyne::batch::{drill_down_queries, evaluate_batch};
use aims_propolyne::cube::DataCube;
use aims_propolyne::engine::Propolyne;
use aims_propolyne::lazy::lazy_transform;
use aims_propolyne::query::{Monomial, RangeSumQuery};

fn filter_strategy() -> impl Strategy<Value = FilterKind> {
    prop_oneof![
        Just(FilterKind::Haar),
        Just(FilterKind::Db4),
        Just(FilterKind::Db6),
        Just(FilterKind::Db8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lazy transform preserves inner products with arbitrary data:
    /// ⟨q, x⟩ time domain == ⟨q̂, x̂⟩ wavelet domain.
    #[test]
    fn lazy_preserves_inner_products(
        data in prop::collection::vec(-20.0_f64..20.0, 128),
        (lo, hi) in (0usize..128, 0usize..128),
        degree in 0usize..=2,
        kind in filter_strategy(),
    ) {
        let (a, b) = (lo.min(hi), lo.max(hi));
        let poly = Polynomial::monomial(degree);
        let f = kind.filter();
        let time: f64 = (a..=b).map(|i| poly.eval(i as f64) * data[i]).sum();
        let xh = dwt_full(&data, &f);
        let lazy = lazy_transform(128, a, b, &poly, &f);
        let freq: f64 = lazy.nonzeros(0.0).iter().map(|&(i, v)| v * xh[i]).sum();
        prop_assert!(
            (time - freq).abs() < 1e-5 * time.abs().max(1.0),
            "{} vs {}", time, freq
        );
    }

    /// ProPolyne is linear in the measure: evaluating a two-term query
    /// equals the sum of evaluating the terms separately.
    #[test]
    fn evaluation_is_linear(
        cells in prop::collection::vec(0.0_f64..5.0, 64),
        (l0, h0) in (0usize..8, 0usize..8),
        (l1, h1) in (0usize..8, 0usize..8),
        kind in filter_strategy(),
    ) {
        let mut cube = DataCube::zeros(&[8, 8]);
        cube.values_mut().copy_from_slice(&cells);
        let engine = Propolyne::new(cube.transform(&kind.filter()));
        let ranges = vec![(l0.min(h0), l0.max(h0)), (l1.min(h1), l1.max(h1))];

        let t1 = Monomial::ones(2);
        let t2 = Monomial::single(2, 0, Polynomial::from_coeffs(vec![0.5, 1.0]));
        let combined = RangeSumQuery { ranges: ranges.clone(), terms: vec![t1.clone(), t2.clone()] };
        let q1 = RangeSumQuery { ranges: ranges.clone(), terms: vec![t1] };
        let q2 = RangeSumQuery { ranges, terms: vec![t2] };
        let sum = engine.evaluate(&q1) + engine.evaluate(&q2);
        let joint = engine.evaluate(&combined);
        prop_assert!((joint - sum).abs() < 1e-6 * sum.abs().max(1.0));
    }

    /// Additivity over disjoint ranges: Q([a,m]) + Q([m+1,b]) = Q([a,b]).
    #[test]
    fn range_additivity(
        cells in prop::collection::vec(0.0_f64..5.0, 256),
        (lo, hi) in (0usize..16, 0usize..16),
        split in 0usize..16,
        kind in filter_strategy(),
    ) {
        let (a, b) = (lo.min(hi), lo.max(hi));
        prop_assume!(a < b);
        let m = a + split % (b - a);
        let mut cube = DataCube::zeros(&[16, 16]);
        cube.values_mut().copy_from_slice(&cells);
        let engine = Propolyne::new(cube.transform(&kind.filter()));

        let whole = engine.evaluate(&RangeSumQuery::count(vec![(a, b), (0, 15)]));
        let left = engine.evaluate(&RangeSumQuery::count(vec![(a, m), (0, 15)]));
        let right = engine.evaluate(&RangeSumQuery::count(vec![(m + 1, b), (0, 15)]));
        prop_assert!((whole - left - right).abs() < 1e-6 * whole.abs().max(1.0));
    }

    /// Progressive evaluation: the final estimate is exact, the bound
    /// dominates the error at every step, and the bound is non-increasing.
    #[test]
    fn progressive_invariants(
        cells in prop::collection::vec(0.0_f64..9.0, 256),
        (l0, h0) in (0usize..16, 0usize..16),
    ) {
        let mut cube = DataCube::zeros(&[16, 16]);
        cube.values_mut().copy_from_slice(&cells);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let q = RangeSumQuery::count(vec![(l0.min(h0), l0.max(h0)), (2, 13)]);
        let run = engine.progressive(&q);
        prop_assume!(!run.steps.is_empty());
        let scale = run.exact.abs().max(1.0);
        prop_assert!(run.steps.last().unwrap().abs_error < 1e-7 * scale);
        let mut prev_bound = f64::INFINITY;
        for s in &run.steps {
            prop_assert!(s.abs_error <= s.guaranteed_bound + 1e-7 * scale);
            prop_assert!(s.guaranteed_bound <= prev_bound + 1e-12);
            prev_bound = s.guaranteed_bound;
        }
    }

    /// Batch drill-down answers match per-query answers and partition the
    /// base aggregate.
    #[test]
    fn batch_partitions(
        cells in prop::collection::vec(0.0_f64..5.0, 256),
        buckets_exp in 1u32..=4,
    ) {
        let mut cube = DataCube::zeros(&[16, 16]);
        cube.values_mut().copy_from_slice(&cells);
        let engine = Propolyne::new(cube.transform(&FilterKind::Haar.filter()));
        let base = RangeSumQuery::count(vec![(0, 15), (0, 15)]);
        let queries = drill_down_queries(&base, 0, 1 << buckets_exp);
        let batch = evaluate_batch(&engine, &queries);
        for (q, &ans) in queries.iter().zip(&batch.answers) {
            let solo = engine.evaluate(q);
            prop_assert!((ans - solo).abs() < 1e-8 * solo.abs().max(1.0));
        }
        let total: f64 = batch.answers.iter().sum();
        prop_assert!((total - cube.total()).abs() < 1e-6 * cube.total().max(1.0));
        prop_assert!(batch.shared_fetches <= batch.independent_fetches);
    }

    /// Synopsis evaluation converges monotonically-ish to exact: with the
    /// full budget it is exact.
    #[test]
    fn full_synopsis_exact(
        cells in prop::collection::vec(0.0_f64..5.0, 64),
        kind in filter_strategy(),
    ) {
        let mut cube = DataCube::zeros(&[8, 8]);
        cube.values_mut().copy_from_slice(&cells);
        let wc = cube.transform(&kind.filter());
        let syn = aims_propolyne::synopsis::DataSynopsis::new(&wc, 64);
        let q = RangeSumQuery::count(vec![(1, 6), (0, 7)]);
        let exact = q.eval_scan(&cube);
        prop_assert!((syn.evaluate(&q) - exact).abs() < 1e-6 * exact.abs().max(1.0));
    }
}
