//! Batch evaluation must be bit-identical across pool sizes, and the
//! sorted-merge shared-fetch path must agree with independent evaluation.
//! The blocked-storage fetch path (plain and zero-fault-wrapped) must be
//! bit-identical to the in-memory engine; ci.sh runs this file under
//! `AIMS_THREADS=1` and `=4`.

use proptest::prelude::*;

use aims_dsp::filters::FilterKind;
use aims_exec::ThreadPool;
use aims_propolyne::batch::{drill_down_queries, evaluate_batch_with};
use aims_propolyne::blockstore::BlockedCoefficients;
use aims_propolyne::cube::DataCube;
use aims_propolyne::engine::Propolyne;
use aims_propolyne::query::RangeSumQuery;
use aims_storage::buffer::BufferPool;
use aims_storage::device::{BlockDevice, RetryPolicy};
use aims_storage::faults::{FaultPlan, FaultyDevice};

fn filter_strategy() -> impl Strategy<Value = FilterKind> {
    prop_oneof![
        Just(FilterKind::Haar),
        Just(FilterKind::Db4),
        Just(FilterKind::Db6),
        Just(FilterKind::Db8),
    ]
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A drill-down batch evaluated on pools of 1, 2, and 8 threads gives
    /// bit-identical answers and identical fetch statistics.
    #[test]
    fn batch_bit_identical_across_pools(
        cells in prop::collection::vec(0.0_f64..9.0, 256),
        (l0, h0) in (0usize..16, 0usize..16),
        buckets in prop_oneof![Just(2usize), Just(4), Just(8), Just(16)],
        kind in filter_strategy(),
    ) {
        let mut cube = DataCube::zeros(&[16, 16]);
        cube.values_mut().copy_from_slice(&cells);
        let engine = Propolyne::new(cube.transform(&kind.filter()));
        let base = RangeSumQuery::count(vec![(l0.min(h0), l0.max(h0)), (0, 15)]);
        let queries = drill_down_queries(&base, 1, buckets);

        let serial = ThreadPool::new(1);
        let reference = evaluate_batch_with(&serial, &engine, &queries);
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            let got = evaluate_batch_with(&pool, &engine, &queries);
            prop_assert_eq!(bits(&got.answers), bits(&reference.answers), "threads={}", threads);
            prop_assert_eq!(got.shared_fetches, reference.shared_fetches);
            prop_assert_eq!(got.independent_fetches, reference.independent_fetches);
        }
    }

    /// The shared-plan sorted merge agrees with one-at-a-time evaluation.
    #[test]
    fn batch_matches_independent_evaluation(
        cells in prop::collection::vec(-5.0_f64..5.0, 256),
        (l0, h0) in (0usize..16, 0usize..16),
        buckets in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let mut cube = DataCube::zeros(&[16, 16]);
        cube.values_mut().copy_from_slice(&cells);
        let engine = Propolyne::new(cube.transform(&FilterKind::Db4.filter()));
        let base = RangeSumQuery::count(vec![(l0.min(h0), l0.max(h0)), (0, 15)]);
        let queries = drill_down_queries(&base, 1, buckets);

        let batch = evaluate_batch_with(&ThreadPool::new(1), &engine, &queries);
        for (q, &got) in queries.iter().zip(&batch.answers) {
            let solo = engine.evaluate(q);
            prop_assert!(
                (got - solo).abs() <= 1e-9 * solo.abs().max(1.0),
                "batch {} vs solo {}", got, solo
            );
        }
    }

    /// The blocked-storage fetch path — on a plain device and on a
    /// zero-fault `FaultyDevice` — is bit-identical to the in-memory
    /// engine for the same prepared query.
    #[test]
    fn blocked_fetch_bit_identical_to_in_memory(
        cells in prop::collection::vec(-7.0_f64..7.0, 256),
        (l0, h0) in (0usize..16, 0usize..16),
        (l1, h1) in (0usize..16, 0usize..16),
        kind in filter_strategy(),
        seed in any::<u64>(),
    ) {
        let mut cube = DataCube::zeros(&[16, 16]);
        cube.values_mut().copy_from_slice(&cells);
        let engine = Propolyne::new(cube.transform(&kind.filter()));
        let q = RangeSumQuery::count(vec![
            (l0.min(h0), l0.max(h0)),
            (l1.min(h1), l1.max(h1)),
        ]);
        let prepared = engine.prepare(&q);
        let expect = engine.evaluate_prepared(&prepared);

        let coeffs = engine.cube().coeffs();
        let plain = BlockedCoefficients::new(coeffs, 16);
        let wrapped = BlockedCoefficients::on_device(coeffs, 16, |bs, nb| {
            FaultyDevice::with_plan(bs, nb, FaultPlan::none(seed))
        });
        let mut p1 = BufferPool::new(32);
        let mut p2 = BufferPool::new(32);
        let a = plain.evaluate_degraded(&prepared, &mut p1, &RetryPolicy::none());
        let b = wrapped.evaluate_degraded(&prepared, &mut p2, &RetryPolicy::default());
        prop_assert_eq!(a.estimate.to_bits(), expect.to_bits(), "plain device diverged");
        prop_assert_eq!(b.estimate.to_bits(), expect.to_bits(), "zero-fault wrapper diverged");
        prop_assert!(!a.degraded() && !b.degraded());
        prop_assert_eq!(
            plain.device().stats().reads,
            wrapped.device().stats().reads,
            "wrapper added I/O"
        );
    }
}
