//! Periodic orthogonal discrete wavelet transform.
//!
//! AIMS stores immersidata in the wavelet domain (paper §3.1.1) and the
//! storage subsystem (§3.2.1) reasons about the flat *error tree* layout of
//! a fully-decomposed signal. This module provides:
//!
//! - single analysis/synthesis steps with periodic boundary handling,
//! - multi-level decompositions ([`WaveletDecomposition`]),
//! - the flat full transform [`dwt_full`] with the canonical error-tree
//!   coefficient ordering `[a_J | d_J | d_{J−1} | … | d_1]`, and
//! - tensor-product ("standard") multidimensional transforms used by
//!   ProPolyne data cubes (§3.3).
//!
//! All transforms here are orthonormal: they preserve energy exactly and
//! their inverses are their adjoints.

use aims_exec::{global_pool, SharedSlice, ThreadPool};

use crate::filters::WaveletFilter;
use crate::kernel::{self, DwtScratch};

/// Returns `true` if `n` is a power of two (and nonzero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `≥ n` (with `next_pow2(0) == 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Pads a signal with zeros up to the next power of two.
pub fn pad_to_pow2(signal: &[f64]) -> Vec<f64> {
    let mut v = signal.to_vec();
    v.resize(next_pow2(signal.len()), 0.0);
    v
}

/// One analysis step with periodic extension: splits `signal` (even length)
/// into `(approx, detail)` halves.
///
/// # Panics
/// If the signal length is zero or odd.
pub fn analysis_step(signal: &[f64], filter: &WaveletFilter) -> (Vec<f64>, Vec<f64>) {
    let n = signal.len();
    assert!(n >= 2 && n.is_multiple_of(2), "analysis step needs even length ≥ 2, got {n}");
    let half = n / 2;
    let h = filter.lowpass();
    let g = filter.highpass();
    let taps = h.len();
    let mut approx = vec![0.0; half];
    let mut detail = vec![0.0; half];
    // Wrap-free fast path: while 2k + taps − 1 < n every tap lands in
    // bounds, so the periodic `% n` is the identity and the window is one
    // contiguous slice. Only the last few output slots (taps/2 − 1 of
    // them) ever wrap.
    let fast = if n >= taps { (n - taps) / 2 + 1 } else { 0 }.min(half);
    for k in 0..fast {
        let window = &signal[2 * k..2 * k + taps];
        let mut a = 0.0;
        let mut d = 0.0;
        for ((&hm, &gm), &x) in h.iter().zip(g).zip(window) {
            a += hm * x;
            d += gm * x;
        }
        approx[k] = a;
        detail[k] = d;
    }
    if taps <= n {
        // Branchless wrapped tail: the window wraps at most once, so an
        // increment-and-reset (compiled to a conditional move) replaces
        // the `% n` per tap. Indices are identical, so output bits are.
        for k in fast..half {
            let mut idx = 2 * k;
            let mut a = 0.0;
            let mut d = 0.0;
            for (&hm, &gm) in h.iter().zip(g) {
                let x = signal[idx];
                a += hm * x;
                d += gm * x;
                idx += 1;
                if idx == n {
                    idx = 0;
                }
            }
            approx[k] = a;
            detail[k] = d;
        }
    } else {
        // Degenerate taps > n case: the window can wrap repeatedly.
        for k in fast..half {
            let mut a = 0.0;
            let mut d = 0.0;
            for (m, (&hm, &gm)) in h.iter().zip(g).enumerate() {
                let x = signal[(2 * k + m) % n];
                a += hm * x;
                d += gm * x;
            }
            approx[k] = a;
            detail[k] = d;
        }
    }
    (approx, detail)
}

/// One synthesis step (adjoint of [`analysis_step`]): reconstructs the
/// even-length signal from its approximation and detail halves.
///
/// # Panics
/// If the halves differ in length or are empty.
pub fn synthesis_step(approx: &[f64], detail: &[f64], filter: &WaveletFilter) -> Vec<f64> {
    assert_eq!(approx.len(), detail.len(), "approx/detail length mismatch");
    assert!(!approx.is_empty(), "cannot synthesize from empty halves");
    let half = approx.len();
    let n = 2 * half;
    let h = filter.lowpass();
    let g = filter.highpass();
    let taps = h.len();
    let mut out = vec![0.0; n];
    // Same wrap-free split as `analysis_step`: contiguous scatter while
    // 2k + taps − 1 < n, periodic wrap only for the tail slots.
    let fast = if n >= taps { (n - taps) / 2 + 1 } else { 0 }.min(half);
    for k in 0..fast {
        let a = approx[k];
        let d = detail[k];
        let window = &mut out[2 * k..2 * k + taps];
        for ((&hm, &gm), slot) in h.iter().zip(g).zip(window.iter_mut()) {
            *slot += hm * a + gm * d;
        }
    }
    if taps <= n {
        // Branchless wrapped tail, mirroring the analysis path: one
        // conditional reset instead of a `% n` per tap.
        for k in fast..half {
            let a = approx[k];
            let d = detail[k];
            let mut idx = 2 * k;
            for (&hm, &gm) in h.iter().zip(g) {
                out[idx] += hm * a + gm * d;
                idx += 1;
                if idx == n {
                    idx = 0;
                }
            }
        }
    } else {
        for k in fast..half {
            let a = approx[k];
            let d = detail[k];
            for (m, (&hm, &gm)) in h.iter().zip(g).enumerate() {
                out[(2 * k + m) % n] += hm * a + gm * d;
            }
        }
    }
    out
}

/// A multi-level wavelet decomposition.
///
/// `details[0]` is the *coarsest* detail band; `details.last()` the finest.
#[derive(Clone, Debug, PartialEq)]
pub struct WaveletDecomposition {
    /// Final (coarsest) approximation coefficients.
    pub approx: Vec<f64>,
    /// Detail bands, coarsest first.
    pub details: Vec<Vec<f64>>,
    /// Filter used, so reconstruction cannot mismatch.
    pub filter: WaveletFilter,
}

impl WaveletDecomposition {
    /// Decomposes `signal` through `levels` analysis steps.
    ///
    /// # Panics
    /// If the signal length is not divisible by `2^levels` or is zero.
    pub fn decompose(signal: &[f64], filter: &WaveletFilter, levels: usize) -> Self {
        Self::decompose_with(signal, filter, levels, &mut DwtScratch::new())
    }

    /// [`WaveletDecomposition::decompose`] reusing a caller-owned scratch
    /// arena, so repeated decompositions (one per line, per window, …)
    /// allocate nothing beyond the output bands.
    pub fn decompose_with(
        signal: &[f64],
        filter: &WaveletFilter,
        levels: usize,
        scratch: &mut DwtScratch,
    ) -> Self {
        assert!(!signal.is_empty(), "cannot decompose an empty signal");
        assert!(
            levels == 0 || signal.len().is_multiple_of(1 << levels),
            "signal length {} not divisible by 2^{levels}",
            signal.len()
        );
        let choice = kernel::resolve(filter);
        let mut work = signal.to_vec();
        let mut details_fine_first = Vec::with_capacity(levels);
        let mut len = work.len();
        for _ in 0..levels {
            kernel::analysis_level_with(&mut work[..len], filter, choice, scratch);
            details_fine_first.push(work[len / 2..len].to_vec());
            len /= 2;
        }
        work.truncate(len);
        details_fine_first.reverse();
        WaveletDecomposition { approx: work, details: details_fine_first, filter: filter.clone() }
    }

    /// Number of analysis levels applied.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Length of the original signal.
    pub fn signal_len(&self) -> usize {
        self.approx.len() << self.details.len()
    }

    /// Inverse transform back to the original signal.
    pub fn reconstruct(&self) -> Vec<f64> {
        self.reconstruct_with(&mut DwtScratch::new())
    }

    /// [`WaveletDecomposition::reconstruct`] reusing a caller-owned
    /// scratch arena.
    pub fn reconstruct_with(&self, scratch: &mut DwtScratch) -> Vec<f64> {
        let choice = kernel::resolve(&self.filter);
        let mut work = Vec::with_capacity(self.signal_len());
        work.extend_from_slice(&self.approx);
        for d in &self.details {
            work.extend_from_slice(d);
        }
        let mut len = self.approx.len();
        for _ in 0..self.details.len() {
            kernel::synthesis_level_with(&mut work[..2 * len], &self.filter, choice, scratch);
            len *= 2;
        }
        work
    }

    /// Total energy across all coefficients (Parseval: equals the signal
    /// energy for these orthonormal filters).
    pub fn energy(&self) -> f64 {
        let a: f64 = self.approx.iter().map(|x| x * x).sum();
        let d: f64 = self.details.iter().flatten().map(|x| x * x).sum();
        a + d
    }

    /// Zeroes all but the `k` largest-magnitude coefficients (approximation
    /// coefficients included), returning how many were kept. This is the
    /// wavelet-synopsis primitive used by data-approximation baselines.
    pub fn keep_top_k(&mut self, k: usize) -> usize {
        let mut mags: Vec<f64> =
            self.approx.iter().chain(self.details.iter().flatten()).map(|x| x.abs()).collect();
        let total = mags.len();
        if k >= total {
            return total;
        }
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = mags[k.saturating_sub(1).min(total - 1)];
        let mut kept = 0;
        let mut clamp = |x: &mut f64| {
            if x.abs() >= threshold && kept < k {
                kept += 1;
            } else {
                *x = 0.0;
            }
        };
        for x in &mut self.approx {
            clamp(x);
        }
        for d in &mut self.details {
            for x in d {
                clamp(x);
            }
        }
        kept
    }
}

/// Full flat transform of a power-of-two signal, in error-tree order.
///
/// ```
/// use aims_dsp::dwt::{dwt_full, idwt_full};
/// use aims_dsp::filters::WaveletFilter;
///
/// let signal = vec![4.0, 6.0, 10.0, 12.0];
/// let f = WaveletFilter::haar();
/// let coeffs = dwt_full(&signal, &f);
/// // The root coefficient carries the (scaled) total: Σx/√N.
/// assert!((coeffs[0] - 32.0 / 2.0).abs() < 1e-12);
/// assert_eq!(idwt_full(&coeffs, &f).len(), 4);
/// ```
///
/// Layout:
/// output index 0 holds the single final approximation coefficient, index 1
/// the coarsest detail, indices `2..4` the next band, …, the top half the
/// finest band.
///
/// This layout makes the Haar dependency structure explicit: the wavelet
/// coefficient at flat index `i ≥ 1` has children at `2i` and `2i + 1`, and
/// reconstructing any data value touches exactly one node per level — the
/// access pattern the storage subsystem (§3.2.1) exploits.
///
/// # Panics
/// If `signal.len()` is not a power of two.
pub fn dwt_full(signal: &[f64], filter: &WaveletFilter) -> Vec<f64> {
    let mut buf = signal.to_vec();
    dwt_full_inplace(&mut buf, filter, &mut DwtScratch::new());
    buf
}

/// [`dwt_full`] in place: rewrites `buf` into its error-tree coefficients
/// using a caller-owned scratch arena — no allocations on the hot path.
///
/// # Panics
/// If `buf.len()` is not a power of two.
pub fn dwt_full_inplace(buf: &mut [f64], filter: &WaveletFilter, scratch: &mut DwtScratch) {
    let _span = aims_telemetry::span!("dsp.dwt.forward");
    kernel::dwt_line(buf, filter, scratch);
}

/// Inverse of [`dwt_full`].
///
/// # Panics
/// If `coeffs.len()` is not a power of two.
pub fn idwt_full(coeffs: &[f64], filter: &WaveletFilter) -> Vec<f64> {
    let mut buf = coeffs.to_vec();
    idwt_full_inplace(&mut buf, filter, &mut DwtScratch::new());
    buf
}

/// [`idwt_full`] in place, with a caller-owned scratch arena.
///
/// # Panics
/// If `buf.len()` is not a power of two.
pub fn idwt_full_inplace(buf: &mut [f64], filter: &WaveletFilter, scratch: &mut DwtScratch) {
    let _span = aims_telemetry::span!("dsp.dwt.inverse");
    kernel::idwt_line(buf, filter, scratch);
}

/// The decomposition level of flat index `i` in the [`dwt_full`] layout of a
/// length-`n` transform. Level `0` is the approximation root; level `l ≥ 1`
/// counts detail bands from coarsest (`1`) to finest (`log2 n`).
pub fn flat_index_level(i: usize, n: usize) -> usize {
    assert!(is_power_of_two(n) && i < n);
    if i == 0 {
        0
    } else {
        (usize::BITS - 1 - i.leading_zeros()) as usize + 1
    }
}

/// Standard (tensor-product) multidimensional wavelet transform: applies the
/// full 1-D transform along every axis of a row-major array with the given
/// power-of-two dimensions. This is the transform ProPolyne assumes for its
/// multivariate range sums.
///
/// Runs on the process-wide [`aims_exec`] pool; see
/// [`dwt_standard_md_with`] to supply an explicit pool.
///
/// # Panics
/// If `data.len() != dims.iter().product()` or any dimension is not a power
/// of two.
pub fn dwt_standard_md(data: &[f64], dims: &[usize], filter: &WaveletFilter) -> Vec<f64> {
    dwt_standard_md_with(global_pool(), data, dims, filter)
}

/// Inverse of [`dwt_standard_md`].
pub fn idwt_standard_md(coeffs: &[f64], dims: &[usize], filter: &WaveletFilter) -> Vec<f64> {
    idwt_standard_md_with(global_pool(), coeffs, dims, filter)
}

/// [`dwt_standard_md`] on an explicit thread pool. Every 1-D line is
/// transformed by exactly one task, so the result is bit-identical for
/// every pool size.
pub fn dwt_standard_md_with(
    pool: &ThreadPool,
    data: &[f64],
    dims: &[usize],
    filter: &WaveletFilter,
) -> Vec<f64> {
    let _span = aims_telemetry::span!("dsp.dwt.md.forward");
    transform_md(pool, data, dims, filter, true)
}

/// [`idwt_standard_md`] on an explicit thread pool.
pub fn idwt_standard_md_with(
    pool: &ThreadPool,
    coeffs: &[f64],
    dims: &[usize],
    filter: &WaveletFilter,
) -> Vec<f64> {
    let _span = aims_telemetry::span!("dsp.dwt.md.inverse");
    transform_md(pool, coeffs, dims, filter, false)
}

/// Axis-by-axis driver: each axis pass transforms `total / len` independent
/// 1-D lines in place (a barrier between axes is implied by the scoped
/// pool API).
///
/// Two regimes per axis, both allocation-free on the per-line path:
///
/// - **`stride == 1`** (the innermost axis): lines are already contiguous
///   slices of the buffer, so each task transforms them directly through
///   [`SharedSlice::slice_mut`] — no gather at all.
/// - **`stride > 1`**: the classic strided gather touches one cache line
///   per element. Instead, a *tile* of `T` adjacent lines (autotuned via
///   [`aims_exec::tuning`], override `AIMS_TILE`) is transposed into a
///   contiguous scratch block — adjacent lines have bases differing by 1,
///   so every gather/scatter step moves a contiguous `T`-run — the `T`
///   now-contiguous lines are transformed, and the tile is scattered back.
///
/// Transforms below the tuned element threshold run inline on the caller,
/// so small cubes never pay fan-out (the old "0.67× speedup" failure).
/// Tile size, threshold, and pool size never affect which arithmetic runs
/// on a line, so results are bit-identical across all of them.
fn transform_md(
    pool: &ThreadPool,
    data: &[f64],
    dims: &[usize],
    filter: &WaveletFilter,
    forward: bool,
) -> Vec<f64> {
    let total: usize = dims.iter().product();
    assert_eq!(data.len(), total, "data length does not match dims");
    for &d in dims {
        assert!(is_power_of_two(d), "dimension {d} is not a power of two");
    }
    let mut buf = data.to_vec();
    // Row-major strides.
    let mut strides = vec![1usize; dims.len()];
    for axis in (0..dims.len().saturating_sub(1)).rev() {
        strides[axis] = strides[axis + 1] * dims[axis + 1];
    }
    let tune = aims_exec::tuning();
    let line = |slice: &mut [f64], scratch: &mut DwtScratch| {
        if forward {
            kernel::dwt_line(slice, filter, scratch);
        } else {
            kernel::idwt_line(slice, filter, scratch);
        }
    };
    for axis in 0..dims.len() {
        let len = dims[axis];
        if len < 2 {
            continue; // length-1 lines transform to themselves
        }
        let stride = strides[axis];
        let lines = total / len;
        let serial = pool.is_serial() || tune.serial_below(total);
        // Distinct lines (and distinct tiles) cover disjoint index sets,
        // so concurrent access through the shared view is race-free.
        let view = SharedSlice::new(&mut buf);
        let view = &view;
        let line = &line;
        if stride == 1 {
            let run = |range: std::ops::Range<usize>| {
                let mut scratch = DwtScratch::new();
                for l in range {
                    // SAFETY: line l exclusively owns [l·len, (l+1)·len).
                    let s = unsafe { view.slice_mut(l * len, len) };
                    line(s, &mut scratch);
                }
            };
            if serial {
                run(0..lines);
            } else {
                pool.par_chunks(lines, (4096 / len).max(1), run);
            }
        } else {
            let tile = tune.tile.min(stride);
            let blocks_per_outer = stride.div_ceil(tile);
            let n_outer = total / (stride * len);
            let n_tiles = n_outer * blocks_per_outer;
            let run = |range: std::ops::Range<usize>| {
                let mut scratch = DwtScratch::new();
                let mut tile_buf = vec![0.0f64; tile * len];
                for t_id in range {
                    let outer = t_id / blocks_per_outer;
                    let i0 = (t_id % blocks_per_outer) * tile;
                    let t = tile.min(stride - i0);
                    let base = outer * stride * len + i0;
                    for j in 0..len {
                        let src = base + j * stride;
                        for ti in 0..t {
                            // SAFETY: tile (outer, i0..i0+t) owns indices
                            // base + j·stride + ti exclusively.
                            tile_buf[ti * len + j] = unsafe { view.read(src + ti) };
                        }
                    }
                    for ti in 0..t {
                        line(&mut tile_buf[ti * len..(ti + 1) * len], &mut scratch);
                    }
                    for j in 0..len {
                        let dst = base + j * stride;
                        for ti in 0..t {
                            // SAFETY: same disjoint index set as the gather.
                            unsafe { view.write(dst + ti, tile_buf[ti * len + j]) };
                        }
                    }
                }
            };
            if serial {
                run(0..n_tiles);
            } else {
                let min_tiles = (4096 / (tile * len)).max(1);
                pool.par_chunks(n_tiles, min_tiles, run);
            }
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterKind;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn haar_analysis_known_values() {
        let f = WaveletFilter::haar();
        let (a, d) = analysis_step(&[1.0, 3.0, 5.0, 7.0], &f);
        let s = std::f64::consts::SQRT_2;
        // Haar: a[k] = (x₂ₖ + x₂ₖ₊₁)/√2, d[k] = (x₂ₖ − x₂ₖ₊₁)/√2
        assert!((a[0] - 4.0 / s).abs() < 1e-12);
        assert!((a[1] - 12.0 / s).abs() < 1e-12);
        assert!((d[0] - (-2.0) / s).abs() < 1e-12);
        assert!((d[1] - (-2.0) / s).abs() < 1e-12);
    }

    #[test]
    fn perfect_reconstruction_one_step_all_filters() {
        let x: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        for kind in FilterKind::ALL {
            let f = kind.filter();
            let (a, d) = analysis_step(&x, &f);
            let y = synthesis_step(&a, &d, &f);
            for (xi, yi) in x.iter().zip(&y) {
                assert!((xi - yi).abs() < 1e-10, "{}: {xi} vs {yi}", f.name());
            }
        }
    }

    #[test]
    fn energy_preservation_one_step() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() * 2.0).collect();
        for kind in FilterKind::ALL {
            let f = kind.filter();
            let (a, d) = analysis_step(&x, &f);
            let e = energy(&a) + energy(&d);
            assert!((e - energy(&x)).abs() < 1e-9, "{}", f.name());
        }
    }

    #[test]
    fn multilevel_roundtrip_and_energy() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).cos() + 0.01 * i as f64).collect();
        for kind in FilterKind::ALL {
            let f = kind.filter();
            let dec = WaveletDecomposition::decompose(&x, &f, 5);
            assert_eq!(dec.levels(), 5);
            assert_eq!(dec.signal_len(), 128);
            assert!((dec.energy() - energy(&x)).abs() < 1e-7, "{}", f.name());
            let y = dec.reconstruct();
            for (xi, yi) in x.iter().zip(&y) {
                assert!((xi - yi).abs() < 1e-9, "{}", f.name());
            }
        }
    }

    #[test]
    fn dwt_full_roundtrip() {
        let x: Vec<f64> = (0..256).map(|i| ((i * i) % 17) as f64 * 0.5 - 4.0).collect();
        for kind in FilterKind::ALL {
            let f = kind.filter();
            let c = dwt_full(&x, &f);
            assert_eq!(c.len(), x.len());
            let y = idwt_full(&c, &f);
            for (xi, yi) in x.iter().zip(&y) {
                assert!((xi - yi).abs() < 1e-9, "{}", f.name());
            }
        }
    }

    #[test]
    fn dwt_full_constant_signal_concentrates_at_root() {
        let f = WaveletFilter::haar();
        let x = vec![5.0; 16];
        let c = dwt_full(&x, &f);
        // All energy at the approximation coefficient.
        assert!((c[0] - 5.0 * 4.0).abs() < 1e-10); // 5·√16
        for &d in &c[1..] {
            assert!(d.abs() < 1e-10);
        }
    }

    #[test]
    fn flat_index_level_mapping() {
        assert_eq!(flat_index_level(0, 16), 0);
        assert_eq!(flat_index_level(1, 16), 1);
        assert_eq!(flat_index_level(2, 16), 2);
        assert_eq!(flat_index_level(3, 16), 2);
        assert_eq!(flat_index_level(4, 16), 3);
        assert_eq!(flat_index_level(7, 16), 3);
        assert_eq!(flat_index_level(8, 16), 4);
        assert_eq!(flat_index_level(15, 16), 4);
    }

    #[test]
    fn keep_top_k_preserves_largest() {
        let f = WaveletFilter::haar();
        let x: Vec<f64> = (0..32).map(|i| if i == 5 { 100.0 } else { 1.0 }).collect();
        let mut dec = WaveletDecomposition::decompose(&x, &f, 5);
        let kept = dec.keep_top_k(4);
        assert_eq!(kept, 4);
        let approx_x = dec.reconstruct();
        // The spike region should still be roughly represented.
        let err = energy(&x.iter().zip(&approx_x).map(|(a, b)| a - b).collect::<Vec<_>>());
        assert!(err < energy(&x) * 0.5, "top-k synopsis lost too much energy: {err}");
        // keep_top_k with k >= total keeps everything.
        let mut dec2 = WaveletDecomposition::decompose(&x, &f, 5);
        assert_eq!(dec2.keep_top_k(1000), 32);
    }

    #[test]
    fn md_transform_roundtrip_2d() {
        let dims = [8, 16];
        let data: Vec<f64> = (0..128).map(|i| ((i * 31) % 23) as f64 - 11.0).collect();
        for kind in [FilterKind::Haar, FilterKind::Db4] {
            let f = kind.filter();
            let c = dwt_standard_md(&data, &dims, &f);
            let y = idwt_standard_md(&c, &dims, &f);
            for (a, b) in data.iter().zip(&y) {
                assert!((a - b).abs() < 1e-9, "{}", f.name());
            }
            assert!((energy(&c) - energy(&data)).abs() < 1e-8);
        }
    }

    #[test]
    fn md_transform_roundtrip_3d() {
        let dims = [4, 8, 4];
        let data: Vec<f64> = (0..128).map(|i| (i as f64 * 0.7).sin()).collect();
        let f = WaveletFilter::db4();
        let c = dwt_standard_md(&data, &dims, &f);
        let y = idwt_standard_md(&c, &dims, &f);
        for (a, b) in data.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn md_matches_tensor_of_1d_on_separable_input() {
        // data[i][j] = u[i]·v[j] ⇒ coeffs[i][j] = û[i]·v̂[j].
        let u: Vec<f64> = (0..8).map(|i| (i as f64 - 3.0) * 0.5).collect();
        let v: Vec<f64> = (0..4).map(|i| 1.0 + i as f64).collect();
        let f = WaveletFilter::haar();
        let data: Vec<f64> = u.iter().flat_map(|&a| v.iter().map(move |&b| a * b)).collect();
        let c = dwt_standard_md(&data, &[8, 4], &f);
        let cu = dwt_full(&u, &f);
        let cv = dwt_full(&v, &f);
        for i in 0..8 {
            for j in 0..4 {
                assert!((c[i * 4 + j] - cu[i] * cv[j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn pad_helpers() {
        assert!(
            is_power_of_two(1)
                && is_power_of_two(64)
                && !is_power_of_two(0)
                && !is_power_of_two(12)
        );
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(17), 32);
        let p = pad_to_pow2(&ramp(5));
        assert_eq!(p.len(), 8);
        assert_eq!(&p[..5], &ramp(5)[..]);
        assert_eq!(&p[5..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn dwt_full_rejects_non_pow2() {
        dwt_full(&ramp(12), &WaveletFilter::haar());
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn analysis_rejects_odd() {
        analysis_step(&ramp(5), &WaveletFilter::haar());
    }

    #[test]
    fn decompose_zero_levels_is_identity() {
        let x = ramp(10);
        let dec = WaveletDecomposition::decompose(&x, &WaveletFilter::haar(), 0);
        assert_eq!(dec.reconstruct(), x);
        assert_eq!(dec.levels(), 0);
    }
}
