//! In-place single-core DWT kernels (lifting + blocked convolution).
//!
//! The original transform path allocated a fresh `(approx, detail)` pair
//! per level per line ([`crate::dwt::analysis_step`]) — fine as a
//! reference, but on the hot multidimensional path every 1-D line of a
//! 1024² cube paid ~20 allocations. The kernels here transform one line
//! **in place** in the flat error-tree order of [`crate::dwt::dwt_full`]
//! (`[a_J | d_J | … | d_1]`): a level that rewrites `buf[..len]` into its
//! `[approx | detail]` halves leaves the detail band exactly at its final
//! flat position, so the whole multi-level transform needs one buffer and
//! one scratch arena.
//!
//! Per-filter strategy:
//!
//! - **Haar** — the lifting factorization (`d = x₀ − x₁`,
//!   `a = x₁ + d/2`) collapses, after normalization, into the scaled
//!   butterfly `a = s·x₀ + s·x₁`, `d = s·x₀ − s·x₁` with `s = 1/√2`. We
//!   implement that form because it is *bit-identical* to the convolution
//!   path (same multiplies, same addition order) — every Haar consumer in
//!   the workspace (storage error trees, stream synopses) sees unchanged
//!   coefficients.
//! - **Db4** — the Daubechies–Sweldens lifting factorization: with
//!   `√3`-predict, two dual-lifting steps and a final scaling it spends 5
//!   multiplies per input pair where the convolution spends 8. The output
//!   equals the periodic convolution transform exactly in real arithmetic;
//!   in floats it differs by rounding only, bounded by the
//!   ulps-per-level property test in `tests/lifting_equivalence.rs`.
//! - **Db6/Db8** — in-place blocked convolution with the same wrap-free
//!   fast path and branchless wrapped tail as `analysis_step`, and
//!   bit-identical output to it.
//!
//! All kernels are scratch-arena based: [`DwtScratch`] is created once per
//! worker and reused for every line and level, with the
//! `dsp.kernel.scratch_reuse` counter recording each avoided allocation.

use std::sync::Arc;

use aims_telemetry::metrics::Counter;

use crate::dwt::is_power_of_two;
use crate::filters::WaveletFilter;

/// Reusable scratch arena for the in-place kernels.
///
/// One instance per worker: [`DwtScratch::ensure`] hands out the backing
/// buffer, growing it only when a larger transform arrives. Every call
/// that *reuses* the existing allocation bumps `dsp.kernel.scratch_reuse`.
pub struct DwtScratch {
    buf: Vec<f64>,
    reuse: Arc<Counter>,
}

impl DwtScratch {
    /// Creates an empty arena (no allocation until first use).
    pub fn new() -> Self {
        DwtScratch {
            buf: Vec::new(),
            reuse: aims_telemetry::global().counter("dsp.kernel.scratch_reuse"),
        }
    }

    /// Returns a scratch slice of at least `n` elements, reusing the
    /// existing allocation when it is already large enough.
    fn ensure(&mut self, n: usize) -> &mut [f64] {
        if self.buf.len() >= n {
            self.reuse.add(1);
        } else {
            self.buf.resize(n, 0.0);
        }
        &mut self.buf[..n]
    }
}

impl Default for DwtScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Which in-place kernel serves a filter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kernel {
    Haar,
    Db4Lifting,
    Conv,
}

fn kernel_for(filter: &WaveletFilter) -> Kernel {
    match filter.name() {
        "haar" => Kernel::Haar,
        "db4" => Kernel::Db4Lifting,
        _ => Kernel::Conv,
    }
}

/// Human-readable name of the kernel that serves `filter`, for
/// diagnostics (`aims-cli kernels`).
pub fn kernel_name(filter: &WaveletFilter) -> &'static str {
    match kernel_for(filter) {
        Kernel::Haar => "haar butterfly (in-place, exact)",
        Kernel::Db4Lifting => "daubechies-sweldens lifting (in-place, ulp-bounded)",
        Kernel::Conv => "blocked convolution (scratch-staged, exact)",
    }
}

/// Full in-place forward transform of a power-of-two line into the
/// error-tree layout `[a_J | d_J | … | d_1]` (same output as
/// [`crate::dwt::dwt_full`], without the allocation per level).
///
/// # Panics
/// If `buf.len()` is not a power of two.
pub fn dwt_line(buf: &mut [f64], filter: &WaveletFilter, scratch: &mut DwtScratch) {
    let n = buf.len();
    assert!(is_power_of_two(n), "dwt_line requires a power-of-two length, got {n}");
    if n < 2 {
        return;
    }
    let kernel = kernel_for(filter);
    let s = scratch.ensure(n);
    let mut len = n;
    while len >= 2 {
        analysis_level(&mut buf[..len], filter, kernel, s);
        len /= 2;
    }
}

/// Full in-place inverse of [`dwt_line`].
///
/// # Panics
/// If `buf.len()` is not a power of two.
pub fn idwt_line(buf: &mut [f64], filter: &WaveletFilter, scratch: &mut DwtScratch) {
    let n = buf.len();
    assert!(is_power_of_two(n), "idwt_line requires a power-of-two length, got {n}");
    if n < 2 {
        return;
    }
    let kernel = kernel_for(filter);
    let s = scratch.ensure(n);
    let mut len = 2;
    while len <= n {
        synthesis_level(&mut buf[..len], filter, kernel, s);
        len *= 2;
    }
}

/// One analysis level: rewrites the even-length `buf` into
/// `[approx | detail]` halves. Usable on any even length (not just powers
/// of two), which is what [`crate::dwt::WaveletDecomposition`] needs.
fn analysis_level(buf: &mut [f64], filter: &WaveletFilter, kernel: Kernel, scratch: &mut [f64]) {
    debug_assert!(buf.len() >= 2 && buf.len().is_multiple_of(2));
    match kernel {
        Kernel::Haar => analysis_haar(buf, scratch),
        Kernel::Db4Lifting => analysis_db4(buf, scratch),
        Kernel::Conv => analysis_conv(buf, filter, scratch),
    }
}

/// One synthesis level: rewrites `[approx | detail]` halves in `buf` back
/// into the even-length signal. Inverse of [`analysis_level`].
fn synthesis_level(buf: &mut [f64], filter: &WaveletFilter, kernel: Kernel, scratch: &mut [f64]) {
    debug_assert!(buf.len() >= 2 && buf.len().is_multiple_of(2));
    match kernel {
        Kernel::Haar => synthesis_haar(buf, scratch),
        Kernel::Db4Lifting => synthesis_db4(buf, scratch),
        Kernel::Conv => synthesis_conv(buf, filter, scratch),
    }
}

/// Level entry points for callers outside this module that have already
/// resolved the kernel once (avoids re-matching the filter name per level).
pub(crate) fn resolve(filter: &WaveletFilter) -> KernelChoice {
    KernelChoice(kernel_for(filter))
}

/// Opaque pre-resolved kernel selector (see [`resolve`]).
#[derive(Clone, Copy)]
pub(crate) struct KernelChoice(Kernel);

pub(crate) fn analysis_level_with(
    buf: &mut [f64],
    filter: &WaveletFilter,
    choice: KernelChoice,
    scratch: &mut DwtScratch,
) {
    let n = buf.len();
    let s = scratch.ensure(n);
    analysis_level(buf, filter, choice.0, s);
}

pub(crate) fn synthesis_level_with(
    buf: &mut [f64],
    filter: &WaveletFilter,
    choice: KernelChoice,
    scratch: &mut DwtScratch,
) {
    let n = buf.len();
    let s = scratch.ensure(n);
    synthesis_level(buf, filter, choice.0, s);
}

// ---------------------------------------------------------------------------
// Haar: scaled-butterfly lifting, bit-identical to the convolution path.
// ---------------------------------------------------------------------------

fn analysis_haar(buf: &mut [f64], scratch: &mut [f64]) {
    let half = buf.len() / 2;
    let s = std::f64::consts::FRAC_1_SQRT_2;
    // Approx lands at buf[k] (k ≤ 2k, so never ahead of the read cursor);
    // detail is staged in scratch because buf[half + k] may still hold an
    // unread input pair.
    for k in 0..half {
        let x0 = buf[2 * k];
        let x1 = buf[2 * k + 1];
        scratch[k] = s * x0 - s * x1;
        buf[k] = s * x0 + s * x1;
    }
    buf[half..].copy_from_slice(&scratch[..half]);
}

fn synthesis_haar(buf: &mut [f64], scratch: &mut [f64]) {
    let half = buf.len() / 2;
    let s = std::f64::consts::FRAC_1_SQRT_2;
    // Stage the detail band: interleaving writes at 2k/2k+1 would clobber
    // it. Walking k downward keeps writes strictly above every unread
    // approx slot.
    scratch[..half].copy_from_slice(&buf[half..]);
    for k in (0..half).rev() {
        let a = buf[k];
        let d = scratch[k];
        buf[2 * k] = s * a + s * d;
        buf[2 * k + 1] = s * a - s * d;
    }
}

// ---------------------------------------------------------------------------
// Db4: Daubechies–Sweldens lifting factorization.
//
// With a = √3, e[n] = x[2n], o[n] = x[2n+1] (indices periodic mod half):
//   s1[n] = e[n] + a·o[n]
//   d1[n] = o[n] − (a/4)·s1[n] − ((a−2)/4)·s1[n−1]
//   s2[n] = s1[n] − d1[n+1]
//   approx[n]          = ((a−1)/√2) · s2[n]
//   detail[(n−1) mod]  = (−(a+1)/√2) · d1[n]
//
// Expanding shows approx[n] = Σ h[m]·x[2n+m] and the shifted, negated
// detail equals Σ g[m]·x[2k+m] with this crate's QMF highpass — i.e. the
// exact periodic convolution transform, up to floating-point rounding.
// ---------------------------------------------------------------------------

fn analysis_db4(buf: &mut [f64], scratch: &mut [f64]) {
    let half = buf.len() / 2;
    let s3 = 3.0_f64.sqrt();
    let c1 = s3 * 0.25;
    let c2 = (s3 - 2.0) * 0.25;
    let ks = (s3 - 1.0) / std::f64::consts::SQRT_2;
    let kd = -(s3 + 1.0) / std::f64::consts::SQRT_2;
    // Deinterleave: evens compact to buf[..half], odds to scratch. Reads
    // stay ahead of writes (2k ≥ k).
    for k in 0..half {
        let odd = buf[2 * k + 1];
        buf[k] = buf[2 * k];
        scratch[k] = odd;
    }
    let (e, dband) = buf.split_at_mut(half);
    let o = &mut scratch[..half];
    // Predict: s1 = e + √3·o.
    for k in 0..half {
        e[k] += s3 * o[k];
    }
    // Dual lift: d1[n] = o[n] − c1·s1[n] − c2·s1[n−1] (periodic).
    let mut prev = e[half - 1];
    for k in 0..half {
        let cur = e[k];
        o[k] = o[k] - c1 * cur - c2 * prev;
        prev = cur;
    }
    // Update: s2[n] = s1[n] − d1[n+1] (periodic).
    let first = o[0];
    for k in 0..half - 1 {
        e[k] -= o[k + 1];
    }
    e[half - 1] -= first;
    // Normalize and scatter: approx in place, detail shifted one slot down
    // to line up with the convolution phase.
    for x in e.iter_mut() {
        *x *= ks;
    }
    for (j, slot) in dband.iter_mut().enumerate() {
        let src = if j + 1 == half { 0 } else { j + 1 };
        *slot = kd * o[src];
    }
}

fn synthesis_db4(buf: &mut [f64], scratch: &mut [f64]) {
    let half = buf.len() / 2;
    let s3 = 3.0_f64.sqrt();
    let c1 = s3 * 0.25;
    let c2 = (s3 - 2.0) * 0.25;
    let inv_ks = std::f64::consts::SQRT_2 / (s3 - 1.0);
    let inv_kd = -std::f64::consts::SQRT_2 / (s3 + 1.0);
    {
        let (a, dband) = buf.split_at_mut(half);
        let o = &mut scratch[..half];
        // Undo scaling and the detail phase shift.
        for (k, slot) in o.iter_mut().enumerate() {
            let j = if k == 0 { half - 1 } else { k - 1 };
            *slot = dband[j] * inv_kd;
        }
        for x in a.iter_mut() {
            *x *= inv_ks;
        }
        // Undo update: s1[n] = s2[n] + d1[n+1].
        let first = o[0];
        for k in 0..half - 1 {
            a[k] += o[k + 1];
        }
        a[half - 1] += first;
        // Undo dual lift: o[n] = d1[n] + c1·s1[n] + c2·s1[n−1].
        let mut prev = a[half - 1];
        for k in 0..half {
            let cur = a[k];
            o[k] = o[k] + c1 * cur + c2 * prev;
            prev = cur;
        }
        // Undo predict: e = s1 − √3·o.
        for k in 0..half {
            a[k] -= s3 * o[k];
        }
    }
    // Interleave back, walking downward so writes at 2k/2k+1 never touch
    // an unread even slot (reads are at k' < k ≤ 2k).
    let o = &scratch[..half];
    for k in (0..half).rev() {
        let even = buf[k];
        buf[2 * k] = even;
        buf[2 * k + 1] = o[k];
    }
}

// ---------------------------------------------------------------------------
// General filters: in-place blocked convolution, bit-identical to
// `analysis_step`/`synthesis_step` (same window order, same accumulation
// order, branchless wrapped tail).
// ---------------------------------------------------------------------------

fn analysis_conv(buf: &mut [f64], filter: &WaveletFilter, scratch: &mut [f64]) {
    let n = buf.len();
    let half = n / 2;
    let h = filter.lowpass();
    let g = filter.highpass();
    let taps = h.len();
    let (sa, sd) = scratch[..n].split_at_mut(half);
    let fast = if n >= taps { (n - taps) / 2 + 1 } else { 0 }.min(half);
    for k in 0..fast {
        let window = &buf[2 * k..2 * k + taps];
        let mut a = 0.0;
        let mut d = 0.0;
        for ((&hm, &gm), &x) in h.iter().zip(g).zip(window) {
            a += hm * x;
            d += gm * x;
        }
        sa[k] = a;
        sd[k] = d;
    }
    if taps <= n {
        for k in fast..half {
            let mut idx = 2 * k;
            let mut a = 0.0;
            let mut d = 0.0;
            for (&hm, &gm) in h.iter().zip(g) {
                let x = buf[idx];
                a += hm * x;
                d += gm * x;
                idx += 1;
                if idx == n {
                    idx = 0;
                }
            }
            sa[k] = a;
            sd[k] = d;
        }
    } else {
        for k in fast..half {
            let mut a = 0.0;
            let mut d = 0.0;
            for (m, (&hm, &gm)) in h.iter().zip(g).enumerate() {
                let x = buf[(2 * k + m) % n];
                a += hm * x;
                d += gm * x;
            }
            sa[k] = a;
            sd[k] = d;
        }
    }
    buf[..half].copy_from_slice(sa);
    buf[half..].copy_from_slice(sd);
}

fn synthesis_conv(buf: &mut [f64], filter: &WaveletFilter, scratch: &mut [f64]) {
    let n = buf.len();
    let half = n / 2;
    let h = filter.lowpass();
    let g = filter.highpass();
    let taps = h.len();
    let out = &mut scratch[..n];
    out.fill(0.0);
    let fast = if n >= taps { (n - taps) / 2 + 1 } else { 0 }.min(half);
    for k in 0..fast {
        let a = buf[k];
        let d = buf[half + k];
        let window = &mut out[2 * k..2 * k + taps];
        for ((&hm, &gm), slot) in h.iter().zip(g).zip(window.iter_mut()) {
            *slot += hm * a + gm * d;
        }
    }
    if taps <= n {
        for k in fast..half {
            let a = buf[k];
            let d = buf[half + k];
            let mut idx = 2 * k;
            for (&hm, &gm) in h.iter().zip(g) {
                out[idx] += hm * a + gm * d;
                idx += 1;
                if idx == n {
                    idx = 0;
                }
            }
        }
    } else {
        for k in fast..half {
            let a = buf[k];
            let d = buf[half + k];
            for (m, (&hm, &gm)) in h.iter().zip(g).enumerate() {
                out[(2 * k + m) % n] += hm * a + gm * d;
            }
        }
    }
    buf.copy_from_slice(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dwt::{analysis_step, synthesis_step};
    use crate::filters::FilterKind;

    fn ref_full(signal: &[f64], filter: &WaveletFilter) -> Vec<f64> {
        // Pre-kernel reference: repeated allocating convolution steps.
        let mut approx = signal.to_vec();
        let mut details = Vec::new();
        while approx.len() > 1 {
            let (a, d) = analysis_step(&approx, filter);
            details.push(d);
            approx = a;
        }
        let mut out = approx;
        for d in details.into_iter().rev() {
            out.extend_from_slice(&d);
        }
        out
    }

    fn ref_inverse(coeffs: &[f64], filter: &WaveletFilter) -> Vec<f64> {
        let mut approx = vec![coeffs[0]];
        let mut offset = 1;
        while offset < coeffs.len() {
            let band = &coeffs[offset..offset + approx.len()];
            approx = synthesis_step(&approx, band, filter);
            offset += band.len();
        }
        approx
    }

    fn noise(n: usize) -> Vec<f64> {
        (0..n).map(|i| (((i * 2654435761) % 1000) as f64 - 500.0) * 0.013).collect()
    }

    #[test]
    fn haar_and_conv_kernels_bit_match_reference() {
        for kind in [FilterKind::Haar, FilterKind::Db6, FilterKind::Db8] {
            let f = kind.filter();
            for n in [2usize, 4, 16, 128, 1024] {
                let x = noise(n);
                let mut buf = x.clone();
                let mut scratch = DwtScratch::new();
                dwt_line(&mut buf, &f, &mut scratch);
                let reference = ref_full(&x, &f);
                for (a, b) in buf.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} n={n}", f.name());
                }
                idwt_line(&mut buf, &f, &mut scratch);
                let back = ref_inverse(&reference, &f);
                for (a, b) in buf.iter().zip(&back) {
                    assert_eq!(a.to_bits(), b.to_bits(), "inverse {} n={n}", f.name());
                }
            }
        }
    }

    #[test]
    fn db4_lifting_matches_convolution_within_ulps() {
        let f = FilterKind::Db4.filter();
        for n in [2usize, 4, 8, 64, 512, 4096] {
            let x = noise(n);
            let mut buf = x.clone();
            let mut scratch = DwtScratch::new();
            dwt_line(&mut buf, &f, &mut scratch);
            let reference = ref_full(&x, &f);
            let levels = n.trailing_zeros() as f64;
            let scale = x.iter().fold(1e-30_f64, |m, v| m.max(v.abs()));
            // A few ulps per level at each coefficient's own magnitude
            // (per level the lifting chain rounds a handful of ops).
            for (i, (a, b)) in buf.iter().zip(&reference).enumerate() {
                let tol = 4.0 * (levels + 1.0) * b.abs().max(scale) * f64::EPSILON;
                assert!((a - b).abs() <= tol, "n={n} i={i}: {a} vs {b} (tol {tol:e})");
            }
            // Lifting round trip reconstructs the input.
            idwt_line(&mut buf, &f, &mut scratch);
            for (a, b) in buf.iter().zip(&x) {
                let tol = 8.0 * (levels + 1.0) * b.abs().max(scale) * f64::EPSILON;
                assert!((a - b).abs() <= tol, "roundtrip n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_counted() {
        let before = aims_telemetry::global().snapshot().counter("dsp.kernel.scratch_reuse");
        let f = FilterKind::Haar.filter();
        let mut scratch = DwtScratch::new();
        let mut buf = noise(64);
        dwt_line(&mut buf, &f, &mut scratch); // first use allocates
        dwt_line(&mut buf, &f, &mut scratch); // second reuses
        let after = aims_telemetry::global().snapshot().counter("dsp.kernel.scratch_reuse");
        assert!(after > before, "scratch reuse not recorded: {before} → {after}");
    }

    #[test]
    fn length_one_line_is_identity() {
        let f = FilterKind::Db4.filter();
        let mut scratch = DwtScratch::new();
        let mut buf = [3.25];
        dwt_line(&mut buf, &f, &mut scratch);
        assert_eq!(buf[0], 3.25);
        idwt_line(&mut buf, &f, &mut scratch);
        assert_eq!(buf[0], 3.25);
    }
}
