//! Canonical Huffman block coder.
//!
//! The acquisition study behind AIMS (paper §3.1) compares adaptive sampling
//! against "a block-based compression technique, e.g., Unix zip software
//! (based on Hoffman coding)". This module is that baseline: a from-scratch
//! canonical Huffman coder over quantized sample codes, with a bit-exact
//! round trip and an honest encoded-size accounting (code table included).

use std::collections::BinaryHeap;

/// A Huffman-encoded symbol block.
#[derive(Clone, Debug, PartialEq)]
pub struct HuffmanEncoded {
    /// Code length (bits) per symbol value; zero for unused symbols.
    /// Index = symbol value.
    pub code_lengths: Vec<u8>,
    /// Number of encoded symbols.
    pub len: usize,
    /// The packed bitstream.
    pub bits: Vec<u8>,
}

impl HuffmanEncoded {
    /// Encoded size in bytes: bitstream plus the canonical code-length
    /// table (1 byte per possible symbol) plus an 8-byte length header.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() + self.code_lengths.len() + 8
    }
}

#[derive(PartialEq, Eq)]
struct HeapNode {
    weight: u64,
    // Tie-break on id for determinism.
    id: usize,
    node: usize,
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap.
        other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes canonical Huffman code lengths for the given symbol
/// frequencies. Returns a length per symbol (0 = unused). A single distinct
/// symbol gets length 1.
pub fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let mut lengths = vec![0u8; freqs.len()];
    let used: Vec<usize> =
        freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(i, _)| i).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Build the tree: parents[] over an arena of nodes. Leaves are
    // 0..used.len(); internal nodes follow.
    let n_leaves = used.len();
    let mut parent = vec![usize::MAX; 2 * n_leaves - 1];
    let mut heap = BinaryHeap::new();
    for (leaf, &sym) in used.iter().enumerate() {
        heap.push(HeapNode { weight: freqs[sym], id: leaf, node: leaf });
    }
    let mut next = n_leaves;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.node] = next;
        parent[b.node] = next;
        heap.push(HeapNode { weight: a.weight + b.weight, id: next, node: next });
        next += 1;
    }

    for (leaf, &sym) in used.iter().enumerate() {
        let mut depth = 0u8;
        let mut node = leaf;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lengths[sym] = depth;
    }
    lengths
}

/// Assigns canonical codes from code lengths: symbols sorted by (length,
/// value) receive consecutive codes. Returns `(code, length)` per symbol.
fn canonical_codes(lengths: &[u8]) -> Vec<(u32, u8)> {
    let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut codes = vec![(0u32, 0u8); lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &symbols {
        let l = lengths[s];
        code <<= l - prev_len;
        codes[s] = (code, l);
        code += 1;
        prev_len = l;
    }
    codes
}

/// Encodes a symbol sequence (values must fit the given alphabet size).
///
/// # Panics
/// If a symbol is out of the alphabet range.
pub fn encode(symbols: &[u16], alphabet: usize) -> HuffmanEncoded {
    let mut freqs = vec![0u64; alphabet];
    for &s in symbols {
        assert!((s as usize) < alphabet, "symbol {s} outside alphabet {alphabet}");
        freqs[s as usize] += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut bits = Vec::new();
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &s in symbols {
        let (code, l) = codes[s as usize];
        acc = (acc << l) | code as u64;
        nbits += l as u32;
        while nbits >= 8 {
            bits.push(((acc >> (nbits - 8)) & 0xFF) as u8);
            nbits -= 8;
        }
    }
    if nbits > 0 {
        bits.push(((acc << (8 - nbits)) & 0xFF) as u8);
    }
    HuffmanEncoded { code_lengths: lengths, len: symbols.len(), bits }
}

/// Decodes a Huffman block back to its symbol sequence.
///
/// # Panics
/// If the bitstream is malformed (truncated or containing an invalid code).
pub fn decode(encoded: &HuffmanEncoded) -> Vec<u16> {
    let codes = canonical_codes(&encoded.code_lengths);
    // Invert: (length, code) → symbol via sorted lookup.
    let mut by_code: Vec<(u8, u32, u16)> = codes
        .iter()
        .enumerate()
        .filter(|(_, &(_, l))| l > 0)
        .map(|(s, &(c, l))| (l, c, s as u16))
        .collect();
    by_code.sort_unstable();

    let mut out = Vec::with_capacity(encoded.len);
    let mut code: u32 = 0;
    let mut len: u8 = 0;
    let mut bit_iter = encoded.bits.iter().flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1));
    while out.len() < encoded.len {
        let bit = bit_iter.next().expect("truncated Huffman bitstream");
        code = (code << 1) | bit as u32;
        len += 1;
        // Canonical codes are prefix-free; a (len, code) pair identifies at
        // most one symbol. Search for the first entry with that prefix.
        let idx = by_code.partition_point(|&(l, c, _)| (l, c) < (len, code));
        if idx < by_code.len() && by_code[idx].0 == len && by_code[idx].1 == code {
            out.push(by_code[idx].2);
            code = 0;
            len = 0;
        } else {
            assert!(len < 32, "invalid Huffman code in bitstream");
        }
    }
    out
}

/// Convenience: entropy (bits/symbol) of a frequency table — the lower
/// bound Huffman approaches.
pub fn entropy_bits(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let symbols: Vec<u16> = vec![0, 1, 1, 2, 2, 2, 2, 3];
        let enc = encode(&symbols, 4);
        assert_eq!(decode(&enc), symbols);
    }

    #[test]
    fn roundtrip_single_symbol() {
        let symbols = vec![5u16; 100];
        let enc = encode(&symbols, 8);
        assert_eq!(decode(&enc), symbols);
        // 1 bit per symbol → ~13 bytes of bitstream.
        assert!(enc.bits.len() <= 13);
    }

    #[test]
    fn roundtrip_empty() {
        let enc = encode(&[], 4);
        assert!(decode(&enc).is_empty());
        assert!(enc.bits.is_empty());
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // 90% zeros.
        let mut symbols = vec![0u16; 900];
        for i in 0..100 {
            symbols.push((1 + i % 15) as u16);
        }
        let enc = encode(&symbols, 16);
        assert_eq!(decode(&enc), symbols);
        // Entropy ≈ 0.47 + small; Huffman should beat 4 bits/symbol easily.
        let bits_per_symbol = (enc.bits.len() * 8) as f64 / symbols.len() as f64;
        assert!(bits_per_symbol < 2.0, "bits/symbol {bits_per_symbol}");
    }

    #[test]
    fn uniform_distribution_near_log2() {
        let symbols: Vec<u16> = (0..1024u16).map(|i| i % 16).collect();
        let enc = encode(&symbols, 16);
        assert_eq!(decode(&enc), symbols);
        let bits_per_symbol = (enc.bits.len() * 8) as f64 / symbols.len() as f64;
        assert!((bits_per_symbol - 4.0).abs() < 0.1, "bits/symbol {bits_per_symbol}");
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let freqs = vec![50u64, 30, 10, 5, 3, 1, 1, 0];
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!((kraft - 1.0).abs() < 1e-12, "Kraft sum {kraft}");
        assert_eq!(lengths[7], 0);
    }

    #[test]
    fn average_length_within_one_bit_of_entropy() {
        let freqs = vec![400u64, 200, 150, 100, 80, 40, 20, 10];
        let lengths = code_lengths(&freqs);
        let total: u64 = freqs.iter().sum();
        let avg: f64 = freqs.iter().zip(&lengths).map(|(&f, &l)| f as f64 * l as f64).sum::<f64>()
            / total as f64;
        let h = entropy_bits(&freqs);
        assert!(avg >= h - 1e-9, "avg {avg} < entropy {h}");
        assert!(avg < h + 1.0, "avg {avg} ≥ entropy+1 {h}");
    }

    #[test]
    fn deterministic_encoding() {
        let symbols: Vec<u16> = (0..500u16).map(|i| (i * 7) % 32).collect();
        let a = encode(&symbols, 32);
        let b = encode(&symbols, 32);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn out_of_alphabet_panics() {
        encode(&[9], 8);
    }
}
