//! Complex fast Fourier transform.
//!
//! The acquisition subsystem (paper §3.1) applies "the standard discrete
//! Fourier transform, auto-correlation, and minimum square error techniques"
//! to estimate each sensor's maximum frequency, and the online-analysis
//! baselines (§3.4.2) include DFT-based sequence similarity. This module
//! implements an iterative radix-2 Cooley–Tukey FFT for power-of-two lengths
//! and Bluestein's chirp-z algorithm for arbitrary lengths, all from scratch.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

/// In-place iterative radix-2 FFT. `inverse` selects the sign convention;
/// the inverse also divides by `n` so `ifft(fft(x)) == x`.
///
/// # Panics
/// If the buffer length is not a power of two.
pub fn fft_pow2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft_pow2 requires power-of-two length, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    if inverse {
        let inv = 1.0 / n as f64;
        for x in buf {
            *x = x.scale(inv);
        }
    }
}

/// FFT of arbitrary length: radix-2 when possible, otherwise Bluestein's
/// chirp-z transform (which reduces to three power-of-two FFTs).
pub fn fft(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let _span = aims_telemetry::span!("dsp.fft.transform");
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf, inverse);
        return buf;
    }
    bluestein(input, inverse)
}

fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let m = (2 * n - 1).next_power_of_two();

    // Chirps: w_k = e^{sign·iπk²/n}.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // k² mod 2n to keep the angle small and accurate.
            let k2 = (k as u64 * k as u64) % (2 * n as u64);
            Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        b[k] = chirp[k].conj();
        b[m - k] = chirp[k].conj();
    }

    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = *x * *y;
    }
    fft_pow2(&mut a, true);

    let mut out: Vec<Complex> = (0..n).map(|k| a[k] * chirp[k]).collect();
    if inverse {
        let inv = 1.0 / n as f64;
        for x in &mut out {
            *x = x.scale(inv);
        }
    }
    out
}

/// Forward FFT of a real signal.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&buf, false)
}

/// Circular convolution of two equal-length real sequences via FFT.
///
/// # Panics
/// If lengths differ.
pub fn circular_convolution(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "circular convolution length mismatch");
    if a.is_empty() {
        return Vec::new();
    }
    let fa = fft_real(a);
    let fb = fft_real(b);
    let prod: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
    fft(&prod, true).into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol, "{a:?} vs {b:?}");
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!((-a), Complex::new(-1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::new(1.0, 0.0);
        fft_pow2(&mut x, false);
        for c in &x {
            assert_close(*c, Complex::new(1.0, 0.0), 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut x = vec![Complex::new(2.0, 0.0); 8];
        fft_pow2(&mut x, false);
        assert_close(x[0], Complex::new(16.0, 0.0), 1e-12);
        for c in &x[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_single_tone_peaks_at_right_bin() {
        let n = 64;
        let freq = 5;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                Complex::new(
                    (2.0 * std::f64::consts::PI * freq as f64 * i as f64 / n as f64).cos(),
                    0.0,
                )
            })
            .collect();
        let y = fft(&x, false);
        let mags: Vec<f64> = y.iter().map(|c| c.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .take(n / 2)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, freq);
    }

    #[test]
    fn roundtrip_pow2() {
        let x: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let y = fft(&x, false);
        let z = fft(&y, true);
        for (a, b) in x.iter().zip(&z) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn roundtrip_bluestein_odd_lengths() {
        for n in [3usize, 5, 7, 12, 15, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.1).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let y = fft(&x, false);
            let z = fft(&y, true);
            for (a, b) in x.iter().zip(&z) {
                assert_close(*a, *b, 1e-9);
            }
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        let n = 10;
        let x: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -(i as f64) * 0.5)).collect();
        let y = fft(&x, false);
        for (k, &yk) in y.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + xj * Complex::cis(ang);
            }
            assert_close(yk, acc, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.21).sin() * 3.0).collect();
        let y = fft_real(&x);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = y.iter().map(|c| c.norm_sq()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn circular_convolution_with_delta_is_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut delta = vec![0.0; 4];
        delta[0] = 1.0;
        let y = circular_convolution(&x, &delta);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(fft(&[], false).is_empty());
        assert!(circular_convolution(&[], &[]).is_empty());
    }
}
