//! Adaptive differential PCM (ADPCM) codec.
//!
//! The AIMS acquisition studies (paper §3.1, ref [29]) compared sampling
//! strategies against "quantization techniques (e.g., Adaptive DPCM)" and
//! combinations of the two. This is an IMA-style ADPCM adapted to `f64`
//! sensor samples: each sample is predicted by the previous reconstruction,
//! the prediction error is quantized to a 4-bit signed code, and the step
//! size adapts multiplicatively to the code magnitude.

/// Step-size adaptation factors indexed by code magnitude (0..=7).
/// Small codes shrink the step (signal is predictable); large codes grow it.
const ADAPT: [f64; 8] = [0.9, 0.9, 0.95, 1.0, 1.2, 1.6, 2.0, 2.4];

/// Minimum step relative to the initial step, to avoid underflow lock-up.
const MIN_STEP_RATIO: f64 = 1e-6;

/// An ADPCM-encoded signal: 4 bits per sample plus a tiny header.
#[derive(Clone, Debug, PartialEq)]
pub struct AdpcmEncoded {
    /// First sample, stored verbatim so decoding can bootstrap.
    pub initial: f64,
    /// Initial quantizer step.
    pub initial_step: f64,
    /// Number of encoded samples (including the initial one).
    pub len: usize,
    /// Packed 4-bit codes, two per byte, for samples `1..len`.
    pub codes: Vec<u8>,
}

impl AdpcmEncoded {
    /// Size of the encoded representation in bytes (header + codes).
    pub fn size_bytes(&self) -> usize {
        // initial (8) + step (8) + len (8) + packed codes.
        24 + self.codes.len()
    }
}

/// Encodes a signal with ADPCM. `initial_step` controls the starting
/// quantizer resolution; [`encode_auto`] picks one from the signal's
/// first-difference statistics.
///
/// # Panics
/// If the signal is empty or the step is not positive/finite.
pub fn encode(signal: &[f64], initial_step: f64) -> AdpcmEncoded {
    assert!(!signal.is_empty(), "cannot ADPCM-encode an empty signal");
    assert!(
        initial_step.is_finite() && initial_step > 0.0,
        "initial step must be positive and finite"
    );
    let mut codes = Vec::with_capacity(signal.len() / 2 + 1);
    let mut pending: Option<u8> = None;
    let push_code = |c: u8, codes: &mut Vec<u8>, pending: &mut Option<u8>| match pending.take() {
        None => *pending = Some(c),
        Some(first) => codes.push(first | (c << 4)),
    };

    let mut prev = signal[0];
    let mut step = initial_step;
    let floor = initial_step * MIN_STEP_RATIO;
    for &x in &signal[1..] {
        let diff = x - prev;
        // 4-bit sign-magnitude code: bit 3 = sign, bits 0..3 = magnitude.
        let mag = ((diff.abs() / step).round() as i64).clamp(0, 7) as u8;
        let code = if diff < 0.0 { mag | 0x8 } else { mag };
        let recon = step * mag as f64 * if diff < 0.0 { -1.0 } else { 1.0 };
        prev += recon;
        step = (step * ADAPT[mag as usize]).max(floor);
        push_code(code, &mut codes, &mut pending);
    }
    if let Some(last) = pending {
        codes.push(last);
    }
    AdpcmEncoded { initial: signal[0], initial_step, len: signal.len(), codes }
}

/// Encodes with a step chosen from the mean absolute first difference of
/// the signal (a good operating point for smooth sensor traces).
pub fn encode_auto(signal: &[f64]) -> AdpcmEncoded {
    assert!(!signal.is_empty(), "cannot ADPCM-encode an empty signal");
    let mad = if signal.len() > 1 {
        signal.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (signal.len() - 1) as f64
    } else {
        0.0
    };
    let step = if mad > 1e-12 { mad / 2.0 } else { 1e-6 };
    encode(signal, step)
}

/// Decodes an ADPCM stream back to samples. Lossy: the output approximates
/// the encoder input.
pub fn decode(encoded: &AdpcmEncoded) -> Vec<f64> {
    let mut out = Vec::with_capacity(encoded.len);
    out.push(encoded.initial);
    let mut prev = encoded.initial;
    let mut step = encoded.initial_step;
    let floor = encoded.initial_step * MIN_STEP_RATIO;
    let mut remaining = encoded.len - 1;
    'outer: for &byte in &encoded.codes {
        for shift in [0u8, 4] {
            if remaining == 0 {
                break 'outer;
            }
            let code = (byte >> shift) & 0xF;
            let mag = code & 0x7;
            let sign = if code & 0x8 != 0 { -1.0 } else { 1.0 };
            prev += sign * step * mag as f64;
            step = (step * ADAPT[mag as usize]).max(floor);
            out.push(prev);
            remaining -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{rmse, snr_db};

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / 100.0;
                (2.0 * std::f64::consts::PI * 1.5 * t).sin() * 30.0
                    + (2.0 * std::f64::consts::PI * 0.3 * t).cos() * 10.0
            })
            .collect()
    }

    #[test]
    fn roundtrip_length_and_header() {
        let x = smooth_signal(101);
        let enc = encode_auto(&x);
        assert_eq!(enc.len, 101);
        assert_eq!(enc.codes.len(), 50); // 100 codes packed 2/byte
        let y = decode(&enc);
        assert_eq!(y.len(), 101);
        assert_eq!(y[0], x[0]);
    }

    #[test]
    fn smooth_signal_reconstructs_well() {
        let x = smooth_signal(1000);
        let enc = encode_auto(&x);
        let y = decode(&enc);
        let snr = snr_db(&x, &y);
        assert!(snr > 20.0, "SNR too low: {snr} dB");
    }

    #[test]
    fn compression_is_4_bits_per_sample() {
        let x = smooth_signal(10000);
        let enc = encode_auto(&x);
        // Raw f64: 80 kB. ADPCM: ~5 kB + header.
        assert!(enc.size_bytes() < 10000 * 8 / 10, "size {}", enc.size_bytes());
        assert!(enc.size_bytes() >= 10000 / 2, "suspiciously small: {}", enc.size_bytes());
    }

    #[test]
    fn constant_signal_is_exact() {
        let x = vec![7.5; 64];
        let enc = encode_auto(&x);
        let y = decode(&enc);
        for v in &y {
            assert!((v - 7.5).abs() < 1e-9);
        }
    }

    #[test]
    fn step_adaptation_tracks_bursts() {
        // Slow ramp, then a fast burst, then slow again.
        let mut x = Vec::new();
        for i in 0..200 {
            x.push(i as f64 * 0.01);
        }
        for i in 0..50 {
            x.push(2.0 + (i as f64 * 0.9).sin() * 20.0);
        }
        for i in 0..200 {
            x.push(1.0 + i as f64 * 0.01);
        }
        let enc = encode_auto(&x);
        let y = decode(&enc);
        // The decoder should recover to within a reasonable envelope after
        // the burst (adaptation catches up).
        let tail_err = rmse(&x[300..], &y[300..]);
        let scale = 20.0;
        assert!(tail_err < scale * 0.5, "tail rmse {tail_err}");
    }

    #[test]
    fn single_sample_signal() {
        let enc = encode_auto(&[42.0]);
        assert_eq!(decode(&enc), vec![42.0]);
        assert!(enc.codes.is_empty());
    }

    #[test]
    fn even_and_odd_lengths_pack_correctly() {
        for n in [2usize, 3, 8, 9] {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let enc = encode(&x, 1.0);
            let y = decode(&enc);
            assert_eq!(y.len(), n, "n={n}");
            // Unit steps encode near-exactly; step adaptation introduces a
            // bounded drift (step shrinks to 0.9 after each magnitude-1
            // code, so the rounded reconstruction stays within half a step).
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() <= 0.5, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_signal_panics() {
        encode_auto(&[]);
    }
}
