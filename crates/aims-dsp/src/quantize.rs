//! Uniform scalar quantization.
//!
//! The acquisition studies behind AIMS (paper §3.1, refs [27, 29]) compare
//! sampling strategies against quantization-based compression (ADPCM) and
//! block compression (zip). Both codecs need a scalar quantizer mapping
//! `f64` samples onto small integer alphabets; this module provides the
//! uniform mid-rise quantizer they share.

/// A uniform scalar quantizer over a closed range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformQuantizer {
    min: f64,
    max: f64,
    levels: u32,
}

impl UniformQuantizer {
    /// Creates a quantizer with `levels` reconstruction levels spanning
    /// `[min, max]`.
    ///
    /// # Panics
    /// If `min >= max` is violated in a way that leaves no width (`min >
    /// max`), or `levels < 2`.
    pub fn new(min: f64, max: f64, levels: u32) -> Self {
        assert!(levels >= 2, "need at least 2 quantization levels");
        assert!(min <= max, "min {min} must not exceed max {max}");
        UniformQuantizer { min, max, levels }
    }

    /// Builds a quantizer covering the extent of `signal` with `bits` bits
    /// per sample. A constant signal gets a degenerate-but-valid unit-width
    /// range centred on its value.
    ///
    /// # Panics
    /// If the signal is empty or `bits` is 0 or > 16.
    pub fn fit(signal: &[f64], bits: u32) -> Self {
        assert!(!signal.is_empty(), "cannot fit a quantizer to an empty signal");
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in signal {
            min = min.min(x);
            max = max.max(x);
        }
        if max - min < 1e-12 {
            min -= 0.5;
            max += 0.5;
        }
        UniformQuantizer::new(min, max, 1 << bits)
    }

    /// Number of levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Bits needed per code.
    pub fn bits_per_sample(&self) -> u32 {
        (32 - (self.levels - 1).leading_zeros()).max(1)
    }

    /// Quantization step width.
    pub fn step(&self) -> f64 {
        (self.max - self.min) / self.levels as f64
    }

    /// Quantizes one sample to a code in `0..levels`, clamping out-of-range
    /// inputs.
    pub fn encode(&self, x: f64) -> u16 {
        let t = ((x - self.min) / (self.max - self.min)).clamp(0.0, 1.0);
        let code = (t * self.levels as f64) as u32;
        code.min(self.levels - 1) as u16
    }

    /// Reconstructs the mid-point value of a code.
    pub fn decode(&self, code: u16) -> f64 {
        let c = (code as u32).min(self.levels - 1);
        self.min + (c as f64 + 0.5) * self.step()
    }

    /// Quantizes a whole signal.
    pub fn encode_signal(&self, signal: &[f64]) -> Vec<u16> {
        signal.iter().map(|&x| self.encode(x)).collect()
    }

    /// Dequantizes a whole code sequence.
    pub fn decode_signal(&self, codes: &[u16]) -> Vec<f64> {
        codes.iter().map(|&c| self.decode(c)).collect()
    }
}

/// Root-mean-square error between two equal-length signals.
///
/// # Panics
/// If lengths differ.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Signal-to-noise ratio in dB of a reconstruction `b` of `a`; returns
/// `f64::INFINITY` for a perfect reconstruction.
pub fn snr_db(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "snr length mismatch");
    let signal: f64 = a.iter().map(|x| x * x).sum();
    let noise: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    if noise <= 1e-300 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_midpoints() {
        let q = UniformQuantizer::new(0.0, 4.0, 4);
        assert_eq!(q.step(), 1.0);
        assert_eq!(q.encode(0.1), 0);
        assert_eq!(q.encode(3.9), 3);
        assert_eq!(q.decode(0), 0.5);
        assert_eq!(q.decode(3), 3.5);
    }

    #[test]
    fn out_of_range_clamps() {
        let q = UniformQuantizer::new(-1.0, 1.0, 8);
        assert_eq!(q.encode(-5.0), 0);
        assert_eq!(q.encode(5.0), 7);
        assert_eq!(q.decode(200), q.decode(7));
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let q = UniformQuantizer::new(-2.0, 2.0, 256);
        for i in 0..1000 {
            let x = -2.0 + 4.0 * i as f64 / 999.0;
            let err = (q.decode(q.encode(x)) - x).abs();
            assert!(err <= q.step() / 2.0 + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn fit_covers_signal() {
        let signal = vec![-3.0, 0.0, 7.0, 2.0];
        let q = UniformQuantizer::fit(&signal, 8);
        assert_eq!(q.levels(), 256);
        assert_eq!(q.bits_per_sample(), 8);
        let codes = q.encode_signal(&signal);
        let back = q.decode_signal(&codes);
        for (x, y) in signal.iter().zip(&back) {
            assert!((x - y).abs() <= q.step(), "{x} vs {y}");
        }
    }

    #[test]
    fn fit_constant_signal() {
        let q = UniformQuantizer::fit(&[5.0; 10], 4);
        let back = q.decode(q.encode(5.0));
        assert!((back - 5.0).abs() < 0.1);
    }

    #[test]
    fn more_bits_less_error() {
        let signal: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut prev = f64::INFINITY;
        for bits in [2, 4, 8, 12] {
            let q = UniformQuantizer::fit(&signal, bits);
            let rec = q.decode_signal(&q.encode_signal(&signal));
            let e = rmse(&signal, &rec);
            assert!(e < prev, "bits={bits}: {e} !< {prev}");
            prev = e;
        }
    }

    #[test]
    fn snr_and_rmse_sanity() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(snr_db(&a, &a), f64::INFINITY);
        let b = vec![1.1, 2.1, 3.1];
        assert!((rmse(&a, &b) - 0.1).abs() < 1e-12);
        assert!(snr_db(&a, &b) > 20.0);
        assert!(rmse(&[], &[]) == 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_level_panics() {
        UniformQuantizer::new(0.0, 1.0, 1);
    }
}
