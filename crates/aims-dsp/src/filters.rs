//! Orthonormal wavelet filter bank.
//!
//! AIMS stores immersidata as wavelet coefficients (paper §3.1.1) and
//! evaluates polynomial range-sums in the wavelet domain (§3.3). The choice
//! of filter matters: ProPolyne needs a filter whose wavelet has enough
//! *vanishing moments* for the query's polynomial degree, so that query
//! coefficients vanish away from range boundaries. This module provides the
//! standard orthonormal Daubechies family (Haar = D2 through D8) plus the
//! quadrature-mirror construction of the highpass filter.

use crate::poly::Polynomial;

/// An orthonormal two-channel wavelet filter.
#[derive(Clone, Debug, PartialEq)]
pub struct WaveletFilter {
    name: &'static str,
    lowpass: Vec<f64>,
    highpass: Vec<f64>,
}

/// Identifies the stock filters shipped with the crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// Haar / Daubechies-2: 2 taps, 1 vanishing moment (constants only).
    Haar,
    /// Daubechies-4: 4 taps, 2 vanishing moments (up to linear measures).
    Db4,
    /// Daubechies-6: 6 taps, 3 vanishing moments (up to quadratic measures).
    Db6,
    /// Daubechies-8: 8 taps, 4 vanishing moments (up to cubic measures).
    Db8,
}

impl FilterKind {
    /// All stock filters, shortest first.
    pub const ALL: [FilterKind; 4] =
        [FilterKind::Haar, FilterKind::Db4, FilterKind::Db6, FilterKind::Db8];

    /// Materializes the filter coefficients.
    pub fn filter(self) -> WaveletFilter {
        match self {
            FilterKind::Haar => WaveletFilter::haar(),
            FilterKind::Db4 => WaveletFilter::db4(),
            FilterKind::Db6 => WaveletFilter::db6(),
            FilterKind::Db8 => WaveletFilter::db8(),
        }
    }

    /// The shortest stock filter with at least `moments` vanishing moments —
    /// ProPolyne's "appropriate moment condition" for polynomial measures of
    /// degree `moments − 1`.
    pub fn with_vanishing_moments(moments: usize) -> Option<FilterKind> {
        Self::ALL.into_iter().find(|k| k.filter().vanishing_moments() >= moments)
    }
}

impl WaveletFilter {
    fn from_lowpass(name: &'static str, lowpass: Vec<f64>) -> Self {
        let l = lowpass.len();
        // Quadrature mirror: g[n] = (−1)ⁿ h[L−1−n].
        let highpass = (0..l)
            .map(|n| if n % 2 == 0 { lowpass[l - 1 - n] } else { -lowpass[l - 1 - n] })
            .collect();
        WaveletFilter { name, lowpass, highpass }
    }

    /// Haar filter (D2).
    pub fn haar() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Self::from_lowpass("haar", vec![s, s])
    }

    /// Daubechies-4 filter.
    pub fn db4() -> Self {
        let s3 = 3.0_f64.sqrt();
        let d = 4.0 * 2.0_f64.sqrt();
        Self::from_lowpass(
            "db4",
            vec![(1.0 + s3) / d, (3.0 + s3) / d, (3.0 - s3) / d, (1.0 - s3) / d],
        )
    }

    /// Daubechies-6 filter, from its closed form: with `a = √10` and
    /// `b = √(5 + 2√10)`, the taps are `(1+a±b)/16√2` etc., exact to
    /// machine precision.
    pub fn db6() -> Self {
        let a = 10.0_f64.sqrt();
        let b = (5.0 + 2.0 * a).sqrt();
        let d = 16.0 * 2.0_f64.sqrt();
        Self::from_lowpass(
            "db6",
            vec![
                (1.0 + a + b) / d,
                (5.0 + a + 3.0 * b) / d,
                (10.0 - 2.0 * a + 2.0 * b) / d,
                (10.0 - 2.0 * a - 2.0 * b) / d,
                (5.0 + a - 3.0 * b) / d,
                (1.0 + a - b) / d,
            ],
        )
    }

    /// Daubechies-8 filter.
    pub fn db8() -> Self {
        Self::from_lowpass(
            "db8",
            vec![
                0.23037781330885523,
                0.714_846_570_552_541_5,
                0.630_880_767_929_590_4,
                -0.02798376941698385,
                -0.18703481171888114,
                0.03084138183598697,
                0.03288301166698295,
                -0.01059740178499728,
            ],
        )
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.lowpass.len()
    }

    /// Filters are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lowpass (scaling) coefficients.
    pub fn lowpass(&self) -> &[f64] {
        &self.lowpass
    }

    /// Highpass (wavelet) coefficients.
    pub fn highpass(&self) -> &[f64] {
        &self.highpass
    }

    /// Vanishing moments of the wavelet: `taps / 2` for the Daubechies
    /// family. The highpass filter annihilates polynomial sequences of
    /// degree `< vanishing_moments()`.
    pub fn vanishing_moments(&self) -> usize {
        self.lowpass.len() / 2
    }

    /// Discrete moment `Σₘ c[m]·mᵗ` of either channel.
    pub fn moment(&self, highpass: bool, t: usize) -> f64 {
        let taps = if highpass { &self.highpass } else { &self.lowpass };
        taps.iter().enumerate().map(|(m, &c)| c * (m as f64).powi(t as i32)).sum()
    }

    /// Symbolically filters a polynomial sequence and downsamples: returns
    /// the polynomial `q` with `q(k) = Σₘ c[m] · p(2k + m)`.
    ///
    /// This is the exact step the lazy wavelet transform applies to the
    /// polynomial interior of a range-sum query vector. For the highpass
    /// channel and `p.degree() < vanishing_moments()`, the result is the
    /// zero polynomial (up to rounding).
    pub fn filter_polynomial(&self, highpass: bool, p: &Polynomial) -> Polynomial {
        let taps = if highpass { &self.highpass } else { &self.lowpass };
        let mut q = Polynomial::zero();
        for (m, &c) in taps.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            q = q.add(&p.compose_affine(2.0, m as f64).scale(c));
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_filters() -> Vec<WaveletFilter> {
        FilterKind::ALL.iter().map(|k| k.filter()).collect()
    }

    #[test]
    fn lowpass_sums_to_sqrt2() {
        for f in all_filters() {
            let sum: f64 = f.lowpass().iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-10,
                "{}: lowpass sum {sum}",
                f.name()
            );
        }
    }

    #[test]
    fn filters_are_orthonormal() {
        for f in all_filters() {
            let h = f.lowpass();
            let l = h.len();
            // Unit energy.
            let e: f64 = h.iter().map(|x| x * x).sum();
            assert!((e - 1.0).abs() < 1e-10, "{}: energy {e}", f.name());
            // Orthogonality to even shifts.
            for shift in (2..l).step_by(2) {
                let dot: f64 = (0..l - shift).map(|i| h[i] * h[i + shift]).sum();
                assert!(dot.abs() < 1e-10, "{}: shift {shift} dot {dot}", f.name());
            }
        }
    }

    #[test]
    fn highpass_sums_to_zero() {
        for f in all_filters() {
            let sum: f64 = f.highpass().iter().sum();
            assert!(sum.abs() < 1e-10, "{}: highpass sum {sum}", f.name());
        }
    }

    #[test]
    fn highpass_annihilates_low_degree_polynomials() {
        for f in all_filters() {
            let vm = f.vanishing_moments();
            for deg in 0..vm {
                let p = Polynomial::monomial(deg);
                let q = f.filter_polynomial(true, &p);
                assert!(q.is_negligible(1e-8), "{}: degree {deg} not annihilated: {q:?}", f.name());
            }
            // One degree higher must NOT vanish (sharpness of the moment
            // condition — this is why Haar fails on linear measures).
            let p = Polynomial::monomial(vm);
            let q = f.filter_polynomial(true, &p);
            assert!(!q.is_negligible(1e-8), "{}: degree {vm} unexpectedly annihilated", f.name());
        }
    }

    #[test]
    fn filter_polynomial_matches_pointwise() {
        let f = WaveletFilter::db4();
        let p = Polynomial::from_coeffs(vec![1.0, -0.5, 0.25]);
        let q = f.filter_polynomial(false, &p);
        for k in 0..8 {
            let direct: f64 =
                f.lowpass().iter().enumerate().map(|(m, &c)| c * p.eval((2 * k + m) as f64)).sum();
            assert!((q.eval(k as f64) - direct).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn moment_helper_consistency() {
        let f = WaveletFilter::db6();
        // t = 0 moments: lowpass = √2, highpass = 0.
        assert!((f.moment(false, 0) - std::f64::consts::SQRT_2).abs() < 1e-10);
        assert!(f.moment(true, 0).abs() < 1e-10);
        // db6 has 3 vanishing moments: t=1,2 highpass moments also vanish.
        assert!(f.moment(true, 1).abs() < 1e-8);
        assert!(f.moment(true, 2).abs() < 1e-7);
    }

    #[test]
    fn with_vanishing_moments_selects_shortest() {
        assert_eq!(FilterKind::with_vanishing_moments(1), Some(FilterKind::Haar));
        assert_eq!(FilterKind::with_vanishing_moments(2), Some(FilterKind::Db4));
        assert_eq!(FilterKind::with_vanishing_moments(3), Some(FilterKind::Db6));
        assert_eq!(FilterKind::with_vanishing_moments(4), Some(FilterKind::Db8));
        assert_eq!(FilterKind::with_vanishing_moments(5), None);
    }
}
