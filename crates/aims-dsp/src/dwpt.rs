//! Discrete Wavelet Packet Transform and best-basis selection.
//!
//! §3.1.1 of the AIMS paper proposes to "study a general basis library,
//! Discrete Wavelet Packet Transform (DWPT), to automatically select and
//! apply different transformations on different dimensions". The DWPT
//! recursively applies *both* the summary (lowpass) and detail (highpass)
//! filters to every band, producing a binary tree of coefficient nodes;
//! any antichain covering the root is an orthonormal basis. The classic
//! Coifman–Wickerhauser algorithm picks the minimum-cost basis bottom-up in
//! a single pass, for any additive cost functional.

use crate::dwt::{analysis_step, is_power_of_two, synthesis_step};
use crate::filters::WaveletFilter;

/// Additive cost functionals for best-basis selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostFunction {
    /// Unnormalized Shannon entropy `−Σ x²·ln x²` (the Coifman–Wickerhauser
    /// default; favors energy concentrated in few coefficients).
    ShannonEntropy,
    /// Number of coefficients with magnitude above the threshold.
    ThresholdCount(f64),
    /// `Σ |x|` — the ℓ¹ sparsity surrogate.
    L1Norm,
    /// `Σ ln(x² + ε)` with a small floor to avoid −∞.
    LogEnergy,
}

impl CostFunction {
    /// Evaluates the cost of one coefficient vector.
    pub fn cost(&self, coeffs: &[f64]) -> f64 {
        match *self {
            CostFunction::ShannonEntropy => coeffs
                .iter()
                .map(|&x| {
                    let e = x * x;
                    if e > 1e-300 {
                        -e * e.ln()
                    } else {
                        0.0
                    }
                })
                .sum(),
            CostFunction::ThresholdCount(t) => coeffs.iter().filter(|x| x.abs() > t).count() as f64,
            CostFunction::L1Norm => coeffs.iter().map(|x| x.abs()).sum(),
            CostFunction::LogEnergy => coeffs.iter().map(|&x| (x * x + 1e-300).ln()).sum(),
        }
    }
}

/// Identifies a node in the packet tree: `level` 0 is the root signal,
/// `index` runs over the `2^level` bands at that level (even index = came
/// through the summary filter, odd = through the detail filter).
pub type NodeId = (usize, usize);

/// A fully expanded wavelet packet tree of a power-of-two signal.
#[derive(Clone, Debug)]
pub struct WaveletPacketTree {
    /// `nodes[level][index]` — coefficient vector of each band.
    nodes: Vec<Vec<Vec<f64>>>,
    filter: WaveletFilter,
    depth: usize,
}

/// A basis selected from the packet tree: a set of nodes whose bands tile
/// the whole signal exactly once.
#[derive(Clone, Debug, PartialEq)]
pub struct PacketBasis {
    /// Selected nodes in left-to-right band order.
    pub nodes: Vec<NodeId>,
    /// Total cost under the functional that selected it.
    pub cost: f64,
}

impl WaveletPacketTree {
    /// Fully decomposes `signal` down to `depth` levels.
    ///
    /// # Panics
    /// If the length is not a power of two, or `2^depth` exceeds the length.
    pub fn decompose(signal: &[f64], filter: &WaveletFilter, depth: usize) -> Self {
        let _span = aims_telemetry::span!("dsp.dwpt.decompose");
        let n = signal.len();
        assert!(is_power_of_two(n), "DWPT requires power-of-two length, got {n}");
        assert!((1usize << depth) <= n, "depth {depth} too deep for signal of length {n}");
        let mut nodes: Vec<Vec<Vec<f64>>> = vec![vec![signal.to_vec()]];
        for level in 0..depth {
            let mut next = Vec::with_capacity(nodes[level].len() * 2);
            for band in &nodes[level] {
                let (a, d) = analysis_step(band, filter);
                next.push(a);
                next.push(d);
            }
            nodes.push(next);
        }
        WaveletPacketTree { nodes, filter: filter.clone(), depth }
    }

    /// Tree depth (number of split levels below the root).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Length of the analyzed signal.
    pub fn signal_len(&self) -> usize {
        self.nodes[0][0].len()
    }

    /// Borrows a node's coefficient band.
    ///
    /// # Panics
    /// If the node id is out of range.
    pub fn node(&self, id: NodeId) -> &[f64] {
        &self.nodes[id.0][id.1]
    }

    /// The basis consisting of all leaves at the maximum depth (the full
    /// DWPT "frequency-ordered" basis).
    pub fn leaf_basis(&self, cost: CostFunction) -> PacketBasis {
        let nodes: Vec<NodeId> =
            (0..self.nodes[self.depth].len()).map(|i| (self.depth, i)).collect();
        let total = nodes.iter().map(|&id| cost.cost(self.node(id))).sum();
        PacketBasis { nodes, cost: total }
    }

    /// The pure-DWT basis: the cascade that only ever splits the summary
    /// band — `[a_J, d_J, d_{J−1}, …, d_1]`.
    pub fn dwt_basis(&self, cost: CostFunction) -> PacketBasis {
        let mut nodes = vec![(self.depth, 0), (self.depth, 1)];
        for level in (1..self.depth).rev() {
            nodes.push((level, 1));
        }
        if self.depth == 0 {
            nodes = vec![(0, 0)];
        }
        let total = nodes.iter().map(|&id| cost.cost(self.node(id))).sum();
        PacketBasis { nodes, cost: total }
    }

    /// Per-node cost table of this tree under the given functional:
    /// `table[level][index]`. Suitable for accumulation across many trees
    /// before a joint [`best_basis_from_costs`] search.
    pub fn node_costs(&self, cost: CostFunction) -> Vec<Vec<f64>> {
        self.nodes.iter().map(|lvl| lvl.iter().map(|band| cost.cost(band)).collect()).collect()
    }

    /// Coifman–Wickerhauser best basis: the antichain minimizing the total
    /// additive cost, found by a bottom-up dynamic program.
    pub fn best_basis(&self, cost: CostFunction) -> PacketBasis {
        let _span = aims_telemetry::span!("dsp.dwpt.best_basis");
        best_basis_from_costs(self.depth, &self.node_costs(cost))
    }

    /// Concatenated coefficients of a basis, in the basis's node order.
    pub fn coefficients(&self, basis: &PacketBasis) -> Vec<f64> {
        basis.nodes.iter().flat_map(|&id| self.node(id).iter().copied()).collect()
    }

    /// Reconstructs the original signal from a basis and (possibly
    /// modified) coefficients laid out as by [`Self::coefficients`].
    ///
    /// # Panics
    /// If the coefficient count doesn't match the basis.
    pub fn reconstruct(&self, basis: &PacketBasis, coeffs: &[f64]) -> Vec<f64> {
        // Place each band, then synthesize upward level by level.
        let mut bands: Vec<Vec<Option<Vec<f64>>>> =
            self.nodes.iter().map(|lvl| vec![None; lvl.len()]).collect();
        let mut offset = 0;
        for &(level, index) in &basis.nodes {
            let len = self.nodes[level][index].len();
            assert!(offset + len <= coeffs.len(), "coefficient vector too short");
            bands[level][index] = Some(coeffs[offset..offset + len].to_vec());
            offset += len;
        }
        assert_eq!(offset, coeffs.len(), "coefficient vector too long");

        for level in (1..=self.depth).rev() {
            for index in (0..self.nodes[level].len()).step_by(2) {
                let (left, right) = {
                    let (a, b) = bands[level].split_at_mut(index + 1);
                    (a[index].take(), b[0].take())
                };
                if let (Some(a), Some(d)) = (left.clone(), right.clone()) {
                    bands[level - 1][index / 2] = Some(synthesis_step(&a, &d, &self.filter));
                } else {
                    // Put back whatever we took (unbalanced pair means the
                    // basis node lives higher up).
                    bands[level][index] = left;
                    bands[level][index + 1] = right;
                }
            }
        }
        bands[0][0].take().expect("basis did not tile the signal")
    }
}

/// Runs the Coifman–Wickerhauser dynamic program on an explicit per-node
/// cost table (`costs[level][index]`, levels `0..=depth`). Costs summed
/// across many signals (e.g. every line of a data cube along one axis)
/// yield the jointly best basis for them all — the population-time basis
/// search the hybrid/packet ProPolyne needs.
///
/// # Panics
/// If the table does not have `depth + 1` dyadic levels.
pub fn best_basis_from_costs(depth: usize, costs: &[Vec<f64>]) -> PacketBasis {
    assert_eq!(costs.len(), depth + 1, "cost table depth mismatch");
    for (level, row) in costs.iter().enumerate() {
        assert_eq!(row.len(), 1 << level, "cost table level {level} width mismatch");
    }
    let mut best_cost: Vec<Vec<f64>> = costs.to_vec();
    let mut keep: Vec<Vec<bool>> = costs.iter().map(|lvl| vec![true; lvl.len()]).collect();

    for level in (0..depth).rev() {
        for index in 0..best_cost[level].len() {
            let own = costs[level][index];
            let children = best_cost[level + 1][2 * index] + best_cost[level + 1][2 * index + 1];
            if children < own {
                best_cost[level][index] = children;
                keep[level][index] = false;
            } else {
                best_cost[level][index] = own;
                keep[level][index] = true;
            }
        }
    }

    // Walk down from the root collecting kept nodes in band order.
    let mut nodes = Vec::new();
    let mut stack = vec![(0usize, 0usize)];
    while let Some((level, index)) = stack.pop() {
        if keep[level][index] || level == depth {
            nodes.push((level, index));
        } else {
            // Push right first so left pops first (band order).
            stack.push((level + 1, 2 * index + 1));
            stack.push((level + 1, 2 * index));
        }
    }
    nodes.sort_by_key(|&(level, index)| index << (depth - level));
    PacketBasis { nodes, cost: best_cost[0][0] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterKind;

    fn chirpish(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * (4.0 + 20.0 * t) * t).sin()
            })
            .collect()
    }

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn tree_shapes() {
        let x = chirpish(64);
        let t = WaveletPacketTree::decompose(&x, &WaveletFilter::haar(), 3);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.signal_len(), 64);
        assert_eq!(t.node((0, 0)).len(), 64);
        assert_eq!(t.node((3, 5)).len(), 8);
    }

    #[test]
    fn every_level_preserves_energy() {
        let x = chirpish(128);
        for kind in FilterKind::ALL {
            let t = WaveletPacketTree::decompose(&x, &kind.filter(), 4);
            for level in 0..=4 {
                let e: f64 = (0..(1 << level)).map(|i| energy(t.node((level, i)))).sum();
                assert!((e - energy(&x)).abs() < 1e-8, "{:?} level {level}", kind);
            }
        }
    }

    #[test]
    fn leaf_basis_roundtrip() {
        let x = chirpish(64);
        let t = WaveletPacketTree::decompose(&x, &WaveletFilter::db4(), 4);
        let basis = t.leaf_basis(CostFunction::ShannonEntropy);
        assert_eq!(basis.nodes.len(), 16);
        let coeffs = t.coefficients(&basis);
        assert_eq!(coeffs.len(), 64);
        let y = t.reconstruct(&basis, &coeffs);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dwt_basis_matches_dwt_full_for_full_depth() {
        let x = chirpish(32);
        let f = WaveletFilter::haar();
        let t = WaveletPacketTree::decompose(&x, &f, 5);
        let basis = t.dwt_basis(CostFunction::L1Norm);
        let coeffs = t.coefficients(&basis);
        let flat = crate::dwt::dwt_full(&x, &f);
        assert_eq!(coeffs.len(), flat.len());
        for (a, b) in coeffs.iter().zip(&flat) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn best_basis_cost_is_minimal_among_standard_bases() {
        let x = chirpish(128);
        let t = WaveletPacketTree::decompose(&x, &WaveletFilter::db4(), 5);
        let cost = CostFunction::ShannonEntropy;
        let best = t.best_basis(cost);
        let leaf = t.leaf_basis(cost);
        let dwt = t.dwt_basis(cost);
        assert!(best.cost <= leaf.cost + 1e-9, "best {} > leaf {}", best.cost, leaf.cost);
        assert!(best.cost <= dwt.cost + 1e-9, "best {} > dwt {}", best.cost, dwt.cost);
    }

    #[test]
    fn best_basis_tiles_signal_and_roundtrips() {
        let x = chirpish(64);
        for cf in [
            CostFunction::ShannonEntropy,
            CostFunction::ThresholdCount(0.1),
            CostFunction::L1Norm,
            CostFunction::LogEnergy,
        ] {
            let t = WaveletPacketTree::decompose(&x, &WaveletFilter::db6(), 4);
            let basis = t.best_basis(cf);
            // Bands tile: total coefficient count equals signal length.
            let total: usize = basis.nodes.iter().map(|&id| t.node(id).len()).sum();
            assert_eq!(total, 64, "{cf:?}");
            let coeffs = t.coefficients(&basis);
            let y = t.reconstruct(&basis, &coeffs);
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-8, "{cf:?}");
            }
        }
    }

    #[test]
    fn best_basis_prefers_root_for_white_noise_entropy() {
        // For i.i.d. noise no split helps much; cost should not exceed the
        // root's own cost.
        let mut state = 99u64;
        let x: Vec<f64> = (0..64)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        let t = WaveletPacketTree::decompose(&x, &WaveletFilter::haar(), 4);
        let cost = CostFunction::ShannonEntropy;
        let best = t.best_basis(cost);
        assert!(best.cost <= cost.cost(&x) + 1e-9);
    }

    #[test]
    fn depth_zero_tree_is_identity() {
        let x = chirpish(16);
        let t = WaveletPacketTree::decompose(&x, &WaveletFilter::haar(), 0);
        let basis = t.best_basis(CostFunction::L1Norm);
        assert_eq!(basis.nodes, vec![(0, 0)]);
        let y = t.reconstruct(&basis, &t.coefficients(&basis));
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn excessive_depth_panics() {
        WaveletPacketTree::decompose(&[1.0, 2.0], &WaveletFilter::haar(), 2);
    }

    #[test]
    fn cost_functions_basic_values() {
        assert_eq!(CostFunction::ThresholdCount(0.5).cost(&[0.1, 0.6, -0.7]), 2.0);
        assert_eq!(CostFunction::L1Norm.cost(&[1.0, -2.0]), 3.0);
        assert_eq!(CostFunction::ShannonEntropy.cost(&[0.0, 0.0]), 0.0);
        // Entropy of a single unit spike is 0 (·ln 1); of spread mass it's
        // positive.
        let concentrated = CostFunction::ShannonEntropy.cost(&[1.0, 0.0]);
        let spread = CostFunction::ShannonEntropy.cost(&[std::f64::consts::FRAC_1_SQRT_2; 2]);
        assert!(concentrated < spread);
    }
}
