//! Dense univariate polynomials over `f64`.
//!
//! ProPolyne's lazy wavelet transform (paper §3.3) works because the
//! low-pass filtering of a polynomial sequence is again a polynomial
//! sequence of the same degree; tracking those polynomials symbolically is
//! what makes the transform polylogarithmic. This module provides exactly
//! the polynomial arithmetic that bookkeeping needs.

use std::fmt;

/// A polynomial `c₀ + c₁x + c₂x² + …` stored as its coefficient vector.
///
/// The zero polynomial is represented by an empty coefficient vector;
/// constructors trim trailing (near-)zero coefficients so representations
/// are canonical.
#[derive(Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

/// Coefficients smaller than this (relative to the largest coefficient) are
/// trimmed from the high end during canonicalization.
const TRIM_EPS: f64 = 0.0;

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        if c == 0.0 {
            Self::zero()
        } else {
            Polynomial { coeffs: vec![c] }
        }
    }

    /// The monomial `xᵈ`.
    pub fn monomial(d: usize) -> Self {
        let mut coeffs = vec![0.0; d + 1];
        coeffs[d] = 1.0;
        Polynomial { coeffs }
    }

    /// Builds a polynomial from low-to-high coefficients, trimming trailing
    /// zeros.
    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.trim();
        p
    }

    fn trim(&mut self) {
        while let Some(&last) = self.coeffs.last() {
            if last.abs() <= TRIM_EPS {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }

    /// Degree of the polynomial; the zero polynomial reports degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// `true` when every coefficient is at most `tol` in magnitude.
    pub fn is_negligible(&self, tol: f64) -> bool {
        self.coeffs.iter().all(|c| c.abs() <= tol)
    }

    /// Low-to-high coefficient slice.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Adds another polynomial.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::from_coeffs(self.coeffs.iter().map(|c| c * s).collect())
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::from_coeffs(coeffs)
    }

    /// Composition with an affine map: returns `q(x) = p(a·x + b)`.
    ///
    /// This is the workhorse of the lazy wavelet transform: filtering a
    /// polynomial sequence and downsampling composes the polynomial with
    /// `2k + m`.
    pub fn compose_affine(&self, a: f64, b: f64) -> Polynomial {
        // Horner-style: p(ax+b) = c_n·(ax+b)^n + … built incrementally.
        let mut result = Polynomial::zero();
        let affine = Polynomial::from_coeffs(vec![b, a]);
        for &c in self.coeffs.iter().rev() {
            result = result.mul(&affine).add(&Polynomial::constant(c));
        }
        result
    }

    /// Sum over an integer range: `Σ_{i=lo}^{hi} p(i)` (inclusive), computed
    /// by direct evaluation. Range-sum queries over small explicit segments
    /// use this.
    pub fn sum_over(&self, lo: i64, hi: i64) -> f64 {
        (lo..=hi).map(|i| self.eval(i as f64)).sum()
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != 0.0)
            .map(|(i, c)| match i {
                0 => format!("{c:.4}"),
                1 => format!("{c:.4}x"),
                _ => format!("{c:.4}x^{i}"),
            })
            .collect();
        write!(f, "{}", terms.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_monomial() {
        assert!(Polynomial::constant(0.0).is_zero());
        let p = Polynomial::monomial(3);
        assert_eq!(p.degree(), 3);
        assert_eq!(p.eval(2.0), 8.0);
    }

    #[test]
    fn trim_trailing_zeros() {
        let p = Polynomial::from_coeffs(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        assert!(Polynomial::from_coeffs(vec![0.0, 0.0]).is_zero());
    }

    #[test]
    fn eval_by_horner() {
        // 1 - 2x + 3x²  at x=2 → 1 - 4 + 12 = 9
        let p = Polynomial::from_coeffs(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.eval(2.0), 9.0);
        assert_eq!(p.eval(0.0), 1.0);
    }

    #[test]
    fn add_scale_mul() {
        let p = Polynomial::from_coeffs(vec![1.0, 1.0]); // 1 + x
        let q = Polynomial::from_coeffs(vec![-1.0, 1.0]); // -1 + x
        assert_eq!(p.add(&q).coeffs(), &[0.0, 2.0]);
        assert_eq!(p.scale(3.0).coeffs(), &[3.0, 3.0]);
        // (1+x)(x-1) = x² - 1
        assert_eq!(p.mul(&q).coeffs(), &[-1.0, 0.0, 1.0]);
        assert!(p.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn add_cancellation_trims() {
        let p = Polynomial::from_coeffs(vec![0.0, 0.0, 1.0]);
        let q = p.scale(-1.0);
        assert!(p.add(&q).is_zero());
    }

    #[test]
    fn compose_affine_matches_pointwise() {
        let p = Polynomial::from_coeffs(vec![2.0, -1.0, 0.5, 1.0]);
        let q = p.compose_affine(2.0, 3.0);
        for x in [-2.0, -0.5, 0.0, 1.0, 4.0] {
            let expect = p.eval(2.0 * x + 3.0);
            assert!((q.eval(x) - expect).abs() < 1e-9, "x={x}");
        }
        assert_eq!(q.degree(), 3);
    }

    #[test]
    fn compose_affine_identity() {
        let p = Polynomial::from_coeffs(vec![1.0, 2.0, 3.0]);
        let q = p.compose_affine(1.0, 0.0);
        assert_eq!(p, q);
    }

    #[test]
    fn sum_over_known_ranges() {
        let x = Polynomial::monomial(1);
        assert_eq!(x.sum_over(1, 10), 55.0);
        let x2 = Polynomial::monomial(2);
        assert_eq!(x2.sum_over(1, 5), 55.0); // 1+4+9+16+25
        assert_eq!(Polynomial::constant(2.0).sum_over(0, 4), 10.0);
    }

    #[test]
    fn is_negligible_threshold() {
        let p = Polynomial::from_coeffs(vec![1e-12, -1e-13]);
        assert!(p.is_negligible(1e-11));
        assert!(!p.is_negligible(1e-13));
    }
}
