//! Spectral analysis and Nyquist-rate estimation.
//!
//! The acquisition subsystem of AIMS (paper §3.1) bases its sampling
//! techniques on the Nyquist theorem: `r_nyquist = 2·f_max`, where `f_max`
//! is "the maximum frequency in the signal … within a specified confidence
//! threshold", identified with "the standard discrete Fourier transform,
//! auto-correlation, and minimum square error techniques". This module
//! implements all three estimators plus the supporting periodogram and
//! windowing machinery.

use crate::fft::{fft, fft_real, Complex};

/// One-sided power spectral density estimate (periodogram).
#[derive(Clone, Debug)]
pub struct Periodogram {
    /// Power at each frequency bin (bin 0 = DC).
    pub power: Vec<f64>,
    /// Frequency (Hz) of each bin.
    pub freqs: Vec<f64>,
    /// Sampling rate (Hz) of the analyzed signal.
    pub sample_rate: f64,
}

/// Hann window of length `n`.
pub fn hann_window(n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![1.0; n];
    }
    (0..n)
        .map(|i| {
            let x = std::f64::consts::PI * i as f64 / (n - 1) as f64;
            (x.sin()) * (x.sin())
        })
        .collect()
}

/// Computes the one-sided periodogram of `signal` sampled at `sample_rate`
/// Hz, after mean removal and Hann windowing.
///
/// # Panics
/// If the signal is empty or the rate is not positive.
pub fn periodogram(signal: &[f64], sample_rate: f64) -> Periodogram {
    assert!(!signal.is_empty(), "cannot analyze an empty signal");
    assert!(sample_rate > 0.0, "sample rate must be positive");
    let n = signal.len();
    let mean = signal.iter().sum::<f64>() / n as f64;
    let window = hann_window(n);
    let windowed: Vec<f64> = signal.iter().zip(&window).map(|(&x, &w)| (x - mean) * w).collect();
    let spec = fft_real(&windowed);
    let half = n / 2 + 1;
    let power: Vec<f64> = spec[..half].iter().map(|c| c.norm_sq() / n as f64).collect();
    let freqs: Vec<f64> = (0..half).map(|k| k as f64 * sample_rate / n as f64).collect();
    Periodogram { power, freqs, sample_rate }
}

impl Periodogram {
    /// Total power across bins.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// The smallest frequency `f` such that the cumulative power up to `f`
    /// is at least `confidence` (e.g. `0.99`) of the total. This is the
    /// paper's "f_max within a specified confidence threshold". Returns
    /// `0.0` for an (effectively) silent signal.
    pub fn max_frequency(&self, confidence: f64) -> f64 {
        let total = self.total_power();
        if total <= 1e-300 {
            return 0.0;
        }
        let target = confidence.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for (p, f) in self.power.iter().zip(&self.freqs) {
            acc += p;
            if acc >= target {
                return *f;
            }
        }
        *self.freqs.last().unwrap()
    }
}

/// Biased sample autocorrelation `r[l] = (1/n) Σ x[i]·x[i+l]` for lags
/// `0..max_lag`, computed in O(n log n) via the Wiener–Khinchin theorem.
///
/// # Panics
/// If the signal is empty.
pub fn autocorrelation(signal: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(!signal.is_empty(), "cannot autocorrelate an empty signal");
    let n = signal.len();
    let mean = signal.iter().sum::<f64>() / n as f64;
    // Zero-pad to 2n to make linear correlation out of circular convolution.
    let m = (2 * n).next_power_of_two();
    let mut buf = vec![Complex::ZERO; m];
    for (i, &x) in signal.iter().enumerate() {
        buf[i] = Complex::new(x - mean, 0.0);
    }
    let spec = fft(&buf, false);
    let power: Vec<Complex> = spec.iter().map(|c| Complex::new(c.norm_sq(), 0.0)).collect();
    let corr = fft(&power, true);
    (0..max_lag.min(n)).map(|l| corr[l].re / n as f64).collect()
}

/// Estimates the dominant period (in samples) from the first major
/// autocorrelation peak after the zero-lag peak. Returns `None` when the
/// signal has no significant periodicity (relative peak below `threshold`).
pub fn dominant_period(signal: &[f64], threshold: f64) -> Option<usize> {
    let max_lag = signal.len() / 2;
    if max_lag < 3 {
        return None;
    }
    let r = autocorrelation(signal, max_lag);
    let r0 = r[0];
    if r0 <= 1e-300 {
        return None;
    }
    // Skip the initial decay, then take the first local maximum above the
    // threshold.
    let mut lag = 1;
    while lag + 1 < r.len() && r[lag] > r[lag + 1] {
        lag += 1;
    }
    let mut best: Option<(usize, f64)> = None;
    for l in lag..r.len().saturating_sub(1) {
        if r[l] >= r[l - 1] && r[l] >= r[l + 1] && r[l] / r0 >= threshold {
            match best {
                Some((_, v)) if v >= r[l] => {}
                _ => best = Some((l, r[l])),
            }
            // First qualifying peak is the fundamental.
            break;
        }
    }
    best.map(|(l, _)| l)
}

/// Estimator selector for [`estimate_nyquist_rate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FmaxEstimator {
    /// Cumulative-energy threshold on the periodogram (DFT technique).
    Dft,
    /// Autocorrelation dominant-period technique.
    Autocorrelation,
    /// Minimum-square-error subsampling search: the smallest rate whose
    /// linear-interpolation reconstruction stays below the error budget.
    MinSquareError,
}

/// Estimates the Nyquist sampling rate `2·f_max` (Hz) for a signal sampled
/// at `sample_rate`, using the selected technique with confidence/tolerance
/// `confidence` (interpretation per estimator: cumulative-energy fraction
/// for DFT, relative peak for autocorrelation, relative RMSE budget for
/// MSE).
pub fn estimate_nyquist_rate(
    signal: &[f64],
    sample_rate: f64,
    estimator: FmaxEstimator,
    confidence: f64,
) -> f64 {
    match estimator {
        FmaxEstimator::Dft => {
            let p = periodogram(signal, sample_rate);
            2.0 * p.max_frequency(confidence)
        }
        FmaxEstimator::Autocorrelation => match dominant_period(signal, 1.0 - confidence) {
            Some(period) if period > 0 => 2.0 * sample_rate / period as f64,
            _ => {
                // No periodicity found: fall back to the DFT estimate.
                let p = periodogram(signal, sample_rate);
                2.0 * p.max_frequency(confidence)
            }
        },
        FmaxEstimator::MinSquareError => mse_minimum_rate(signal, sample_rate, 1.0 - confidence),
    }
}

/// Smallest subsampling rate (Hz) such that linear-interpolation
/// reconstruction of the subsampled signal has relative RMSE at most
/// `budget` — *above the measurement-noise floor*. White sensor noise is
/// not reconstructible at any rate (it has no Nyquist bandwidth), so the
/// error budget is widened by a robust noise estimate (the median absolute
/// first difference); without this, one noisy low-variance channel would
/// drag every strategy to the native rate.
pub fn mse_minimum_rate(signal: &[f64], sample_rate: f64, budget: f64) -> f64 {
    let n = signal.len();
    if n < 4 {
        return sample_rate;
    }
    let energy: f64 = {
        let mean = signal.iter().sum::<f64>() / n as f64;
        signal.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
    };
    if energy <= 1e-300 {
        // A constant signal needs (almost) no samples.
        return sample_rate / (n / 2) as f64;
    }
    // Spectral noise floor: white noise has a flat periodogram, so its
    // share of the variance is ~(median bin)/(mean bin). A concentrated
    // signal (even a near-Nyquist tone) has median bin ≈ 0 and gets no
    // allowance — unlike difference-based noise estimators, which mistake
    // fast tones for noise.
    let noise_fraction = {
        let p = periodogram(signal, sample_rate);
        let total: f64 = p.power.iter().sum();
        if total <= 1e-300 || p.power.len() < 4 {
            0.0
        } else {
            let mut bins = p.power.clone();
            bins.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = bins[bins.len() / 2];
            (median * p.power.len() as f64 / total).clamp(0.0, 1.0)
        }
    };
    // Interpolation of white noise errs ~1.5σ² per interior sample; give
    // the budget that much slack — noise is unreconstructible at any rate.
    let allowed = budget * budget * energy + 2.0 * noise_fraction * energy;

    let accepts = |factor: usize| decimation_error(signal, factor) <= allowed;
    let mut best = sample_rate;
    let mut factor = n / 2;
    while factor >= 1 {
        if accepts(factor) {
            best = sample_rate / factor as f64;
            break;
        }
        factor /= 2;
    }
    // Refine linearly between the failing factor·2 and the passing factor.
    if best < sample_rate {
        let coarse = (sample_rate / best) as usize;
        for f in (coarse..=(coarse * 2).min(n / 2)).rev() {
            if accepts(f) {
                best = sample_rate / f as f64;
                break;
            }
        }
    }
    best
}

/// Squared error of reconstructing `signal` from every `factor`-th sample by
/// linear interpolation.
pub fn decimation_error(signal: &[f64], factor: usize) -> f64 {
    let n = signal.len();
    if factor <= 1 {
        return 0.0;
    }
    let mut err = 0.0;
    let mut base = 0;
    while base < n {
        let next = (base + factor).min(n - 1);
        let x0 = signal[base];
        let x1 = signal[next];
        let span = (next - base).max(1);
        for (i, &sig) in signal.iter().enumerate().take(next).skip(base + 1) {
            let t = (i - base) as f64 / span as f64;
            let interp = x0 + t * (x1 - x0);
            let d = sig - interp;
            err += d * d;
        }
        if next == n - 1 {
            break;
        }
        base = next;
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin()).collect()
    }

    #[test]
    fn periodogram_peak_at_tone_frequency() {
        let signal = tone(10.0, 128.0, 512);
        let p = periodogram(&signal, 128.0);
        let peak_bin =
            p.power.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!((p.freqs[peak_bin] - 10.0).abs() < 0.5, "peak at {}", p.freqs[peak_bin]);
    }

    #[test]
    fn max_frequency_bounds_tone() {
        let signal = tone(8.0, 100.0, 1000);
        let p = periodogram(&signal, 100.0);
        let fmax = p.max_frequency(0.99);
        assert!((7.5..=10.0).contains(&fmax), "fmax {fmax}");
    }

    #[test]
    fn max_frequency_of_silence_is_zero() {
        let p = periodogram(&vec![3.0; 256], 100.0);
        assert_eq!(p.max_frequency(0.99), 0.0);
    }

    #[test]
    fn nyquist_rate_scales_with_signal_bandwidth() {
        let slow = tone(2.0, 100.0, 1000);
        let fast = tone(20.0, 100.0, 1000);
        let r_slow = estimate_nyquist_rate(&slow, 100.0, FmaxEstimator::Dft, 0.99);
        let r_fast = estimate_nyquist_rate(&fast, 100.0, FmaxEstimator::Dft, 0.99);
        assert!(r_fast > 3.0 * r_slow, "slow {r_slow}, fast {r_fast}");
        assert!(r_slow >= 2.0 * 2.0 * 0.8, "r_slow {r_slow} below Nyquist for 2 Hz");
    }

    #[test]
    fn autocorrelation_detects_period() {
        let signal = tone(5.0, 100.0, 800); // period = 20 samples
        let period = dominant_period(&signal, 0.3).expect("period detected");
        assert!((period as i64 - 20).unsigned_abs() <= 1, "period {period}");
    }

    #[test]
    fn autocorrelation_of_noise_has_no_strong_period() {
        // Deterministic pseudo-noise.
        let mut state = 12345u64;
        let noise: Vec<f64> = (0..512)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect();
        assert_eq!(dominant_period(&noise, 0.5), None);
    }

    #[test]
    fn autocorrelation_zero_lag_is_variance() {
        let x = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let r = autocorrelation(&x, 3);
        assert!((r[0] - 1.0).abs() < 1e-9, "r0 {}", r[0]);
        // Biased estimator: r[1] = (1/8)·Σ_{i<7} x_i x_{i+1} = −7/8.
        assert!((r[1] + 0.875).abs() < 1e-9, "r1 {}", r[1]);
    }

    #[test]
    fn mse_rate_low_for_smooth_signal() {
        let smooth = tone(1.0, 100.0, 1000);
        let rough = tone(24.0, 100.0, 1000);
        let r_smooth = mse_minimum_rate(&smooth, 100.0, 0.05);
        let r_rough = mse_minimum_rate(&rough, 100.0, 0.05);
        assert!(r_smooth < r_rough, "smooth {r_smooth} rough {r_rough}");
    }

    #[test]
    fn mse_estimator_constant_signal() {
        let rate = mse_minimum_rate(&vec![5.0; 100], 100.0, 0.05);
        assert!(rate < 5.0, "constant signal should need few samples, got {rate}");
    }

    #[test]
    fn decimation_error_zero_for_linear_signal() {
        let linear: Vec<f64> = (0..100).map(|i| 3.0 * i as f64 + 1.0).collect();
        assert!(decimation_error(&linear, 10) < 1e-18);
        assert_eq!(decimation_error(&linear, 1), 0.0);
    }

    #[test]
    fn hann_window_shape() {
        let w = hann_window(5);
        assert!((w[0]).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
        assert!((w[4]).abs() < 1e-12);
        assert_eq!(hann_window(1), vec![1.0]);
        assert!(hann_window(0).is_empty());
    }
}
