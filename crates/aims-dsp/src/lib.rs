//! Signal processing substrate for AIMS.
//!
//! The AIMS paper (CIDR 2003) leans on "decades of experience in dealing
//! with signals" rather than reinventing it; this crate is that toolbox,
//! written from scratch so the reproduction is self-contained:
//!
//! - [`fft`]: complex FFT (iterative radix-2 plus Bluestein for arbitrary
//!   lengths) — used by the acquisition subsystem's maximum-frequency
//!   estimation (§3.1) and by the DFT-based similarity baseline (§3.4.2).
//! - [`spectrum`]: periodograms, autocorrelation and Nyquist-rate
//!   estimation (`r_nyquist = 2·f_max`, §3.1).
//! - [`poly`]: dense univariate polynomials — the symbolic backbone of the
//!   lazy wavelet transform (§3.3).
//! - [`filters`]: orthonormal Daubechies wavelet filter bank (Haar, D4, D6,
//!   D8) with quadrature-mirror highpass and discrete moments.
//! - [`dwt`]: periodic orthogonal DWT, multi-level decomposition, the flat
//!   "error tree" coefficient layout used by the storage subsystem (§3.2.1),
//!   and tensor-product multidimensional transforms (§3.3).
//! - [`dwpt`]: the Discrete Wavelet Packet Transform and
//!   Coifman–Wickerhauser best-basis selection (§3.1.1).
//! - [`quantize`]: uniform scalar quantizers feeding the codecs.
//! - [`adpcm`]: an adaptive-DPCM codec (the compression baseline of §3.1).
//! - [`huffman`]: a canonical Huffman block coder (stand-in for the paper's
//!   Unix `zip` baseline, §3.1).

pub mod adpcm;
pub mod dwpt;
pub mod dwt;
pub mod fft;
pub mod filters;
pub mod huffman;
pub mod kernel;
pub mod poly;
pub mod quantize;
pub mod spectrum;

pub use dwt::{dwt_full, idwt_full, WaveletDecomposition};
pub use fft::Complex;
pub use filters::WaveletFilter;
pub use kernel::DwtScratch;
pub use poly::Polynomial;
