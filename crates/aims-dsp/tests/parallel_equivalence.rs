//! Parallel DWT runs must be bit-identical to serial ones.
//!
//! The execution layer's determinism contract (see `aims-exec` docs) says
//! every 1-D line is transformed by exactly one task in serial arithmetic
//! order, so `f64::to_bits` equality must hold across pool sizes — not just
//! approximate equality.

use proptest::prelude::*;

use aims_dsp::dwt::{analysis_step, dwt_standard_md_with, idwt_standard_md_with, synthesis_step};
use aims_dsp::filters::FilterKind;
use aims_exec::ThreadPool;

fn filter_strategy() -> impl Strategy<Value = FilterKind> {
    prop_oneof![
        Just(FilterKind::Haar),
        Just(FilterKind::Db4),
        Just(FilterKind::Db6),
        Just(FilterKind::Db8),
    ]
}

/// Random 2-D/3-D power-of-two shape plus matching data.
fn md_case() -> impl Strategy<Value = (Vec<usize>, Vec<f64>)> {
    prop_oneof![
        (1u32..=5, 1u32..=5).prop_map(|(a, b)| vec![1usize << a, 1 << b]),
        (1u32..=3, 1u32..=3, 1u32..=3).prop_map(|(a, b, c)| vec![1usize << a, 1 << b, 1 << c]),
    ]
    .prop_flat_map(|dims| {
        let total: usize = dims.iter().product();
        (Just(dims), prop::collection::vec(-100.0_f64..100.0, total))
    })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Reference analysis step with the `% n` wrap applied to every tap, i.e.
/// the pre-optimization inner loop.
fn analysis_step_wrapped(signal: &[f64], kind: FilterKind) -> (Vec<f64>, Vec<f64>) {
    let f = kind.filter();
    let (h, g) = (f.lowpass(), f.highpass());
    let n = signal.len();
    let half = n / 2;
    let mut approx = vec![0.0; half];
    let mut detail = vec![0.0; half];
    for k in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for (m, (&hm, &gm)) in h.iter().zip(g).enumerate() {
            let x = signal[(2 * k + m) % n];
            a += hm * x;
            d += gm * x;
        }
        approx[k] = a;
        detail[k] = d;
    }
    (approx, detail)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The wrap-free fast path computes exactly what the fully-wrapped
    /// loop does, bit for bit.
    #[test]
    fn fast_path_matches_wrapped_reference(
        signal in (1u32..=9).prop_flat_map(|ln| {
            prop::collection::vec(-100.0_f64..100.0, 1usize << ln)
        }),
        kind in filter_strategy(),
    ) {
        let f = kind.filter();
        let (a, d) = analysis_step(&signal, &f);
        let (ra, rd) = analysis_step_wrapped(&signal, kind);
        prop_assert_eq!(bits(&a), bits(&ra));
        prop_assert_eq!(bits(&d), bits(&rd));
        // The synthesis fast path must still invert the analysis exactly
        // as the original code did (round-trip within fp tolerance).
        let back = synthesis_step(&a, &d, &f);
        for (x, y) in signal.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-8 * x.abs().max(1.0));
        }
    }

    /// Multidimensional standard DWT + inverse are bit-identical across
    /// pool sizes 1, 2, and 8.
    #[test]
    fn md_dwt_bit_identical_across_pools(
        (dims, data) in md_case(),
        kind in filter_strategy(),
    ) {
        let f = kind.filter();
        let serial = ThreadPool::new(1);
        let fwd1 = dwt_standard_md_with(&serial, &data, &dims, &f);
        let inv1 = idwt_standard_md_with(&serial, &fwd1, &dims, &f);
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            let fwd = dwt_standard_md_with(&pool, &data, &dims, &f);
            prop_assert_eq!(bits(&fwd), bits(&fwd1), "forward, threads={}", threads);
            let inv = idwt_standard_md_with(&pool, &fwd, &dims, &f);
            prop_assert_eq!(bits(&inv), bits(&inv1), "inverse, threads={}", threads);
        }
    }
}
