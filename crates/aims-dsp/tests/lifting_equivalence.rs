//! Lifting kernels must agree with the convolution reference.
//!
//! The in-place kernels behind `dwt_full` / `dwt_standard_md` (see
//! `src/kernel.rs`) replace the allocating convolution steps. Their
//! contract, per filter:
//!
//! - Haar, Db6, Db8: **bit-identical** to the repeated
//!   `analysis_step`/`synthesis_step` reference (`to_bits` equality).
//! - Db4 (Daubechies–Sweldens lifting): equal up to rounding — at most
//!   one ulp of the signal scale per decomposition level.
//!
//! The tiled multidimensional driver must additionally survive degenerate
//! shapes (1×N, N×1, single-level, taps > line length) and stay
//! bit-identical across pool sizes 1/2/8 and any tile size.

use proptest::prelude::*;

use aims_dsp::dwt::{analysis_step, dwt_full, dwt_standard_md_with, idwt_full, synthesis_step};
use aims_dsp::filters::{FilterKind, WaveletFilter};
use aims_exec::ThreadPool;

/// Pre-kernel reference: per-level allocating convolution, error-tree
/// concatenation.
fn conv_full(signal: &[f64], filter: &WaveletFilter) -> Vec<f64> {
    let mut approx = signal.to_vec();
    let mut details = Vec::new();
    while approx.len() > 1 {
        let (a, d) = analysis_step(&approx, filter);
        details.push(d);
        approx = a;
    }
    let mut out = approx;
    for d in details.into_iter().rev() {
        out.extend_from_slice(&d);
    }
    out
}

fn conv_inverse(coeffs: &[f64], filter: &WaveletFilter) -> Vec<f64> {
    let mut approx = vec![coeffs[0]];
    let mut offset = 1;
    while offset < coeffs.len() {
        let band = &coeffs[offset..offset + approx.len()];
        approx = synthesis_step(&approx, band, filter);
        offset += band.len();
    }
    approx
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn signal_case() -> impl Strategy<Value = Vec<f64>> {
    // Power-of-two lengths 2..=4096.
    (1u32..=12).prop_flat_map(|ln| prop::collection::vec(-100.0_f64..100.0, 1usize << ln))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Filters served by the exact kernels (Haar butterfly, blocked
    /// convolution) produce the reference transform bit for bit, both
    /// directions.
    #[test]
    fn exact_kernels_bit_match_convolution(
        signal in signal_case(),
        kind in prop_oneof![
            Just(FilterKind::Haar),
            Just(FilterKind::Db6),
            Just(FilterKind::Db8),
        ],
    ) {
        let f = kind.filter();
        let fwd = dwt_full(&signal, &f);
        let reference = conv_full(&signal, &f);
        prop_assert_eq!(bits(&fwd), bits(&reference), "{} forward", f.name());
        let inv = idwt_full(&fwd, &f);
        let ref_inv = conv_inverse(&reference, &f);
        prop_assert_eq!(bits(&inv), bits(&ref_inv), "{} inverse", f.name());
    }

    /// The Db4 lifting factorization agrees with the convolution path to
    /// within one ulp of the signal scale per level, and round-trips.
    #[test]
    fn db4_lifting_within_ulp_per_level(signal in signal_case()) {
        let f = FilterKind::Db4.filter();
        let n = signal.len();
        let levels = n.trailing_zeros() as f64;
        let scale = signal.iter().fold(1e-30_f64, |m, v| m.max(v.abs()));
        let fwd = dwt_full(&signal, &f);
        let reference = conv_full(&signal, &f);
        // A handful of ulps per level, measured at each coefficient's own
        // magnitude (approx coefficients grow ~√2 per level, and each
        // level's lifting chain contributes a few rounded operations).
        for (i, (a, b)) in fwd.iter().zip(&reference).enumerate() {
            let tol = 4.0 * (levels + 1.0) * b.abs().max(scale) * f64::EPSILON;
            prop_assert!((a - b).abs() <= tol, "coeff {i}: {a} vs {b} (tol {tol:e})");
        }
        let back = idwt_full(&fwd, &f);
        for (i, (a, b)) in back.iter().zip(&signal).enumerate() {
            let tol = 8.0 * (levels + 1.0) * b.abs().max(scale) * f64::EPSILON;
            prop_assert!((a - b).abs() <= tol, "sample {i}: {a} vs {b} (tol {tol:e})");
        }
    }

    /// Every filter's full transform, via the kernels, still inverts —
    /// across pool sizes 1/2/8 on the multidimensional path.
    #[test]
    fn md_kernels_bit_identical_and_invertible_across_pools(
        data in prop::collection::vec(-50.0_f64..50.0, 256),
        kind in prop_oneof![
            Just(FilterKind::Haar),
            Just(FilterKind::Db4),
            Just(FilterKind::Db6),
            Just(FilterKind::Db8),
        ],
    ) {
        let f = kind.filter();
        let dims = [16usize, 16];
        let serial = ThreadPool::new(1);
        let fwd1 = dwt_standard_md_with(&serial, &data, &dims, &f);
        for threads in [2usize, 8] {
            let pool = ThreadPool::new(threads);
            let fwd = dwt_standard_md_with(&pool, &data, &dims, &f);
            prop_assert_eq!(bits(&fwd), bits(&fwd1), "threads={}", threads);
        }
    }
}

/// Degenerate shapes for the tiled MD driver: trivial axes, lines shorter
/// than the filter, single-level shapes. All must round-trip and match
/// across pool sizes.
#[test]
fn tiled_md_degenerate_shapes() {
    let shapes: &[&[usize]] = &[
        &[1, 64],   // 1×N: first axis is identity
        &[64, 1],   // N×1: second axis is identity
        &[2, 2],    // single-level lines shorter than db8's 8 taps
        &[2, 2, 2], // 3-D, every line wraps multiple times for db6/db8
        &[1, 1],    // all-identity
        &[4, 2, 8], // mixed tiny axes
        &[256, 2],  // long stride-1 axis, minimal strided axis
        &[2, 256],  // minimal stride-1 axis, long strided axis
    ];
    for kind in FilterKind::ALL {
        let f = kind.filter();
        for &dims in shapes {
            let total: usize = dims.iter().product();
            let data: Vec<f64> = (0..total).map(|i| ((i * 37 + 11) % 29) as f64 - 14.0).collect();
            let serial = ThreadPool::new(1);
            let fwd1 = dwt_standard_md_with(&serial, &data, dims, &f);
            let inv1 = aims_dsp::dwt::idwt_standard_md_with(&serial, &fwd1, dims, &f);
            for (a, b) in inv1.iter().zip(&data) {
                assert!((a - b).abs() < 1e-9, "{} {dims:?}: roundtrip {a} vs {b}", f.name());
            }
            for threads in [2usize, 8] {
                let pool = ThreadPool::new(threads);
                let fwd = dwt_standard_md_with(&pool, &data, dims, &f);
                assert_eq!(bits(&fwd), bits(&fwd1), "{} {dims:?} threads={threads}", f.name());
            }
        }
    }
}

/// The tiled strided pass must equal transforming every line with
/// `dwt_full` by hand, bit for bit — at widths that force full tiles,
/// partial tiles, and stride < tile.
#[test]
fn tiled_pass_bit_matches_per_line_reference() {
    let serial = ThreadPool::new(1);
    for kind in FilterKind::ALL {
        let f = kind.filter();
        // cols is the stride of the first axis: exercise partial and
        // clamped tiles around every candidate tile size.
        for &cols in &[2usize, 4, 8, 16, 32, 64, 128] {
            let rows = 16usize;
            let data: Vec<f64> =
                (0..rows * cols).map(|i| ((i * 53 + 7) % 41) as f64 * 0.5 - 10.0).collect();
            let fwd = dwt_standard_md_with(&serial, &data, &[rows, cols], &f);
            // Manual reference: columns first (axis 0), then rows (axis 1).
            let mut reference = data.clone();
            for c in 0..cols {
                let col: Vec<f64> = (0..rows).map(|r| reference[r * cols + c]).collect();
                for (r, v) in dwt_full(&col, &f).into_iter().enumerate() {
                    reference[r * cols + c] = v;
                }
            }
            for r in 0..rows {
                let row = dwt_full(&reference[r * cols..(r + 1) * cols], &f);
                reference[r * cols..(r + 1) * cols].copy_from_slice(&row);
            }
            assert_eq!(bits(&fwd), bits(&reference), "{} rows={rows} cols={cols}", f.name());
        }
    }
}
