//! Property-based tests of the DSP substrate.

use proptest::prelude::*;

use aims_dsp::dwpt::{CostFunction, WaveletPacketTree};
use aims_dsp::dwt::{dwt_full, idwt_full};
use aims_dsp::fft::{fft, Complex};
use aims_dsp::filters::FilterKind;
use aims_dsp::huffman;
use aims_dsp::poly::Polynomial;
use aims_dsp::quantize::UniformQuantizer;

fn filter_strategy() -> impl Strategy<Value = FilterKind> {
    prop_oneof![
        Just(FilterKind::Haar),
        Just(FilterKind::Db4),
        Just(FilterKind::Db6),
        Just(FilterKind::Db8),
    ]
}

fn pow2_signal() -> impl Strategy<Value = Vec<f64>> {
    (1u32..=9).prop_flat_map(|log_n| prop::collection::vec(-100.0_f64..100.0, 1 << log_n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT round-trips arbitrary (including non-power-of-two) lengths.
    #[test]
    fn fft_roundtrip(
        re in prop::collection::vec(-100.0_f64..100.0, 1..200),
    ) {
        let input: Vec<Complex> = re.iter().map(|&x| Complex::new(x, -x * 0.5)).collect();
        let back = fft(&fft(&input, false), true);
        let scale = re.iter().fold(1.0_f64, |m, x| m.max(x.abs()));
        for (a, b) in input.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-8 * scale);
            prop_assert!((a.im - b.im).abs() < 1e-8 * scale);
        }
    }

    /// FFT is linear: F(a·x + y) = a·F(x) + F(y).
    #[test]
    fn fft_linearity(
        x in prop::collection::vec(-10.0_f64..10.0, 16),
        y in prop::collection::vec(-10.0_f64..10.0, 16),
        a in -3.0_f64..3.0,
    ) {
        let cx: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let cy: Vec<Complex> = y.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mixed: Vec<Complex> = cx.iter().zip(&cy).map(|(u, v)| u.scale(a) + *v).collect();
        let lhs = fft(&mixed, false);
        let fx = fft(&cx, false);
        let fy = fft(&cy, false);
        for i in 0..16 {
            let rhs = fx[i].scale(a) + fy[i];
            prop_assert!((lhs[i].re - rhs.re).abs() < 1e-8);
            prop_assert!((lhs[i].im - rhs.im).abs() < 1e-8);
        }
    }

    /// DWT round-trip + Parseval for every filter and power-of-two length.
    #[test]
    fn dwt_roundtrip(signal in pow2_signal(), kind in filter_strategy()) {
        let f = kind.filter();
        let coeffs = dwt_full(&signal, &f);
        let back = idwt_full(&coeffs, &f);
        let energy: f64 = signal.iter().map(|x| x * x).sum();
        let cenergy: f64 = coeffs.iter().map(|x| x * x).sum();
        prop_assert!((energy - cenergy).abs() < 1e-6 * energy.max(1.0));
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * energy.max(1.0).sqrt());
        }
    }

    /// DWT is linear.
    #[test]
    fn dwt_linearity(
        x in prop::collection::vec(-50.0_f64..50.0, 64),
        y in prop::collection::vec(-50.0_f64..50.0, 64),
        kind in filter_strategy(),
    ) {
        let f = kind.filter();
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a - b).collect();
        let lhs = dwt_full(&mixed, &f);
        let fx = dwt_full(&x, &f);
        let fy = dwt_full(&y, &f);
        for i in 0..64 {
            prop_assert!((lhs[i] - (2.0 * fx[i] - fy[i])).abs() < 1e-7);
        }
    }

    /// Any DWPT best basis tiles the signal and reconstructs it exactly.
    #[test]
    fn dwpt_best_basis_roundtrip(
        signal in prop::collection::vec(-20.0_f64..20.0, 64),
        kind in filter_strategy(),
        cost_pick in 0usize..3,
    ) {
        let cost = [
            CostFunction::ShannonEntropy,
            CostFunction::L1Norm,
            CostFunction::ThresholdCount(0.5),
        ][cost_pick];
        let tree = WaveletPacketTree::decompose(&signal, &kind.filter(), 4);
        let basis = tree.best_basis(cost);
        let total: usize = basis.nodes.iter().map(|&id| tree.node(id).len()).sum();
        prop_assert_eq!(total, 64);
        let back = tree.reconstruct(&basis, &tree.coefficients(&basis));
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    /// The best basis never costs more than the leaf or DWT bases.
    #[test]
    fn dwpt_best_basis_optimality(
        signal in prop::collection::vec(-20.0_f64..20.0, 128),
        kind in filter_strategy(),
    ) {
        let cost = CostFunction::ShannonEntropy;
        let tree = WaveletPacketTree::decompose(&signal, &kind.filter(), 5);
        let best = tree.best_basis(cost).cost;
        prop_assert!(best <= tree.leaf_basis(cost).cost + 1e-9);
        prop_assert!(best <= tree.dwt_basis(cost).cost + 1e-9);
    }

    /// Huffman coding is a bijection on symbol streams, and its size never
    /// exceeds the trivial fixed-width encoding by more than the table.
    #[test]
    fn huffman_roundtrip_and_bound(
        symbols in prop::collection::vec(0u16..128, 0..500),
    ) {
        let enc = huffman::encode(&symbols, 128);
        prop_assert_eq!(huffman::decode(&enc), symbols.clone());
        // ≤ 32 bits per symbol (tree depth bound) + table.
        prop_assert!(enc.bits.len() <= symbols.len() * 4 + 1);
    }

    /// Quantization error is bounded by half a step, and codes are stable
    /// under re-encoding of the decoded value.
    #[test]
    fn quantizer_fixpoint(
        signal in prop::collection::vec(-1000.0_f64..1000.0, 1..100),
        bits in 2u32..12,
    ) {
        let q = UniformQuantizer::fit(&signal, bits);
        for &x in &signal {
            let c = q.encode(x);
            let y = q.decode(c);
            prop_assert!((y - x).abs() <= q.step() / 2.0 + 1e-9);
            prop_assert_eq!(q.encode(y), c);
        }
    }

    /// Polynomial composition law: (p ∘ affine) evaluated == p(affine(x)).
    #[test]
    fn polynomial_compose(
        coeffs in prop::collection::vec(-5.0_f64..5.0, 0..5),
        a in -3.0_f64..3.0,
        b in -10.0_f64..10.0,
        x in -20.0_f64..20.0,
    ) {
        let p = Polynomial::from_coeffs(coeffs);
        let q = p.compose_affine(a, b);
        let direct = p.eval(a * x + b);
        prop_assert!((q.eval(x) - direct).abs() < 1e-6 * direct.abs().max(1.0));
    }

    /// Filtering a polynomial symbolically matches pointwise filtering.
    #[test]
    fn filter_polynomial_pointwise(
        coeffs in prop::collection::vec(-2.0_f64..2.0, 1..4),
        kind in filter_strategy(),
        highpass in any::<bool>(),
    ) {
        let p = Polynomial::from_coeffs(coeffs);
        let f = kind.filter();
        let q = f.filter_polynomial(highpass, &p);
        let taps = if highpass { f.highpass() } else { f.lowpass() };
        for k in 0..6 {
            let direct: f64 = taps
                .iter()
                .enumerate()
                .map(|(m, &c)| c * p.eval((2 * k + m) as f64))
                .sum();
            prop_assert!((q.eval(k as f64) - direct).abs() < 1e-6 * direct.abs().max(1.0));
        }
    }
}
