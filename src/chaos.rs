//! Composed chaos drills: every seeded fault injector in the system,
//! driven together under one master seed.
//!
//! The repo has grown three independent, deterministic fault injectors:
//!
//! 1. **Storage** — [`FaultyDevice`] (read errors, bit flips, torn
//!    writes, dead blocks, latency) under the serving layer's retry and
//!    degraded-evaluation path.
//! 2. **Acquisition** — [`FaultySensorRig`] (dropouts, spikes, stuck-at,
//!    clock faults, duplicates, reordering, sensor death) under the
//!    supervised ingest pipeline.
//! 3. **Overload** — query floods against a bounded admission queue,
//!    under the adaptive QoS layer's graduated load shedding.
//!
//! Each is tested in isolation elsewhere. This module is the *composed*
//! drill: one `u64` master seed derives a sub-seed per injector
//! (splitmix64), and six phases walk the system from a clean baseline
//! through every injector separately, then all three at once, then a
//! drain — asserting the robustness invariants that matter end-to-end:
//!
//! - **No silent losses**: every admitted query reaches a terminal
//!   outcome (`Done`, `Shed`, or `DeadlineExpired`), never a hang and
//!   never a dropped session.
//! - **Monotone bounds**: every session's error-bound trajectory is
//!   non-increasing and finite, faults or not.
//! - **Shed ⇒ best-so-far**: a shed session receives a real partial
//!   answer with a finite guaranteed bound — not an error.
//! - **Drains recover**: after the flood stops, the service walks back
//!   to [`Tier::Normal`] with an empty session registry, and a fresh
//!   query completes undegraded.
//!
//! The same harness backs `tests/chaos_drill.rs` (CI, under pinned
//! `AIMS_CHAOS_SEED`s), `aims-cli chaos` (the operator's drill button),
//! and `aims-bench e31` (which adds the FIFO-vs-utility scheduling
//! comparison and the perf-trajectory gate).

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aims_acquisition::ingest::{IngestConfig, SupervisedIngest};
use aims_acquisition::recorder::RecorderConfig;
use aims_propolyne::cube::DataCube;
use aims_propolyne::cube::WaveletCube;
use aims_sensors::faulty::{FaultySensorRig, SensorFaultPlan};
use aims_sensors::glove::CyberGloveRig;
use aims_sensors::noise::NoiseSource;
use aims_service::{
    Outcome, QosConfig, QueryService, QuerySpec, Refinement, ServiceConfig, ServiceError, Tier,
};
use aims_storage::device::{BlockDevice, RetryPolicy};
use aims_storage::faults::{FaultPlan, FaultyDevice};

/// Coefficients per storage block in every drill service.
const BLOCK: usize = 16;
/// Cube dims: 28 glove channels padded to 32 × 200 frames padded to 256.
const DIMS: [usize; 2] = [32, 256];

/// splitmix64 — the sub-seed derivation. Every injector gets an
/// independent stream from (master seed, salt), so changing the master
/// seed reshuffles every fault schedule at once while two injectors
/// never share a stream.
pub fn sub_seed(master: u64, salt: u64) -> u64 {
    let mut z = master.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning for one composed drill run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Master seed; every fault schedule and workload derives from it.
    pub seed: u64,
    /// Concurrent flood clients in the overload phases.
    pub flood_threads: usize,
    /// Queries each flood client pushes through (closed-loop).
    pub flood_queries: usize,
    /// Queries in the non-flood load phases.
    pub load_queries: usize,
    /// How long the drain phase may take to reach zero degradation.
    pub drain_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 4242,
            flood_threads: 12,
            flood_queries: 4,
            load_queries: 12,
            drain_timeout: Duration::from_secs(20),
        }
    }
}

/// Outcome tallies and invariant checks for one drill phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    /// Phase name (stable identifiers: `baseline`, `overload`, …).
    pub name: String,
    /// Queries submitted (accepted + typed rejections).
    pub submitted: usize,
    /// Queries past admission.
    pub accepted: usize,
    /// Typed `QueueFull` rejections (never a hang or panic).
    pub rejected: usize,
    /// Sessions that ran to `Done`.
    pub done: usize,
    /// Sessions shed with a best-so-far answer.
    pub shed: usize,
    /// Sessions that hit their deadline.
    pub expired: usize,
    /// `Done` outcomes with a non-zero bound (degraded storage).
    pub degraded: usize,
    /// p99 accepted-query latency, milliseconds.
    pub p99_ms: f64,
    /// Phase wall time, milliseconds.
    pub elapsed_ms: f64,
    /// Invariant violations (empty = phase passed).
    pub violations: Vec<String>,
}

/// Everything one composed drill produces.
#[derive(Clone, Debug)]
pub struct DrillReport {
    /// The master seed the run derived everything from.
    pub seed: u64,
    /// Per-phase tallies, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Drain phase: milliseconds until the service returned to
    /// [`Tier::Normal`] with an empty session registry.
    pub recovery_ms: f64,
    /// Shed sessions / accepted sessions over the flood phases.
    pub shed_fraction: f64,
    /// p99 latency of the pure-overload phase, milliseconds.
    pub p99_overload_ms: f64,
}

impl DrillReport {
    /// Every invariant violation across every phase.
    pub fn violations(&self) -> Vec<String> {
        self.phases.iter().flat_map(|p| p.violations.iter().cloned()).collect()
    }

    /// True when no phase violated an invariant.
    pub fn passed(&self) -> bool {
        self.phases.iter().all(|p| p.violations.is_empty())
    }

    /// Machine-readable record (one JSON object) for CI gates.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"experiment\":\"chaos_drill\",\"seed\":{},\"passed\":{},\
             \"recovery_ms\":{:.3},\"shed_fraction\":{:.4},\"p99_overload_ms\":{:.3},\
             \"violations\":{},\"phases\":[",
            self.seed,
            self.passed(),
            self.recovery_ms,
            self.shed_fraction,
            self.p99_overload_ms,
            self.violations().len(),
        );
        for (k, p) in self.phases.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"submitted\":{},\"accepted\":{},\"rejected\":{},\
                 \"done\":{},\"shed\":{},\"expired\":{},\"degraded\":{},\
                 \"p99_ms\":{:.3},\"elapsed_ms\":{:.3},\"violations\":{}}}",
                p.name,
                p.submitted,
                p.accepted,
                p.rejected,
                p.done,
                p.shed,
                p.expired,
                p.degraded,
                p.p99_ms,
                p.elapsed_ms,
                p.violations.len(),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// One accepted query's post-mortem, sent back from a drill worker.
struct QueryRecord {
    latency_ms: f64,
    outcome: &'static str,
    bound: f64,
    violations: Vec<String>,
}

/// Checks the per-session invariants on a finished session: a monotone,
/// finite bound trajectory and a real (finite) terminal answer.
fn audit_session(
    label: &str,
    trace: &[Refinement],
    outcome: &Outcome,
) -> (QueryRecord, &'static str) {
    let mut violations = Vec::new();
    let (kind, terminal) = match outcome {
        Outcome::Done(r) => ("done", Some(r)),
        Outcome::Shed(r) => ("shed", Some(r)),
        Outcome::DeadlineExpired(r) => ("expired", Some(r)),
        Outcome::Cancelled => ("cancelled", None),
        Outcome::Disconnected => ("disconnected", None),
    };
    let mut prev = f64::INFINITY;
    for r in trace.iter().chain(terminal) {
        if !r.error_bound.is_finite() {
            violations.push(format!("{label}: non-finite bound {}", r.error_bound));
        }
        if r.error_bound > prev + 1e-9 {
            violations.push(format!("{label}: bound widened {prev} -> {}", r.error_bound));
        }
        prev = r.error_bound;
        if !r.estimate.is_finite() {
            violations.push(format!("{label}: non-finite estimate {}", r.estimate));
        }
        if r.coefficients_used > r.total_coefficients {
            violations.push(format!(
                "{label}: used {} > total {}",
                r.coefficients_used, r.total_coefficients
            ));
        }
    }
    if terminal.is_none() {
        violations.push(format!("{label}: admitted query ended `{kind}` with no answer"));
    }
    let bound = terminal.map_or(f64::NAN, |r| r.error_bound);
    (QueryRecord { latency_ms: 0.0, outcome: kind, bound, violations }, kind)
}

fn p99(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    v[((v.len() - 1) as f64 * 0.99) as usize]
}

/// Seeded xorshift stream for workload generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// `n` seeded 2-D range-sum specs over the drill cube: channel band ×
/// time window, spans wide enough that plans overlap heavily (the
/// shared-scan / utility-scheduler regime).
fn drill_queries(seed: u64, n: usize) -> Vec<Vec<(usize, usize)>> {
    let mut rng = Rng(seed | 1);
    (0..n)
        .map(|_| {
            DIMS.iter()
                .map(|&d| {
                    let lo = (rng.next() as usize) % (d / 2);
                    let span = d / 3 + (rng.next() as usize) % (d / 2);
                    (lo, (lo + span).min(d - 1))
                })
                .collect()
        })
        .collect()
}

/// Records a glove session, replays it through a (possibly faulty)
/// sensor link and the supervised ingest, and packs the repaired stream
/// into a channels × time wavelet cube. Returns the cube plus any
/// acquisition-side invariant violations (non-finite repaired samples,
/// an empty stream).
pub fn sensor_cube(seed: u64, plan: &SensorFaultPlan) -> (WaveletCube, Vec<String>) {
    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(sub_seed(seed, 11));
    let clean = rig.record_session(2.0, 0.6, &mut noise);
    let wire = FaultySensorRig::new(plan.clone()).transmit(&clean);
    let ingest = SupervisedIngest::new(IngestConfig {
        // A buffer the recorder can never overrun: drill determinism
        // must not depend on recorder thread timing.
        recorder: RecorderConfig { buffer_frames: 1 << 16, batch_size: 64, store_latency_us: 0 },
        ..IngestConfig::default()
    });
    let out = ingest.ingest(clean.spec(), &wire);

    let mut violations = Vec::new();
    if out.stream.is_empty() {
        violations.push("acquisition: supervised ingest produced an empty stream".into());
    }
    let mut cube = DataCube::zeros(&DIMS);
    let (channels, frames) = (out.stream.channels().min(DIMS[0]), out.stream.len().min(DIMS[1]));
    {
        let values = cube.values_mut();
        for c in 0..channels {
            let signal = out.stream.channel(c);
            for (t, &v) in signal.iter().take(frames).enumerate() {
                if !v.is_finite() {
                    violations
                        .push(format!("acquisition: non-finite repaired sample ch{c} t{t} = {v}"));
                }
                values[c * DIMS[1] + t] = v;
            }
            // Pad by repeating the final value, matching the system
            // facade's ingest (zeros would pollute coarse coefficients).
            let last = signal.get(frames.saturating_sub(1)).copied().unwrap_or(0.0);
            for t in frames..DIMS[1] {
                values[c * DIMS[1] + t] = last;
            }
        }
    }
    (cube.transform(&aims_dsp::filters::FilterKind::Db4.filter()), violations)
}

/// The sensor-fault schedule the drill injects: dropouts, spikes,
/// stuck-at episodes, duplicates and reordering all at once.
pub fn drill_sensor_plan(seed: u64) -> SensorFaultPlan {
    SensorFaultPlan {
        dropout_rate: 0.08,
        stuck_rate: 0.01,
        spike_rate: 0.02,
        duplicate_rate: 0.05,
        reorder_rate: 0.05,
        ..SensorFaultPlan::none(sub_seed(seed, 22))
    }
}

/// The storage-fault schedule the drill injects: transient read errors
/// and bit flips (retried), a sliver of dead blocks (degraded bounds).
pub fn drill_storage_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none(sub_seed(seed, 33));
    plan.read_error_rate = 0.10;
    plan.bit_flip_rate = 0.05;
    plan.dead_fraction = 0.04;
    plan
}

/// Service tuning for the calm (non-flood) phases: queue sized for the
/// whole load, generous round budget.
fn calm_config(load: usize) -> ServiceConfig {
    ServiceConfig {
        queue_capacity: load.max(4),
        max_batch: 8,
        round_blocks: 16,
        retry: RetryPolicy::with_retries(4),
        ..ServiceConfig::default()
    }
}

/// Service tuning for the flood phases: a small queue, deliberately slow
/// rounds (so pressure genuinely sustains), and an aggressive degradation
/// ladder — the regime graduated shedding exists for.
fn flood_config() -> ServiceConfig {
    ServiceConfig {
        queue_capacity: 8,
        max_batch: 4,
        round_blocks: 4,
        round_pause: Duration::from_micros(300),
        retry: RetryPolicy::with_retries(4),
        qos: QosConfig {
            enter_pressure: [0.20, 0.35, 0.50],
            exit_pressure: [0.05, 0.10, 0.15],
            escalate_rounds: 1,
            recover_rounds: 4,
            ..QosConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// Runs a calm phase: `queries` submitted together (the queue is sized
/// for them), every session collected and audited. `expected` carries
/// serial ground-truth bits for clean-storage phases (bit-identity is
/// asserted); `None` for degraded storage.
fn calm_phase<D: BlockDevice + Send + Sync + 'static>(
    name: &str,
    svc: &QueryService<D>,
    queries: &[Vec<(usize, usize)>],
    expected: Option<&[u64]>,
) -> PhaseReport {
    let started = Instant::now();
    let mut report = PhaseReport { name: name.into(), ..PhaseReport::default() };
    let mut sessions = Vec::new();
    for (k, ranges) in queries.iter().cloned().enumerate() {
        report.submitted += 1;
        match svc.submit(QuerySpec::interactive(ranges)) {
            Ok(h) => {
                report.accepted += 1;
                sessions.push((k, Instant::now(), h));
            }
            Err(e) => {
                report.violations.push(format!("{name}: calm-phase submit {k} rejected: {e}"));
            }
        }
    }
    let mut latencies = Vec::new();
    for (k, accepted_at, h) in sessions {
        let (trace, outcome) = h.collect();
        let label = format!("{name} q{k}");
        let (mut rec, kind) = audit_session(&label, &trace, &outcome);
        rec.latency_ms = accepted_at.elapsed().as_secs_f64() * 1e3;
        match kind {
            "done" => {
                report.done += 1;
                if rec.bound > 0.0 {
                    report.degraded += 1;
                }
                if let (Some(exp), Outcome::Done(r)) = (expected, &outcome) {
                    if r.estimate.to_bits() != exp[k] {
                        rec.violations.push(format!(
                            "{label}: clean-storage answer diverged from serial evaluation"
                        ));
                    }
                    if r.error_bound != 0.0 {
                        rec.violations.push(format!(
                            "{label}: clean storage ended with bound {}",
                            r.error_bound
                        ));
                    }
                }
            }
            "shed" => {
                report.shed += 1;
                rec.violations.push(format!("{label}: calm phase must never shed"));
            }
            "expired" => report.expired += 1,
            other => rec.violations.push(format!("{label}: admitted query lost: {other}")),
        }
        latencies.push(rec.latency_ms);
        report.violations.extend(rec.violations);
    }
    report.p99_ms = p99(latencies);
    report.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    report
}

/// Runs a flood phase: `threads` closed-loop clients, each submitting
/// `per_thread` queries with retry-on-`QueueFull` — the retrying is what
/// keeps the bounded queue saturated and the pressure signal sustained.
/// Mixed priorities (3 batch : 1 interactive) exercise both sides of the
/// tier ladder.
fn flood_phase<D: BlockDevice + Send + Sync + 'static>(
    name: &str,
    svc: &Arc<QueryService<D>>,
    seed: u64,
    threads: usize,
    per_thread: usize,
) -> PhaseReport {
    let started = Instant::now();
    let mut report = PhaseReport { name: name.into(), ..PhaseReport::default() };
    let (tx, rx) = mpsc::channel::<QueryRecord>();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let tx = tx.clone();
            let svc = Arc::clone(svc);
            let queries = drill_queries(sub_seed(seed, 100 + t as u64), per_thread);
            scope.spawn(move || {
                for (k, ranges) in queries.into_iter().enumerate() {
                    let spec = if k % 4 == 3 {
                        QuerySpec::interactive(ranges)
                    } else {
                        QuerySpec::batch(ranges)
                    };
                    // Closed-loop with retry: a rejected submit backs off
                    // and tries again, so the queue stays full while any
                    // capacity exists downstream.
                    let mut rejections = 0usize;
                    let handle = loop {
                        match svc.submit(spec.clone()) {
                            Ok(h) => break Some(h),
                            Err(ServiceError::QueueFull { .. }) => {
                                rejections += 1;
                                if rejections > 50_000 {
                                    break None;
                                }
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(e) => {
                                tx.send(QueryRecord {
                                    latency_ms: 0.0,
                                    outcome: "rejected",
                                    bound: f64::NAN,
                                    violations: vec![format!(
                                        "{name} t{t} q{k}: non-overload rejection: {e}"
                                    )],
                                })
                                .ok();
                                break None;
                            }
                        }
                    };
                    let Some(handle) = handle else {
                        tx.send(QueryRecord {
                            latency_ms: 0.0,
                            outcome: "rejected",
                            bound: f64::NAN,
                            violations: vec![format!(
                                "{name} t{t} q{k}: starved out by rejections"
                            )],
                        })
                        .ok();
                        continue;
                    };
                    let accepted_at = Instant::now();
                    let (trace, outcome) = handle.collect();
                    let label = format!("{name} t{t} q{k}");
                    let (mut rec, _) = audit_session(&label, &trace, &outcome);
                    rec.latency_ms = accepted_at.elapsed().as_secs_f64() * 1e3;
                    tx.send(rec).ok();
                }
            });
        }
        drop(tx);
    });
    let mut latencies = Vec::new();
    for rec in rx.iter() {
        report.submitted += 1;
        match rec.outcome {
            "done" => {
                report.accepted += 1;
                report.done += 1;
                if rec.bound > 0.0 {
                    report.degraded += 1;
                }
                latencies.push(rec.latency_ms);
            }
            "shed" => {
                report.accepted += 1;
                report.shed += 1;
                latencies.push(rec.latency_ms);
            }
            "expired" => {
                report.accepted += 1;
                report.expired += 1;
                latencies.push(rec.latency_ms);
            }
            "cancelled" | "disconnected" => {
                report.accepted += 1;
            }
            _ => report.rejected += 1,
        }
        report.violations.extend(rec.violations);
    }
    if report.shed == 0 {
        // The flood is sized ~6x over capacity with slowed rounds and an
        // aggressive ladder; if nothing shed, the QoS layer never
        // engaged — that is a drill failure, not good luck.
        report.violations.push(format!("{name}: sustained flood engaged no load shedding"));
    }
    report.p99_ms = p99(latencies);
    report.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    report
}

/// Runs the full six-phase composed drill. Phases:
///
/// 1. `baseline` — clean sensors, clean storage, calm load. Bit-exact.
/// 2. `overload` — clean data, flood. Graduated shedding engages.
/// 3. `storage-faults` — seeded device faults, calm load. Degraded
///    bounds, no losses.
/// 4. `sensor-faults` — seeded wire faults through supervised ingest,
///    clean storage, calm load over the repaired stream.
/// 5. `all-faults` — sensor-faulted data on a faulty device, flooded.
/// 6. `drain` — the phase-5 service with the flood stopped: measures
///    recovery to zero degradation, then proves a fresh query runs
///    undegraded to `Done`.
pub fn run_drill(cfg: &ChaosConfig) -> DrillReport {
    let mut phases = Vec::new();

    // Phase 1 — baseline: every layer clean, answers bit-exact.
    let (clean_cube, acq_violations) =
        sensor_cube(cfg.seed, &SensorFaultPlan::none(sub_seed(cfg.seed, 1)));
    let queries = drill_queries(sub_seed(cfg.seed, 2), cfg.load_queries);
    let svc = QueryService::new(clean_cube.clone(), BLOCK, calm_config(cfg.load_queries));
    let expected: Vec<u64> = queries
        .iter()
        .map(|ranges| {
            let p =
                svc.engine().prepare(&aims_propolyne::query::RangeSumQuery::count(ranges.clone()));
            svc.engine().evaluate_prepared(&p).to_bits()
        })
        .collect();
    let mut baseline = calm_phase("baseline", &svc, &queries, Some(&expected));
    baseline.violations.splice(0..0, acq_violations);
    svc.shutdown();
    phases.push(baseline);

    // Phase 2 — overload only: clean data, flooded bounded queue.
    let svc = Arc::new(QueryService::new(clean_cube.clone(), BLOCK, flood_config()));
    let overload =
        flood_phase("overload", &svc, sub_seed(cfg.seed, 3), cfg.flood_threads, cfg.flood_queries);
    let p99_overload_ms = overload.p99_ms;
    svc.shutdown();
    phases.push(overload);

    // Phase 3 — storage faults only: calm load over a faulty device.
    let storage_plan = drill_storage_plan(cfg.seed);
    let svc =
        QueryService::on_device(clean_cube, BLOCK, calm_config(cfg.load_queries), |bs, nb| {
            FaultyDevice::with_plan(bs, nb, storage_plan.clone())
        });
    phases.push(calm_phase("storage-faults", &svc, &queries, None));
    svc.shutdown();

    // Phase 4 — sensor faults only: the wire mangles the stream, the
    // supervised ingest repairs it, clean storage serves it exactly.
    let (faulted_cube, acq_violations) = sensor_cube(cfg.seed, &drill_sensor_plan(cfg.seed));
    let svc = QueryService::new(faulted_cube.clone(), BLOCK, calm_config(cfg.load_queries));
    let expected: Vec<u64> = queries
        .iter()
        .map(|ranges| {
            let p =
                svc.engine().prepare(&aims_propolyne::query::RangeSumQuery::count(ranges.clone()));
            svc.engine().evaluate_prepared(&p).to_bits()
        })
        .collect();
    let mut sensor = calm_phase("sensor-faults", &svc, &queries, Some(&expected));
    sensor.violations.splice(0..0, acq_violations);
    svc.shutdown();
    phases.push(sensor);

    // Phase 5 — all three injectors at once: sensor-faulted data on a
    // faulty device, flooded.
    let svc = Arc::new(QueryService::on_device(faulted_cube, BLOCK, flood_config(), |bs, nb| {
        FaultyDevice::with_plan(bs, nb, storage_plan.clone())
    }));
    phases.push(flood_phase(
        "all-faults",
        &svc,
        sub_seed(cfg.seed, 4),
        cfg.flood_threads,
        cfg.flood_queries,
    ));

    // Phase 6 — drain: same service, flood stopped. The controller must
    // walk back to Normal with an empty registry, and a fresh query must
    // run undegraded (Done, not shed) — zero residual degradation.
    let drain_started = Instant::now();
    let mut drain = PhaseReport { name: "drain".into(), ..PhaseReport::default() };
    let deadline = drain_started + cfg.drain_timeout;
    loop {
        let quiet = svc.qos_tier() == Tier::Normal
            && !svc.sessions_json_lines().contains("\"kind\":\"session\"");
        if quiet {
            break;
        }
        if Instant::now() >= deadline {
            drain.violations.push(format!(
                "drain: service stuck at tier {:?} after {:?}",
                svc.qos_tier(),
                cfg.drain_timeout
            ));
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let recovery_ms = drain_started.elapsed().as_secs_f64() * 1e3;
    let post = calm_phase("drain", &svc, &queries[..1.min(queries.len())], None);
    drain.submitted = post.submitted;
    drain.accepted = post.accepted;
    drain.done = post.done;
    drain.shed = post.shed;
    drain.expired = post.expired;
    drain.degraded = post.degraded;
    drain.p99_ms = post.p99_ms;
    drain.violations.extend(post.violations);
    if drain.done != drain.submitted {
        drain.violations.push("drain: post-drain query did not run undegraded to Done".into());
    }
    drain.elapsed_ms = drain_started.elapsed().as_secs_f64() * 1e3;
    svc.shutdown();
    phases.push(drain);

    let (mut shed, mut accepted) = (0usize, 0usize);
    for p in &phases {
        if p.name == "overload" || p.name == "all-faults" {
            shed += p.shed;
            accepted += p.accepted;
        }
    }
    DrillReport {
        seed: cfg.seed,
        phases,
        recovery_ms,
        shed_fraction: shed as f64 / accepted.max(1) as f64,
        p99_overload_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_seeds_are_decorrelated() {
        let a = sub_seed(4242, 1);
        let b = sub_seed(4242, 2);
        let c = sub_seed(4243, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic: same inputs, same stream.
        assert_eq!(a, sub_seed(4242, 1));
    }

    #[test]
    fn drill_queries_are_seeded_and_in_bounds() {
        let q1 = drill_queries(7, 8);
        let q2 = drill_queries(7, 8);
        assert_eq!(q1, q2);
        for ranges in &q1 {
            assert_eq!(ranges.len(), DIMS.len());
            for (k, &(lo, hi)) in ranges.iter().enumerate() {
                assert!(lo <= hi && hi < DIMS[k]);
            }
        }
        assert_ne!(drill_queries(8, 8), q1);
    }

    #[test]
    fn sensor_cube_is_deterministic_per_seed() {
        let plan = drill_sensor_plan(99);
        let (a, va) = sensor_cube(99, &plan);
        let (b, vb) = sensor_cube(99, &plan);
        assert_eq!(va, vb);
        assert!(va.is_empty(), "clean pipeline raised violations: {va:?}");
        let (ca, cb) = (a.coeffs(), b.coeffs());
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let report = DrillReport {
            seed: 1,
            phases: vec![PhaseReport { name: "baseline".into(), ..PhaseReport::default() }],
            recovery_ms: 1.5,
            shed_fraction: 0.25,
            p99_overload_ms: 3.0,
        };
        let json = report.to_json();
        assert!(json.contains("\"experiment\":\"chaos_drill\""));
        assert!(json.contains("\"passed\":true"));
        assert!(json.contains("\"name\":\"baseline\""));
    }
}
