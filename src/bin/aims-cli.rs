//! `aims-cli` — drive the AIMS pipeline from the command line.
//!
//! Subcommands:
//!
//! ```text
//! aims-cli generate  --seconds 10 --activity 0.6 --seed 7 --out session.csv
//! aims-cli ingest    --input session.csv [--strategy adaptive|fixed|modified-fixed|grouped]
//! aims-cli query     --input session.csv --channel 0 --from 1.0 --to 4.0 [--op avg|sum|point]
//! aims-cli serve     [--port 0] [--side 64] [--block 32] [--cache 256] [--queue 64] [--seed 41]
//! aims-cli query     --connect 127.0.0.1:PORT --ranges 0:31,0:31 \
//!                    [--priority interactive|batch] [--deadline-ms N]
//! aims-cli recognize --signs 8 --sentence 12 --seed 3
//! aims-cli metrics   --seconds 2 --seed 7 [--format table|json]
//! aims-cli faults    --seed 41378 --rate 0.3 --kind read|flip|torn|dead \
//!                    [--budget 3] [--format table|json]
//! aims-cli ingest-faults --seed 2003 --dropout 0.1 [--stuck 0.0] [--spike 0.0] \
//!                    [--dup 0.0] [--reorder 0.0] [--dead 0.0] \
//!                    [--policy hold|interpolate] [--seconds 4] [--format table|json]
//! aims-cli trace     [--side 64] [--block 32] [--seed 41] [--queries 4] \
//!                    [--format table|chrome] [--out FILE]
//! aims-cli trace     --connect 127.0.0.1:PORT --ranges 0:31,0:31
//! aims-cli top       --connect 127.0.0.1:PORT [--interval-ms 1000] [--iterations 0] \
//!                    [--format table|json]
//! aims-cli chaos     [--seed 4242] [--format table|json]
//! aims-cli kernels   [--side 256]
//! aims-cli durability [--mode always|periodic:K|none] [--seed 52417] [--blocks 32] \
//!                    [--block-size 16] [--writes 96] [--dir DIR] [--format table|json]
//! aims-cli tiers     [--seed 7153] [--samples 200000] [--segment 4096] [--block 256] \
//!                    [--dir DIR] [--format table|json]
//! ```
//!
//! `generate` simulates a CyberGlove session to CSV; `ingest` runs the
//! acquisition + storage pipeline over a CSV and reports compression and
//! fidelity; `query` serves offline aggregates from blocked wavelet
//! storage; `recognize` runs the online isolation + recognition loop over
//! a synthetic signing stream; `metrics` runs the quickstart pipeline and
//! dumps the telemetry registry (counters, gauges, latency histograms);
//! `faults` runs a fault drill — range queries against a seeded
//! fault-injected store with a bounded retry budget — and reports how
//! many queries recovered exactly vs. degraded with a bound, plus the
//! `storage.retries`/`storage.corrupt`/`storage.degraded` counters;
//! `ingest-faults` is the acquisition-side twin — it replays a glove
//! session through a seeded faulty sensor link into the supervised ingest
//! stage and reports repairs, reordering, health transitions and the
//! `ingest.*` telemetry; `serve` runs the concurrent query service over a
//! demo cube behind the `aims-serve` TCP protocol, and `query --connect`
//! drives a progressive range sum against a running server, printing the
//! refinement trace; `trace` runs a traced drill — locally against a demo
//! service (printing each query's `QueryProfile` and dumping the flight
//! recorder, or exporting Chrome trace-event JSON for `about:tracing`),
//! or remotely via `--connect` (the profile comes back over the wire);
//! `top` polls a running server's METRICS_REQ and renders the telemetry
//! snapshot as a live table (the reply is structured JSON; rendering is
//! client-side), including each live session's degradation tier;
//! `chaos` runs the composed seeded chaos drill (storage faults ×
//! sensor faults × query-flood overload) locally and exits non-zero if
//! any drill invariant is violated; `kernels` prints the wavelet kernel
//! dispatch table and
//! the execution layer's autotuned tile/threshold, then times one serial
//! 2-D transform per filter on this host; `durability` runs a local crash
//! drill — a seeded write workload against a temp-dir (or `--dir`)
//! file-backed store is killed at a seeded crash point, reopened, and the
//! recovered image checked bit-identical to a committed write prefix,
//! with the recovery report and `storage.wal.*` telemetry printed;
//! `tiers` runs the tiered-ingest drill — concurrent ingest, background
//! wavelet compaction and progressive queries over one file-backed
//! [`TieredStore`](aims::tier::TieredStore) — and exits non-zero unless
//! the drained store answers bit-identically to a serial single-store
//! oracle with monotone bounds throughout.

use std::collections::HashMap;
use std::process::exit;

use aims::acquisition::sampling::Strategy;
use aims::sensors::asl::AslVocabulary;
use aims::sensors::glove::CyberGloveRig;
use aims::sensors::io::{from_csv, to_csv};
use aims::sensors::noise::NoiseSource;
use aims::stream::isolation::{evaluate_isolation, IsolationConfig};
use aims::{AimsConfig, AimsSystem};

fn usage() -> ! {
    eprintln!(
        "usage: aims-cli \
<generate|ingest|query|serve|recognize|metrics|faults|ingest-faults|trace|top|chaos\
|kernels|durability|tiers> [--key value]...\n\
         \n\
         generate  --seconds <f> --activity <0..1> --seed <n> --out <file>\n\
         ingest    --input <file> [--strategy adaptive|fixed|modified-fixed|grouped]\n\
         query     --input <file> --channel <n> --from <s> --to <s> [--op avg|sum|point]\n\
         query     --connect <host:port> --ranges <lo:hi,lo:hi> \
[--priority interactive|batch] [--deadline-ms <n>]\n\
         serve     [--port <n>] [--side <n>] [--block <n>] [--cache <n>] [--queue <n>] \
[--seed <n>]\n\
         recognize --signs <n> --sentence <n> --seed <n>\n\
         metrics   --seconds <f> --seed <n> [--format table|json]\n\
         faults    --seed <n> --rate <0..1> --kind read|flip|torn|dead \
[--budget <n>] [--format table|json]\n\
         ingest-faults --seed <n> [--dropout <0..1>] [--stuck <0..1>] [--spike <0..1>]\n\
                   [--dup <0..1>] [--reorder <0..1>] [--dead <0..1>]\n\
                   [--policy hold|interpolate] [--seconds <f>] [--format table|json]\n\
         trace     [--side <n>] [--block <n>] [--seed <n>] [--queries <n>]\n\
                   [--format table|chrome] [--out <file>]\n\
         trace     --connect <host:port> --ranges <lo:hi,lo:hi>\n\
         top       --connect <host:port> [--interval-ms <n>] [--iterations <n>] \
[--format table|json]\n\
         chaos     [--seed <n>] [--format table|json]\n\
         kernels   [--side <n>]\n\
         durability [--mode always|periodic:K|none] [--seed <n>] [--blocks <n>]\n\
                   [--block-size <n>] [--writes <n>] [--dir <path>] [--format table|json]\n\
         tiers     [--seed <n>] [--samples <n>] [--segment <n>] [--block <n>]\n\
                   [--dir <path>] [--format table|json]"
    );
    exit(2);
}

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            eprintln!("unexpected argument '{key}'");
            usage();
        };
        let Some(value) = it.next() else {
            eprintln!("flag --{name} needs a value");
            usage();
        };
        flags.insert(name.to_string(), value.clone());
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{name}: cannot parse '{v}'");
            usage();
        }),
    }
}

fn required(flags: &HashMap<String, String>, name: &str) -> String {
    flags.get(name).cloned().unwrap_or_else(|| {
        eprintln!("missing required flag --{name}");
        usage();
    })
}

fn cmd_generate(flags: &HashMap<String, String>) {
    let seconds: f64 = flag(flags, "seconds", 10.0);
    let activity: f64 = flag(flags, "activity", 0.6);
    let seed: u64 = flag(flags, "seed", 7);
    let out = required(flags, "out");

    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(seed);
    let session = rig.record_session(seconds, activity, &mut noise);
    std::fs::write(&out, to_csv(&session)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {out}: {} frames x {} channels ({:.1}s at {:.0} Hz)",
        session.len(),
        session.channels(),
        session.duration(),
        session.spec().sample_rate
    );
}

fn load_stream(flags: &HashMap<String, String>) -> aims::sensors::types::MultiStream {
    let input = required(flags, "input");
    let text = std::fs::read_to_string(&input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1);
    });
    from_csv(&text).unwrap_or_else(|e| {
        eprintln!("{input}: {e}");
        exit(1);
    })
}

fn parse_strategy(name: &str) -> Strategy {
    match name {
        "adaptive" => Strategy::Adaptive,
        "fixed" => Strategy::Fixed,
        "modified-fixed" => Strategy::ModifiedFixed,
        "grouped" => Strategy::Grouped,
        _ => {
            eprintln!("unknown strategy '{name}'");
            usage();
        }
    }
}

fn cmd_ingest(flags: &HashMap<String, String>) {
    let session = load_stream(flags);
    let strategy = parse_strategy(&flag::<String>(flags, "strategy", "adaptive".into()));
    let config = AimsConfig { sampling: strategy, ..AimsConfig::default() };
    let mut system = AimsSystem::new(config);
    let report = system.ingest(&session);
    let raw = session.device_size_bytes();
    println!(
        "ingested {} frames x {} channels with {} sampling",
        report.frames,
        report.channels,
        strategy.name()
    );
    println!(
        "  acquired bytes : {} ({:.1}x vs {} raw device bytes)",
        report.sampled_bytes,
        raw as f64 / report.sampled_bytes as f64,
        raw
    );
    println!("  reconstruction : {:.2}% relative RMSE", report.sampling_rmse * 100.0);
}

/// The seeded square demo cube `serve` and `trace` drill against:
/// xorshift-filled small integers, wavelet-transformed with Db4.
fn demo_cube(side: usize, seed: u64) -> aims::propolyne::WaveletCube {
    use aims::dsp::filters::FilterKind;
    use aims::propolyne::DataCube;

    let mut cube = DataCube::zeros(&[side, side]);
    let mut state = seed.max(1);
    for v in cube.values_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state % 9) as f64;
    }
    cube.transform(&FilterKind::Db4.filter())
}

/// Parses a `--ranges lo:hi,lo:hi` flag value.
fn parse_ranges(ranges_text: &str) -> Vec<(usize, usize)> {
    ranges_text
        .split(',')
        .map(|pair| {
            let Some((lo, hi)) = pair.split_once(':') else {
                eprintln!("--ranges: expected lo:hi, got '{pair}'");
                usage();
            };
            match (lo.parse(), hi.parse()) {
                (Ok(lo), Ok(hi)) => (lo, hi),
                _ => {
                    eprintln!("--ranges: cannot parse '{pair}'");
                    usage();
                }
            }
        })
        .collect()
}

/// Spins up the concurrent query service over the workspace's demo cube
/// and serves the `aims-serve` wire protocol until a client SHUTDOWN.
fn cmd_serve(flags: &HashMap<String, String>) {
    use aims::service::{QueryService, Server, ServiceConfig};
    use std::io::Write as _;
    use std::sync::Arc;

    let port: u16 = flag(flags, "port", 0);
    let side: usize = flag(flags, "side", 64);
    let block: usize = flag(flags, "block", 32);
    let cache: usize = flag(flags, "cache", 256);
    let queue: usize = flag(flags, "queue", 64);
    let seed: u64 = flag(flags, "seed", 41);

    let cube = demo_cube(side, seed);
    let config =
        ServiceConfig { queue_capacity: queue, cache_blocks: cache, ..ServiceConfig::default() };
    let service = Arc::new(QueryService::new(cube, block, config));
    let server =
        Server::spawn(Arc::clone(&service), &format!("127.0.0.1:{port}")).unwrap_or_else(|e| {
            eprintln!("serve: bind failed: {e}");
            exit(1);
        });
    println!("aims-serve listening on 127.0.0.1:{}", server.port());
    std::io::stdout().flush().ok();
    server.join();
    service.shutdown();
    println!("aims-serve: clean shutdown");
}

/// Drives one progressive range sum against a running server and prints
/// the refinement trace.
fn cmd_query_remote(flags: &HashMap<String, String>, connect: &str) {
    use aims::service::{ProgressKind, QuerySpec, TcpClient, Tier};

    let ranges_text = required(flags, "ranges");
    let ranges = parse_ranges(&ranges_text);
    let priority: String = flag(flags, "priority", "interactive".into());
    let deadline_ms: u64 = flag(flags, "deadline-ms", 0);
    let mut spec = match priority.as_str() {
        "interactive" => QuerySpec::interactive(ranges),
        "batch" => QuerySpec::batch(ranges),
        _ => {
            eprintln!("unknown priority '{priority}' (interactive|batch)");
            usage();
        }
    };
    if deadline_ms > 0 {
        spec = spec.with_deadline(std::time::Duration::from_millis(deadline_ms));
    }

    let mut client = TcpClient::connect(connect).unwrap_or_else(|e| {
        eprintln!("query: cannot connect to {connect}: {e}");
        exit(1);
    });
    let out = client.run_query(1, &spec).unwrap_or_else(|e| {
        eprintln!("query: {e}");
        exit(1);
    });
    for r in &out.trace {
        let tier =
            if r.tier == Tier::Normal { String::new() } else { format!(" [{}]", r.tier.label()) };
        println!(
            "  round {:>3}: {:>6}/{:<6} coefficients, estimate {:.4} (bound {:.4}){tier}",
            r.round, r.coefficients_used, r.total_coefficients, r.estimate, r.error_bound
        );
    }
    match (out.kind, out.last) {
        (ProgressKind::Done, Some(r)) => {
            println!("done: {} = {:.4} (exact)", ranges_text, r.estimate);
        }
        (ProgressKind::DeadlineExpired, Some(r)) => {
            println!(
                "deadline expired: {} = {:.4} +/- {:.4}",
                ranges_text, r.estimate, r.error_bound
            );
        }
        (ProgressKind::Shed, Some(r)) => {
            println!(
                "shed under load: {} = {:.4} +/- {:.4} (best-so-far)",
                ranges_text, r.estimate, r.error_bound
            );
        }
        (kind, _) => {
            eprintln!("query ended without an answer: {kind:?}");
            exit(1);
        }
    }
}

fn cmd_query(flags: &HashMap<String, String>) {
    if let Some(connect) = flags.get("connect") {
        let connect = connect.clone();
        return cmd_query_remote(flags, &connect);
    }
    let session = load_stream(flags);
    let channel: usize = flag(flags, "channel", 0);
    let from: f64 = flag(flags, "from", 0.0);
    let to: f64 = flag(flags, "to", session.duration());
    let op: String = flag(flags, "op", "avg".into());

    let mut system = AimsSystem::new(AimsConfig::default());
    system.ingest(&session);
    let result = match op.as_str() {
        "avg" => system.channel_average(channel, from, to),
        "sum" => system.channel_range_sum(channel, from, to),
        "point" => system.channel_value(channel, from),
        _ => {
            eprintln!("unknown op '{op}' (avg|sum|point)");
            usage();
        }
    };
    match result {
        Some(v) => {
            let name = &session.spec().channel_names[channel.min(session.channels() - 1)];
            println!(
                "{op}({name}, {from}s..{to}s) = {v:.4}  [{} block reads]",
                system.total_block_reads()
            );
        }
        None => {
            eprintln!("query out of range (channel {channel}, {from}s..{to}s)");
            exit(1);
        }
    }
}

fn cmd_recognize(flags: &HashMap<String, String>) {
    let signs: usize = flag(flags, "signs", 8);
    let sentence: usize = flag(flags, "sentence", 12);
    let seed: u64 = flag(flags, "seed", 3);

    let vocab = AslVocabulary::synthetic(signs, seed, CyberGloveRig::default());
    let mut noise = NoiseSource::seeded(seed.wrapping_add(1));
    let templates: Vec<(usize, _)> = (0..vocab.len())
        .flat_map(|l| (0..2).map(move |_| l))
        .map(|l| (l, vocab.instance(l, &mut noise).stream))
        .collect();
    let mut recognizer =
        AimsSystem::online_recognizer(&templates, vocab.rig.spec(), IsolationConfig::default());

    let labels: Vec<usize> = (0..sentence).map(|i| (i * 5 + 2) % vocab.len()).collect();
    let (stream, truth) = vocab.sentence(&labels, &mut noise);
    println!("stream: {} frames, {} signs performed", stream.len(), truth.len());
    let detections = recognizer.process_stream(&stream);
    for d in &detections {
        println!(
            "  {:>6} frames {:>5}..{:<5} (evidence {:.2})",
            vocab.signs[d.label].name, d.start, d.end, d.peak_evidence
        );
    }
    let truth_tuples: Vec<(usize, usize, usize)> =
        truth.iter().map(|t| (t.label, t.start, t.end)).collect();
    let report = evaluate_isolation(&detections, &truth_tuples, 0.3);
    println!(
        "F1 {:.2}, label accuracy {:.2} over {} detections",
        report.f1,
        report.label_accuracy,
        detections.len()
    );
}

/// Runs the quickstart pipeline end to end (capture → ingest → offline and
/// online queries), then dumps everything the components recorded into the
/// global telemetry registry.
fn cmd_metrics(flags: &HashMap<String, String>) {
    use aims::dsp::filters::FilterKind;
    use aims::dsp::poly::Polynomial;
    use aims::propolyne::cube::AttributeSpace;
    use aims::propolyne::query::RangeSumQuery;

    let seconds: f64 = flag(flags, "seconds", 2.0);
    let seed: u64 = flag(flags, "seed", 7);
    let format: String = flag(flags, "format", "table".into());
    if format != "table" && format != "json" {
        eprintln!("unknown format '{format}' (table|json)");
        usage();
    }
    if seconds <= 0.0 || seconds.is_nan() {
        eprintln!("--seconds must be positive, got {seconds}");
        exit(2);
    }

    // Acquisition + storage: capture a session and serve point/range
    // queries from blocked wavelet storage through the buffer pools.
    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(seed);
    let session = rig.record_session(seconds, 0.6, &mut noise);
    let mut system = AimsSystem::new(AimsConfig::default());
    system.ingest(&session);
    for c in 0..session.channels().min(4) {
        system.channel_value(c, seconds / 2.0);
        system.channel_average(c, 0.0, seconds);
    }

    // Offline analysis: a small ProPolyne cube over two channels, one
    // exact COUNT and one progressive SUM.
    let space = AttributeSpace::new(vec![(-120.0, 120.0); 2], vec![32; 2]);
    let tuples: Vec<Vec<f64>> =
        (0..session.len()).map(|t| vec![session.value(t, 0), session.value(t, 1)]).collect();
    let engine = AimsSystem::offline_engine(&space, tuples, &FilterKind::Db4.filter());
    engine.evaluate(&RangeSumQuery::count(vec![(0, 31), (0, 31)]));
    engine.progressive(&RangeSumQuery::sum_poly(
        vec![(0, 31), (0, 31)],
        0,
        Polynomial::monomial(1),
    ));

    let snap = aims::telemetry::global().snapshot();
    if format == "json" {
        print!("{}", snap.to_json_lines());
    } else {
        print!("{}", snap.render_table());
    }
}

/// Runs a reproducible fault drill: a blocked wavelet store on a seeded
/// `FaultyDevice`, queried with a bounded retry budget; reports per-query
/// recovery/degradation and the storage fault telemetry.
fn cmd_faults(flags: &HashMap<String, String>) {
    use aims::storage::buffer::BufferPool;
    use aims::storage::device::{BlockDevice, RetryPolicy};
    use aims::storage::faults::{FaultKind, FaultPlan, FaultyDevice};
    use aims::storage::store::{AllocKind, WaveletStore};

    let seed: u64 = flag(flags, "seed", 41378);
    let rate: f64 = flag(flags, "rate", 0.3);
    let budget: usize = flag(flags, "budget", 3);
    let kind_name: String = flag(flags, "kind", "read".into());
    let format: String = flag(flags, "format", "table".into());
    if format != "table" && format != "json" {
        eprintln!("unknown format '{format}' (table|json)");
        usage();
    }
    if !(0.0..=1.0).contains(&rate) {
        eprintln!("--rate must be in [0, 1], got {rate}");
        exit(2);
    }
    let kind = match kind_name.as_str() {
        "read" => FaultKind::ReadError,
        "flip" => FaultKind::BitFlip,
        "torn" => FaultKind::TornWrite,
        "dead" => FaultKind::DeadBlock,
        _ => {
            eprintln!("unknown fault kind '{kind_name}' (read|flip|torn|dead)");
            usage();
        }
    };

    let n = 1024usize;
    let block = 16usize;
    let signal: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 23) as f64 - 11.0).collect();
    let exact = WaveletStore::from_signal(&signal, block, AllocKind::TreeTiling);
    let store = WaveletStore::from_signal_on(&signal, block, AllocKind::TreeTiling, |bs, nb| {
        FaultyDevice::with_plan(bs, nb, FaultPlan::uniform(seed, kind, rate))
    });
    let policy = RetryPolicy::with_retries(budget);

    let queries: Vec<(usize, usize)> =
        (0..32).map(|k| ((k * 97) % 512, 512 + (k * 31) % 512)).collect();
    let mut pool = BufferPool::new(128);
    let mut exact_pool = BufferPool::new(128);
    let mut recovered = 0usize;
    let mut degraded = 0usize;
    let mut worst_bound = 0.0f64;
    let mut rows = Vec::new();
    for &(a, b) in &queries {
        let truth = exact.range_sum(a, b, &mut exact_pool);
        let got = store.range_sum_outcome(a, b, &mut pool, &policy);
        if got.degraded() {
            degraded += 1;
            worst_bound = worst_bound.max(got.error_bound);
        } else {
            recovered += 1;
            assert_eq!(got.value.to_bits(), truth.to_bits(), "recovered query diverged");
        }
        rows.push((a, b, got));
    }

    let device = store.device();
    let dead = (0..device.num_blocks()).filter(|&b| device.is_dead(b)).count();
    let torn = device.torn_blocks().len();
    let snap = aims::telemetry::global().snapshot();
    if format == "json" {
        let body: Vec<String> = rows
            .iter()
            .map(|(a, b, o)| {
                format!(
                    "{{\"range\":[{a},{b}],\"value\":{},\"error_bound\":{},\
                     \"lost_blocks\":{}}}",
                    o.value,
                    o.error_bound,
                    o.lost_blocks.len()
                )
            })
            .collect();
        println!(
            "{{\"seed\":{seed},\"kind\":\"{kind_name}\",\"rate\":{rate},\"budget\":{budget},\
             \"recovered\":{recovered},\"degraded\":{degraded},\"dead_blocks\":{dead},\
             \"torn_blocks\":{torn},\"queries\":[{}]}}",
            body.join(",")
        );
    } else {
        println!(
            "fault drill: kind={kind_name} rate={rate} budget={budget} seed={seed} \
             (n={n}, B={block})"
        );
        println!("  recovered exactly : {recovered}/{}", queries.len());
        println!(
            "  degraded w/ bound : {degraded}/{} (worst bound {worst_bound:.3})",
            queries.len()
        );
        println!("  dead blocks       : {dead}, torn blocks: {torn}");
        println!("\n-- storage telemetry --");
        for name in [
            "storage.retries",
            "storage.corrupt",
            "storage.degraded",
            "storage.fault.read_errors",
            "storage.fault.bit_flips",
            "storage.fault.torn_writes",
            "storage.fault.dead_reads",
        ] {
            println!("  {name:<28} {}", snap.counter(name));
        }
    }
}

/// Runs a reproducible *sensor* fault drill: a clean glove session is
/// replayed through a seeded faulty wire into the supervised ingest stage,
/// which reorders, deduplicates, repairs and health-tracks it; reports the
/// supervisor's counters, health transitions and the `ingest.*` telemetry.
/// With every rate at zero the repaired stream is asserted bit-identical
/// to the clean session (the supervised path costs nothing on good input).
fn cmd_ingest_faults(flags: &HashMap<String, String>) {
    use aims::acquisition::ingest::{IngestConfig, RepairPolicy, SupervisedIngest};
    use aims::acquisition::recorder::RecorderConfig;
    use aims::sensors::faulty::{FaultySensorRig, SensorFaultPlan};
    use aims::sensors::types::SampleQuality;

    let seed: u64 = flag(flags, "seed", 2003);
    let seconds: f64 = flag(flags, "seconds", 4.0);
    let dropout: f64 = flag(flags, "dropout", 0.1);
    let stuck: f64 = flag(flags, "stuck", 0.0);
    let spike: f64 = flag(flags, "spike", 0.0);
    let dup: f64 = flag(flags, "dup", 0.0);
    let reorder: f64 = flag(flags, "reorder", 0.0);
    let dead: f64 = flag(flags, "dead", 0.0);
    let policy_name: String = flag(flags, "policy", "interpolate".into());
    let format: String = flag(flags, "format", "table".into());
    if format != "table" && format != "json" {
        eprintln!("unknown format '{format}' (table|json)");
        usage();
    }
    for (name, rate) in [
        ("dropout", dropout),
        ("stuck", stuck),
        ("spike", spike),
        ("dup", dup),
        ("reorder", reorder),
        ("dead", dead),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            eprintln!("--{name} must be in [0, 1], got {rate}");
            exit(2);
        }
    }
    if seconds <= 0.0 || seconds.is_nan() {
        eprintln!("--seconds must be positive, got {seconds}");
        exit(2);
    }
    let policy = match policy_name.as_str() {
        "hold" => RepairPolicy::Hold,
        "interpolate" => RepairPolicy::Interpolate,
        _ => {
            eprintln!("unknown repair policy '{policy_name}' (hold|interpolate)");
            usage();
        }
    };

    let rig = CyberGloveRig::default();
    let mut noise = NoiseSource::seeded(seed);
    let clean = rig.record_session(seconds, 0.6, &mut noise);

    let plan = SensorFaultPlan {
        dropout_rate: dropout,
        stuck_rate: stuck,
        spike_rate: spike,
        duplicate_rate: dup,
        reorder_rate: reorder,
        dead_channel_fraction: dead,
        ..SensorFaultPlan::none(seed)
    };
    let faulty = FaultySensorRig::new(plan.clone());
    let wire = faulty.transmit(&clean);

    // A buffer the recorder cannot overrun, so the drill's numbers reflect
    // the injected wire faults alone, not scheduling luck.
    let config = IngestConfig {
        repair: policy,
        recorder: RecorderConfig { buffer_frames: 1 << 16, batch_size: 64, store_latency_us: 0 },
        ..IngestConfig::default()
    };
    let out = SupervisedIngest::new(config).ingest(clean.spec(), &wire);

    if plan.is_none() {
        assert_eq!(out.stream.len(), clean.len(), "zero-fault ingest changed the frame count");
        for t in 0..clean.len() {
            for c in 0..clean.channels() {
                assert_eq!(
                    out.stream.value(t, c).to_bits(),
                    clean.value(t, c).to_bits(),
                    "zero-fault ingest must be bit-identical (frame {t} ch {c})"
                );
            }
        }
    }

    // Repair fidelity over frames both streams share (degrade may decimate).
    let mut err = 0.0f64;
    let mut norm = 0.0f64;
    if out.degrade_factor == 1 && out.stream.len() == clean.len() {
        for t in 0..clean.len() {
            for c in 0..clean.channels() {
                let d = out.stream.value(t, c) - clean.value(t, c);
                err += d * d;
                norm += clean.value(t, c) * clean.value(t, c);
            }
        }
    }
    let rmse = if norm > 0.0 { (err / norm).sqrt() } else { 0.0 };

    let total = out.quality.len() * out.quality.channels();
    let counts: Vec<(SampleQuality, usize)> = [
        SampleQuality::Clean,
        SampleQuality::Repaired,
        SampleQuality::Suspect,
        SampleQuality::Dead,
    ]
    .into_iter()
    .map(|q| (q, out.quality.count(q)))
    .collect();
    let dead_channels = out.dead_channels();
    let snap = aims::telemetry::global().snapshot();

    if format == "json" {
        let quality: Vec<String> =
            counts.iter().map(|(q, n)| format!("\"{}\":{n}", q.name())).collect();
        let events: Vec<String> = out
            .health_events
            .iter()
            .map(|e| {
                format!(
                    "{{\"frame\":{},\"channel\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                    e.frame,
                    e.channel,
                    e.from.name(),
                    e.to.name()
                )
            })
            .collect();
        println!(
            "{{\"seed\":{seed},\"policy\":\"{policy_name}\",\"dropout\":{dropout},\
             \"stuck\":{stuck},\"spike\":{spike},\"dup\":{dup},\"reorder\":{reorder},\
             \"dead\":{dead},\"frames\":{},\"channels\":{},\"degrade_factor\":{},\
             \"repaired_samples\":{},\"reordered_frames\":{},\"duplicate_frames\":{},\
             \"dropped_frames\":{},\"relative_rmse\":{rmse},\"quality\":{{{}}},\
             \"dead_channels\":{:?},\"health_events\":[{}]}}",
            out.stream.len(),
            out.stream.channels(),
            out.degrade_factor,
            out.stats.repaired_samples,
            out.stats.reordered_frames,
            out.stats.duplicate_frames,
            out.stats.dropped_frames,
            quality.join(","),
            dead_channels,
            events.join(",")
        );
    } else {
        println!(
            "ingest drill: seed={seed} policy={policy_name} dropout={dropout} stuck={stuck} \
             spike={spike} dup={dup} reorder={reorder} dead={dead}"
        );
        println!(
            "  wire → stored     : {} wire frames → {} frames x {} channels (degrade x{})",
            wire.len(),
            out.stream.len(),
            out.stream.channels(),
            out.degrade_factor
        );
        println!(
            "  supervisor        : {} repaired samples, {} reordered, {} duplicates, \
             {} dropped frames",
            out.stats.repaired_samples,
            out.stats.reordered_frames,
            out.stats.duplicate_frames,
            out.stats.dropped_frames
        );
        let quality: Vec<String> = counts
            .iter()
            .map(|(q, n)| format!("{} {:.1}%", q.name(), 100.0 * *n as f64 / total.max(1) as f64))
            .collect();
        println!("  sample quality    : {}", quality.join(", "));
        if plan.is_none() {
            println!("  fidelity          : bit-identical to the clean session (verified)");
        } else if out.degrade_factor == 1 {
            println!("  fidelity          : {:.2}% relative RMSE vs clean session", rmse * 100.0);
        }
        println!(
            "  sensor health     : {} transitions, dead channels {:?}",
            out.health_events.len(),
            dead_channels
        );
        for e in out.health_events.iter().take(12) {
            println!(
                "    frame {:>5} ch {:>2}: {} -> {}",
                e.frame,
                e.channel,
                e.from.name(),
                e.to.name()
            );
        }
        if out.health_events.len() > 12 {
            println!("    ... {} more", out.health_events.len() - 12);
        }
        println!("\n-- ingest telemetry --");
        for name in [
            "ingest.repaired",
            "ingest.reordered",
            "ingest.duplicates",
            "ingest.dropped",
            "ingest.sensor.dead",
        ] {
            println!("  {name:<28} {}", snap.counter(name));
        }
    }
}

/// Prints one query's cost attribution as an aligned table.
fn print_profile(profile: &aims::service::QueryProfile) {
    println!("  trace id          : {:#018x}", profile.trace_id);
    println!("  queue wait        : {:.3} ms", profile.queue_wait_ns as f64 / 1e6);
    println!("  latency           : {:.3} ms", profile.latency_ms());
    println!("  rounds            : {}", profile.rounds);
    println!(
        "  blocks            : {} read, {} shared, {} degraded",
        profile.blocks_read, profile.blocks_shared, profile.degraded_blocks
    );
    println!(
        "  cache             : {} hits / {} misses ({:.0}% hit ratio)",
        profile.cache_hits,
        profile.cache_misses,
        profile.cache_hit_ratio() * 100.0
    );
    println!("  retries           : {}", profile.retries);
    for p in &profile.trajectory {
        println!(
            "    round {:>3}: {:>6} coefficients, bound {:.4}",
            p.round, p.coefficients_used, p.error_bound
        );
    }
}

/// Runs a traced drill and dumps the flight recorder.
///
/// Locally (default): a demo service answers a few overlapping traced
/// range sums; each query's `QueryProfile` is printed, then the flight
/// recorder's events — as a table, or as Chrome trace-event JSON
/// (`--format chrome`, loadable in `about:tracing`/Perfetto) to stdout
/// or `--out FILE`. With `--connect`, one traced query runs against a
/// live server instead and its wire-returned profile is printed (the
/// recorder lives server-side).
fn cmd_trace(flags: &HashMap<String, String>) {
    use aims::service::{Outcome, ProgressKind, QueryService, QuerySpec, ServiceConfig, TcpClient};
    use aims::telemetry::global_recorder;

    if let Some(connect) = flags.get("connect") {
        let ranges = parse_ranges(&required(flags, "ranges"));
        let mut client = TcpClient::connect(connect.as_str()).unwrap_or_else(|e| {
            eprintln!("trace: cannot connect to {connect}: {e}");
            exit(1);
        });
        let out =
            client.run_query(1, &QuerySpec::interactive(ranges).traced()).unwrap_or_else(|e| {
                eprintln!("trace: {e}");
                exit(1);
            });
        match (out.kind, out.last) {
            (ProgressKind::Done, Some(r)) => println!("done: estimate {:.4} (exact)", r.estimate),
            (ProgressKind::DeadlineExpired, Some(r)) => {
                println!("deadline expired: estimate {:.4} +/- {:.4}", r.estimate, r.error_bound);
            }
            (ProgressKind::Shed, Some(r)) => {
                println!(
                    "shed under load: estimate {:.4} +/- {:.4} (best-so-far)",
                    r.estimate, r.error_bound
                );
            }
            (kind, _) => {
                eprintln!("trace: query ended without an answer: {kind:?}");
                exit(1);
            }
        }
        match out.profile {
            Some(p) => print_profile(&p),
            None => eprintln!("trace: server returned no profile (pre-tracing server?)"),
        }
        return;
    }

    let side: usize = flag(flags, "side", 64);
    let block: usize = flag(flags, "block", 32);
    let seed: u64 = flag(flags, "seed", 41);
    let queries: usize = flag(flags, "queries", 4);
    let format: String = flag(flags, "format", "table".into());
    let out_path = flags.get("out").cloned();
    if format != "table" && format != "chrome" {
        eprintln!("unknown format '{format}' (table|chrome)");
        usage();
    }

    let service = QueryService::new(demo_cube(side, seed), block, ServiceConfig::default());
    for k in 0..queries {
        let lo = (k * 7) % (side / 2);
        let hi = (lo + side / 2).min(side - 1);
        let spec = QuerySpec::interactive(vec![(lo, hi), (0, side - 1)]).traced();
        let handle = service.submit(spec).unwrap_or_else(|e| {
            eprintln!("trace: submit failed: {e}");
            exit(1);
        });
        let (_, outcome, profile) = handle.collect_profiled();
        match outcome {
            Outcome::Done(r) => println!("query {k} [{lo}:{hi}] = {:.4}", r.estimate),
            other => {
                eprintln!("trace: query {k} did not complete: {other:?}");
                exit(1);
            }
        }
        match profile {
            Some(p) => print_profile(&p),
            None => {
                eprintln!("trace: traced query {k} yielded no profile");
                exit(1);
            }
        }
    }
    service.shutdown();

    let recorder = global_recorder();
    if format == "chrome" {
        let json = recorder.export_chrome_trace();
        match out_path {
            Some(path) => {
                std::fs::write(&path, &json).unwrap_or_else(|e| {
                    eprintln!("trace: cannot write {path}: {e}");
                    exit(1);
                });
                println!(
                    "wrote {path}: {} events (open in about:tracing or Perfetto)",
                    recorder.events().len()
                );
            }
            None => println!("{json}"),
        }
    } else {
        use aims::telemetry::AttrValue;
        let fmt_attr = |v: &AttrValue| match *v {
            AttrValue::U64(x) => x.to_string(),
            AttrValue::I64(x) => x.to_string(),
            AttrValue::F64(x) => format!("{x:.4}"),
            AttrValue::Str(s) => s.to_string(),
        };
        let events = recorder.events();
        println!("\n-- flight recorder ({} events) --", events.len());
        for e in &events {
            let attrs: Vec<String> =
                e.attrs().iter().map(|(k, v)| format!("{k}={}", fmt_attr(v))).collect();
            println!(
                "  [{}] {:>10.3} ms  {:<16} {}",
                e.trace_id,
                e.ts_ns as f64 / 1e6,
                e.name,
                attrs.join(" ")
            );
        }
    }
}

/// Renders the `"kind":"session"` rows the server interleaves into its
/// METRICS_REPLY: one line per live (queued or active) session.
fn print_session_rows(json_lines: &str) {
    use aims::telemetry::json;

    let sessions: Vec<json::JsonValue> = json_lines
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| json::parse(l).ok())
        .filter(|v| v.str("kind") == Some("session"))
        .collect();
    if sessions.is_empty() {
        println!("no live sessions\n");
        return;
    }
    println!(
        "{:>6} {:<7} {:<12} {:<8} {:<7} {:>6} {:>10} {:>12} {:>9} {:>8}",
        "id",
        "state",
        "priority",
        "tier",
        "traced",
        "rounds",
        "used/total",
        "bound",
        "wait ms",
        "age ms"
    );
    for s in &sessions {
        let num = |k: &str| s.num(k).unwrap_or(0.0);
        let bound = match s.get("bound").and_then(json::JsonValue::as_f64) {
            Some(b) => format!("{b:.4}"),
            None => "inf".to_string(),
        };
        println!(
            "{:>6} {:<7} {:<12} {:<8} {:<7} {:>6} {:>10} {:>12} {:>9.3} {:>8}",
            num("id") as u64,
            s.str("state").unwrap_or("?"),
            s.str("priority").unwrap_or("?"),
            s.str("tier").unwrap_or("?"),
            match s.get("traced") {
                Some(json::JsonValue::Bool(true)) => "yes",
                Some(json::JsonValue::Bool(false)) => "no",
                _ => "?",
            },
            num("rounds") as u64,
            format!("{}/{}", num("used") as u64, num("total") as u64),
            bound,
            num("queue_wait_ns") / 1e6,
            num("age_ms") as u64,
        );
    }
    println!();
}

/// Polls a running server's METRICS_REQ and renders the telemetry
/// snapshot — a live `top`-style view. The wire carries structured JSON
/// lines (metric and session rows); the tables are rendered client-side.
/// One compact line summarizing the tiered ingest engine, shown by `top`
/// when the server's snapshot carries `tier.*` counters (servers without
/// a tiered store print nothing).
fn print_tier_row(snap: &aims::telemetry::Snapshot) {
    let opened = snap.counter("tier.segments.open");
    let sealed = snap.counter("tier.segments.sealed");
    let compacted = snap.counter("tier.segments.compacted");
    if opened + sealed + compacted == 0 {
        return;
    }
    let pending = snap.gauge("tier.segments.raw_pending").unwrap_or(0.0);
    let runs = snap.counter("tier.compaction.runs");
    let ms = snap.counter("tier.compaction.ns") as f64 / 1e6;
    println!(
        "tiers: {opened} opened / {sealed} sealed / {compacted} compacted \
         ({pending:.0} raw pending), {runs} compaction runs ({ms:.1} ms), \
         {} hot rows / {} merged queries\n",
        snap.counter("tier.query.hot_rows"),
        snap.counter("tier.query.merged"),
    );
}

fn cmd_top(flags: &HashMap<String, String>) {
    use aims::service::TcpClient;
    use aims::telemetry::Snapshot;

    let connect = required(flags, "connect");
    let interval_ms: u64 = flag(flags, "interval-ms", 1000);
    let iterations: usize = flag(flags, "iterations", 0);
    let format: String = flag(flags, "format", "table".into());
    if format != "table" && format != "json" {
        eprintln!("unknown format '{format}' (table|json)");
        usage();
    }

    let mut client = TcpClient::connect(connect.as_str()).unwrap_or_else(|e| {
        eprintln!("top: cannot connect to {connect}: {e}");
        exit(1);
    });
    let mut tick = 0usize;
    loop {
        let json = client.metrics().unwrap_or_else(|e| {
            eprintln!("top: {e}");
            exit(1);
        });
        tick += 1;
        if format == "json" {
            print!("{json}");
        } else {
            let snap = Snapshot::from_json_lines(&json).unwrap_or_else(|e| {
                eprintln!("top: server sent unparseable metrics: {e:?}");
                exit(1);
            });
            println!("-- {connect} tick {tick} --");
            print_session_rows(&json);
            print_tier_row(&snap);
            print!("{}", snap.render_table());
        }
        if iterations > 0 && tick >= iterations {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `aims-cli kernels` — report the kernel dispatch table and the
/// autotuner's resolved tile/threshold, then time one serial 2-D
/// transform per filter so a host's actual kernel speed is one command
/// away (the numbers are the single-core side of experiment E29).
fn cmd_kernels(flags: &HashMap<String, String>) {
    use aims::dsp::dwt::{dwt_standard_md_with, idwt_standard_md_with};
    use aims::dsp::filters::FilterKind;

    let side: usize = flag(flags, "side", 256);
    if !side.is_power_of_two() || side < 2 {
        eprintln!("--side must be a power of two >= 2, got {side}");
        exit(2);
    }

    let tune = aims::exec::tuning();
    println!("autotuner ({}):", if tune.from_env { "AIMS_TILE override" } else { "calibrated" });
    println!("  strided tile width:     {}", tune.tile);
    println!("  serial-below threshold: {} elements", tune.par_threshold);

    println!("\nkernel dispatch:");
    for kind in FilterKind::ALL {
        let f = kind.filter();
        println!("  {:6} -> {}", f.name(), aims::dsp::kernel::kernel_name(&f));
    }

    let serial = aims::exec::ThreadPool::new(1);
    let dims = [side, side];
    let data: Vec<f64> =
        (0..side * side).map(|i| ((i % 613) as f64 * 0.25).sin() + i as f64 * 1e-6).collect();
    println!("\nserial 2-D DWT {side}x{side} (forward + inverse):");
    let before = aims::telemetry::global().snapshot();
    for kind in FilterKind::ALL {
        let f = kind.filter();
        let start = std::time::Instant::now();
        let fwd = dwt_standard_md_with(&serial, &data, &dims, &f);
        let inv = idwt_standard_md_with(&serial, &fwd, &dims, &f);
        let elapsed = start.elapsed();
        let worst = inv.iter().zip(&data).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max);
        println!("  {:6} {:>9.1?}  roundtrip max err {worst:.2e}", f.name(), elapsed);
    }
    let delta = aims::telemetry::global().snapshot().delta_since(&before);
    println!(
        "\nscratch reuse (dsp.kernel.scratch_reuse): {}",
        delta.counter("dsp.kernel.scratch_reuse")
    );
}

/// Runs the composed chaos drill locally: the six-phase schedule
/// (baseline → overload → storage faults → sensor faults → all three →
/// drain) with every injector derived from one master seed
/// (`--seed`, or `AIMS_CHAOS_SEED`). Prints the per-phase table and
/// exits non-zero if any drill invariant was violated — no panics, no
/// lost admitted queries, shed sessions get best-so-far answers, and
/// the drain returns the service to zero degradation.
fn cmd_chaos(flags: &HashMap<String, String>) {
    use aims::chaos::{run_drill, ChaosConfig};

    let env_seed =
        std::env::var("AIMS_CHAOS_SEED").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(4242);
    let seed: u64 = flag(flags, "seed", env_seed);
    let format: String = flag(flags, "format", "table".into());
    if format != "table" && format != "json" {
        eprintln!("unknown format '{format}' (table|json)");
        usage();
    }

    let report = run_drill(&ChaosConfig { seed, ..ChaosConfig::default() });
    if format == "json" {
        println!("{}", report.to_json());
    } else {
        println!("composed chaos drill (seed {}):", report.seed);
        println!(
            "{:>16} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7} {:>6} {:>9} {:>9}",
            "phase",
            "submit",
            "accept",
            "reject",
            "done",
            "shed",
            "expire",
            "degr",
            "p99 ms",
            "wall ms"
        );
        for p in &report.phases {
            println!(
                "{:>16} {:>7} {:>7} {:>7} {:>6} {:>6} {:>7} {:>6} {:>9.2} {:>9.0}",
                p.name,
                p.submitted,
                p.accepted,
                p.rejected,
                p.done,
                p.shed,
                p.expired,
                p.degraded,
                p.p99_ms,
                p.elapsed_ms
            );
        }
        println!(
            "recovery {:.1} ms | shed fraction {:.3} | p99 overload {:.2} ms",
            report.recovery_ms, report.shed_fraction, report.p99_overload_ms
        );
    }
    let violations = report.violations();
    if violations.is_empty() {
        if format == "table" {
            println!("all drill invariants held");
        }
    } else {
        eprintln!("chaos: {} invariant violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        exit(1);
    }
}

/// Runs a local crash drill against a temp-dir (or `--dir`) durable
/// store: a seeded write workload is killed at a seeded crash point, the
/// store is reopened, and recovery must be bit-identical to a committed
/// prefix of the write log. Prints the recovery report plus the
/// `storage.wal.*` telemetry deltas.
fn cmd_durability(flags: &HashMap<String, String>) {
    use aims::storage::device::{BlockDevice, MemDevice, RawMedia};
    use aims::storage::file::{CrashPlan, DurabilityMode, FileDevice, FileDeviceOptions};

    let seed: u64 = flag(flags, "seed", 52417);
    let blocks: usize = flag(flags, "blocks", 32);
    let block_size: usize = flag(flags, "block-size", 16);
    let writes: usize = flag(flags, "writes", 96);
    let mode_name: String = flag(flags, "mode", "always".into());
    let format: String = flag(flags, "format", "table".into());
    if format != "table" && format != "json" {
        eprintln!("unknown format '{format}' (table|json)");
        usage();
    }
    let Some(mode) = DurabilityMode::parse(&mode_name) else {
        eprintln!("unknown durability mode '{mode_name}' (always|periodic[:K]|none)");
        usage();
    };
    let (dir, keep) = match flags.get("dir") {
        Some(d) => (std::path::PathBuf::from(d), true),
        None => {
            (std::env::temp_dir().join(format!("aims-durability-{}", std::process::id())), false)
        }
    };
    std::fs::remove_dir_all(&dir).ok();

    // Seeded write log: a load pass then pseudo-random updates.
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let log: Vec<(usize, Vec<f64>)> = (0..writes)
        .map(|k| {
            let b = if k < blocks { k } else { rng() as usize % blocks };
            let payload: Vec<f64> =
                (0..block_size).map(|i| (rng() % 2001) as f64 / 10.0 - 100.0 + i as f64).collect();
            (b, payload)
        })
        .collect();

    // Crash somewhere past the load pass, seeded.
    let crash_step = blocks as u64 + rng() % (writes as u64);
    let opts = |crash| FileDeviceOptions { mode, crash, ..Default::default() };
    let mut device =
        FileDevice::create(&dir, block_size, blocks, opts(CrashPlan::at(seed, crash_step)))
            .unwrap_or_else(|e| {
                eprintln!("create {}: {e}", dir.display());
                exit(1);
            });
    let mut completed = 0usize;
    for (b, p) in &log {
        device.write_block(*b, p);
        if device.is_crashed() {
            break;
        }
        completed += 1;
    }
    let crashed = device.is_crashed();
    let durable_at_crash = device.durable_lsn();
    let stats = device.wal_stats();
    drop(device);

    let before = aims::telemetry::global().snapshot();
    let t = std::time::Instant::now();
    let device = FileDevice::open(&dir, opts(CrashPlan::none())).unwrap_or_else(|e| {
        eprintln!("open {}: {e}", dir.display());
        exit(1);
    });
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let r = device.recovery();
    let delta = aims::telemetry::global().snapshot().delta_since(&before);

    // Exactness gate: the recovered image equals some committed prefix
    // covering every acknowledged write.
    let got: Vec<Vec<u64>> =
        (0..blocks).map(|b| device.raw_payload(b).iter().map(|v| v.to_bits()).collect()).collect();
    let floor =
        if r.recovered_lsn > 0 { r.recovered_lsn as usize } else { durable_at_crash as usize };
    let exact = (floor..=(completed + 1).min(log.len())).any(|k| {
        let mut mem = MemDevice::new(block_size, blocks);
        for (b, p) in &log[..k] {
            mem.write_block(*b, p);
        }
        (0..blocks)
            .map(|b| mem.raw_payload(b).iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
            == got
    });
    drop(device);
    if !keep {
        std::fs::remove_dir_all(&dir).ok();
    }

    if format == "json" {
        println!(
            "{{\"seed\":{seed},\"mode\":\"{}\",\"crash_step\":{crash_step},\"crashed\":{crashed},\
             \"completed_writes\":{completed},\"durable_lsn\":{durable_at_crash},\
             \"fsyncs\":{},\"checkpoints\":{},\"recovered_lsn\":{},\"replayed_records\":{},\
             \"truncated_bytes\":{},\"recovery_ms\":{recovery_ms:.3},\"exact\":{exact}}}",
            mode.label(),
            stats.fsyncs,
            stats.checkpoints,
            r.recovered_lsn,
            r.replayed_records,
            r.truncated_bytes,
        );
    } else {
        println!(
            "durability drill: mode={} seed={seed} (blocks={blocks}, B={block_size}, \
             {writes} writes, crash step {crash_step})",
            mode.label()
        );
        println!("  crashed            : {crashed} after {completed} completed writes");
        println!("  acked frontier     : lsn {durable_at_crash}");
        println!("  fsyncs/checkpoints : {}/{}", stats.fsyncs, stats.checkpoints);
        println!(
            "  recovery           : lsn {} ({} records replayed, {} torn bytes dropped) \
             in {recovery_ms:.3} ms",
            r.recovered_lsn, r.replayed_records, r.truncated_bytes
        );
        println!("  bit-identical      : {exact} (vs committed write prefix)");
        println!("\n-- storage.wal telemetry (this drill) --");
        for name in [
            "storage.wal.appends",
            "storage.wal.fsyncs",
            "storage.wal.checkpoints",
            "storage.wal.replayed",
            "storage.wal.truncated_bytes",
        ] {
            println!("  {name:<28} {}", delta.counter(name));
        }
    }
    if !exact {
        eprintln!("durability drill FAILED: recovered state matches no committed prefix");
        exit(1);
    }
}

/// Runs the tiered-ingest drill locally: a file-backed [`TieredStore`]
/// in a temp dir (or `--dir`) absorbs a seeded signal on one thread
/// while the background compactor swaps sealed segments into wavelet
/// form and a planner runs progressive range sums against live
/// snapshots. Prints ingest rate, compaction lag, query latency and the
/// `tier.*` telemetry, then exits non-zero unless every live trajectory
/// kept monotone bounds and the drained store answered bit-identically
/// to a serial single-store oracle.
fn cmd_tiers(flags: &HashMap<String, String>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use aims::service::{TieredPlanner, TieredPlannerConfig};
    use aims::storage::file::{CrashPlan, DurabilityMode, FileDeviceOptions};
    use aims::tier::{compact, range_sum_on, Compactor, CompactorConfig, TierConfig, TieredStore};

    let seed: u64 = flag(flags, "seed", 7153);
    let samples: usize = flag(flags, "samples", 200_000);
    let segment: usize = flag(flags, "segment", 4096);
    let block: usize = flag(flags, "block", 256);
    let format: String = flag(flags, "format", "table".into());
    if format != "table" && format != "json" {
        eprintln!("unknown format '{format}' (table|json)");
        usage();
    }
    if samples == 0 || !segment.is_power_of_two() || !block.is_power_of_two() || block > segment {
        eprintln!("need --samples > 0 and power-of-two --block <= --segment");
        exit(2);
    }
    let (dir, keep) = match flags.get("dir") {
        Some(d) => (std::path::PathBuf::from(d), true),
        None => (std::env::temp_dir().join(format!("aims-tiers-{}", std::process::id())), false),
    };
    std::fs::remove_dir_all(&dir).ok();

    let cfg = TierConfig {
        segment_len: segment,
        block_size: block,
        max_segments: samples.div_ceil(segment) + 4,
        filter: aims::dsp::filters::FilterKind::Haar,
    };
    let mut state = seed | 1;
    let data: Vec<f64> = (0..samples)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 3203) as f64 / 9.0 - 170.0
        })
        .collect();

    let before = aims::telemetry::global().snapshot();
    let opts = FileDeviceOptions {
        mode: DurabilityMode::Periodic(64),
        crash: CrashPlan::none(),
        ..Default::default()
    };
    let store = TieredStore::create_durable(&dir, cfg, opts).unwrap_or_else(|e| {
        eprintln!("create {}: {e}", dir.display());
        exit(1);
    });
    let compactor = Compactor::spawn(store.clone(), CompactorConfig::default());
    let ingesting = Arc::new(AtomicBool::new(true));
    let mut violations = 0usize;

    let (ingest_wall, latencies_ms, bound_violations) = std::thread::scope(|scope| {
        let ingest = {
            let store = store.clone();
            let ingesting = Arc::clone(&ingesting);
            let data = &data;
            scope.spawn(move || {
                let t = Instant::now();
                for chunk in data.chunks(segment) {
                    store.push_slice(chunk);
                }
                store.seal_open();
                let wall = t.elapsed();
                ingesting.store(false, Ordering::Release);
                wall
            })
        };
        let queries = {
            let store = store.clone();
            let ingesting = Arc::clone(&ingesting);
            scope.spawn(move || {
                let planner = TieredPlanner::new(store, TieredPlannerConfig::default());
                let mut lat = Vec::new();
                let mut bad = 0usize;
                let mut k = 0usize;
                while ingesting.load(Ordering::Acquire) {
                    let n = planner.store().len();
                    if n == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    let (a, b) = if k.is_multiple_of(2) {
                        (0, n - 1)
                    } else {
                        (n.saturating_sub(segment), n - 1)
                    };
                    let t = Instant::now();
                    let ans = planner.range_sum(a, b);
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                    let mut prev = f64::INFINITY;
                    for s in &ans.steps {
                        if s.bound > prev {
                            bad += 1;
                        }
                        prev = s.bound;
                    }
                    k += 1;
                }
                (lat, bad)
            })
        };
        let wall = ingest.join().expect("ingest thread");
        let (lat, bad) = queries.join().expect("query thread");
        (wall, lat, bad)
    });
    violations += bound_violations;

    // Compaction lag: drain time once ingest stops.
    let t = Instant::now();
    let deadline = t + Duration::from_secs(60);
    while store.stats().sealed_raw > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let drained = store.stats().sealed_raw == 0;
    if !drained {
        violations += 1;
    }
    let lag_ms = t.elapsed().as_secs_f64() * 1e3;
    let compacted = compactor.stop();

    // Oracle gate: bit-identical to a serial single-pass store.
    let serial = aims::exec::ThreadPool::new(1);
    let oracle = TieredStore::new_mem(cfg);
    oracle.push_slice(&data);
    oracle.seal_open();
    compact::drain(&oracle, &serial);
    let (snap, osnap) = (store.snapshot(), oracle.snapshot());
    if snap.len() != samples {
        violations += 1;
    }
    let mut oracle_ok = true;
    let last = samples - 1;
    for (a, b) in [(0, last), (0, 0), (last / 2, last), (last / 3, 2 * last / 3)] {
        let got = range_sum_on(&snap, a, b, &serial);
        let want = range_sum_on(&osnap, a, b, &serial);
        if got.to_bits() != want.to_bits() {
            oracle_ok = false;
            violations += 1;
        }
    }
    store.checkpoint();
    drop(store);
    if !keep {
        std::fs::remove_dir_all(&dir).ok();
    }

    let rate = samples as f64 / ingest_wall.as_secs_f64();
    let mut sorted = latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() - 1) as f64 * p).round() as usize]
        }
    };
    let delta = aims::telemetry::global().snapshot().delta_since(&before);

    if format == "json" {
        println!(
            "{{\"seed\":{seed},\"samples\":{samples},\"segment\":{segment},\"block\":{block},\
             \"threads\":{},\"ingest_samples_per_sec\":{rate:.1},\
             \"compaction_lag_ms\":{lag_ms:.3},\"segments_compacted\":{compacted},\
             \"queries\":{},\"query_p50_ms\":{:.4},\"query_p99_ms\":{:.4},\
             \"drained\":{drained},\"oracle_identical\":{oracle_ok},\"violations\":{violations}}}",
            aims::exec::configured_threads(),
            latencies_ms.len(),
            pct(0.50),
            pct(0.99),
        );
    } else {
        println!(
            "tier drill: seed={seed} samples={samples} segment={segment} block={block} \
             threads={}",
            aims::exec::configured_threads()
        );
        println!("  ingest             : {rate:.0} samples/s ({:.1?} wall)", ingest_wall);
        println!("  compaction         : {compacted} segments, {lag_ms:.1} ms lag after ingest");
        println!(
            "  queries (live)     : {} runs, p50 {:.3} ms, p99 {:.3} ms",
            latencies_ms.len(),
            pct(0.50),
            pct(0.99),
        );
        println!("  backlog drained    : {drained}");
        println!("  oracle bit-identity: {oracle_ok}");
        println!("\n-- tier telemetry (this drill) --");
        for name in [
            "tier.segments.open",
            "tier.segments.sealed",
            "tier.segments.compacted",
            "tier.compaction.runs",
            "tier.compaction.ns",
            "tier.compaction.bytes",
            "tier.query.hot_rows",
            "tier.query.merged",
        ] {
            println!("  {name:<26} {}", delta.counter(name));
        }
    }
    if violations > 0 {
        eprintln!("tier drill FAILED: {violations} invariant violation(s)");
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "ingest" => cmd_ingest(&flags),
        "query" => cmd_query(&flags),
        "serve" => cmd_serve(&flags),
        "recognize" => cmd_recognize(&flags),
        "metrics" => cmd_metrics(&flags),
        "faults" => cmd_faults(&flags),
        "ingest-faults" => cmd_ingest_faults(&flags),
        "trace" => cmd_trace(&flags),
        "top" => cmd_top(&flags),
        "chaos" => cmd_chaos(&flags),
        "kernels" => cmd_kernels(&flags),
        "durability" => cmd_durability(&flags),
        "tiers" => cmd_tiers(&flags),
        _ => usage(),
    }
}
