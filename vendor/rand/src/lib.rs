//! Offline stand-in for the subset of the `rand` 0.8 API that AIMS uses.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace points the `rand` dependency at this path crate. It
//! implements exactly the surface the codebase calls — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` and
//! `Rng::gen_bool` — over a deterministic xorshift64* generator. It is
//! **not** a cryptographic or statistically rigorous RNG; it exists to
//! drive simulations and synthetic data generation reproducibly.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: the object-safe part of the RNG.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled from the "standard" distribution
/// (uniform over the type's natural unit domain).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic xorshift64* generator — the stand-in
    /// for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna): passes the statistical bar simulations need.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 the seed so that small consecutive seeds produce
            // decorrelated streams; state must never be zero.
            let mut z = state.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            SmallRng { state: z.max(1) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(0..=5u32);
            assert!(z <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
