//! The [`Strategy`] trait and the combinators the AIMS tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and derives a second strategy from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Re-draws until `f` accepts the value (bounded attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
