//! Offline stand-in for the subset of `proptest` that the AIMS test
//! suite uses.
//!
//! The build environment has no network access, so the workspace points
//! the `proptest` dev-dependency at this path crate. It keeps the same
//! surface syntax — `proptest! { #[test] fn p(x in strat) { ... } }`,
//! `prop_assert!`, `prop_oneof!`, `prop::collection::vec`, `any::<T>()`,
//! `Strategy::prop_map` / `prop_flat_map`, `Just`, `ProptestConfig` — but
//! replaces proptest's shrinking machinery with plain deterministic random
//! sampling: each property runs `cases` times over inputs drawn from a
//! generator seeded by the test name, so failures reproduce exactly.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_f64() * 2.0 - 1.0
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary_value(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-low / exclusive-high element-count range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<i32> for SizeRange {
        fn from(n: i32) -> Self {
            let n = usize::try_from(n).expect("negative vec size");
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            SizeRange::from(r.start as usize..r.end as usize)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// A strategy for `Vec<E::Value>` with length drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)` — vectors of strategy draws.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    /// Lets test code write `prop::collection::vec(...)` after a glob
    /// import of the prelude, as with real proptest.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (plain `assert!` here: there is
/// no shrinking pass to feed a rejection into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the per-case loop in [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests.
///
/// Accepts the standard proptest surface syntax: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}
