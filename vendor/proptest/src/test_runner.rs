//! Configuration and the deterministic test RNG.

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite quick
        // while still exercising a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test's module path
/// and name, so every failure reproduces bit-for-bit.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
