//! Offline stand-in for the subset of `criterion` the AIMS benches use.
//!
//! The build environment has no network access, so the workspace points
//! the `criterion` dev-dependency at this path crate. It keeps the same
//! authoring surface — `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, `black_box` — but runs a
//! simple timer instead of criterion's statistical machinery: warm up,
//! pick an iteration count targeting ~100 ms of wall time, report the
//! median of a handful of rounds in ns/iter (plus throughput if set).

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{p}", self.function),
            (false, None) => write!(f, "{}", self.function),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the closure given to `Bencher::iter`-style entry points.
pub struct Bencher {
    /// Measured nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: warmup, then several measured rounds; keeps the
    /// median ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Aim each measured round at ~25 ms.
        let round_iters = ((25_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);

        let mut rounds: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..round_iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / round_iters as f64
            })
            .collect();
        rounds.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = rounds[rounds.len() / 2];
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<40} {:>12}/iter", human_ns(ns_per_iter));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (ns_per_iter / 1_000_000_000.0);
        line.push_str(&format!("   {rate:>14.0} {unit}/s"));
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for compatibility; the simple timer ignores it.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for compatibility; the simple timer ignores it.
    pub fn measurement_time(&mut self, _d: Duration) {}

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.ns_per_iter, self.throughput);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.ns_per_iter, self.throughput);
    }

    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup { name, throughput: None, _criterion: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
